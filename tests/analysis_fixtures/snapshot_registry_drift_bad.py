"""Known-bad corpus for ``snapshot-completeness`` (version-pinning half).

This module re-declares ``MonitorState`` with an extra ``debug_tag`` field
while keeping ``MONITOR_STATE_VERSION`` at 1 — exactly the silent layout
drift the pinned registry exists to catch.
"""

from dataclasses import dataclass
from typing import Optional

MONITOR_STATE_VERSION = 1


@dataclass
class MonitorState:  # expect[snapshot-completeness]
    version: int
    patient_id: str
    fs: float
    detector: dict
    windower: dict
    sequence: int
    n_windows: int
    n_usable: int
    pending: tuple
    debug_tag: Optional[str] = None
