"""Tests for the ECG chunk wire format (:mod:`repro.serving.wire`).

Round-trip property tests (every header field and every payload sample must
survive encode → decode, for every supported dtype, including empty and
large payloads), strict rejection of corrupt frames (bad magic / version /
reserved bits / dtype code, truncated header or payload, trailing bytes,
CRC mismatch) and the sequence-number policing that protects the streaming
monitors' carry-over DSP state from duplicated or reordered chunks.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import MonitorFleet, StreamingMonitor
from repro.serving.wire import (
    ACK_OK,
    DTYPE_CODES,
    FRAME_KINDS,
    HEADER,
    WIRE_VERSION,
    AckFrame,
    DuplicateChunkError,
    EcgChunk,
    HandoffFrame,
    OutOfOrderChunkError,
    SequenceTracker,
    StateFrame,
    StreamDecoder,
    WireFormatError,
    decode_chunk,
    decode_frame,
    encode_ack,
    encode_chunk,
    encode_frame,
    encode_handoff,
    encode_state,
    iter_chunks,
    iter_frames,
)

FS = 128.0


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------

_wire_dtypes = st.sampled_from(sorted(DTYPE_CODES.values(), key=str))


@given(
    patient_id=st.integers(0, 2**32 - 1),
    seq=st.integers(0, 2**32 - 1),
    fs=st.floats(1.0, 4096.0, allow_nan=False),
    dtype=_wire_dtypes,
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_round_trip_preserves_everything(patient_id, seq, fs, dtype, data):
    n = data.draw(st.integers(0, 256))
    if dtype.kind == "f":
        samples = np.asarray(
            data.draw(st.lists(st.floats(-10.0, 10.0, width=32), min_size=n, max_size=n)),
            dtype=dtype,
        )
    else:
        info = np.iinfo(dtype)
        samples = np.asarray(
            data.draw(st.lists(st.integers(info.min, info.max), min_size=n, max_size=n)),
            dtype=dtype,
        )
    chunk = decode_chunk(encode_chunk(patient_id, seq, fs, samples))
    assert chunk.patient_id == patient_id
    assert chunk.seq == seq
    assert chunk.fs == fs
    assert chunk.samples.dtype == dtype
    assert np.array_equal(chunk.samples, samples)
    assert chunk.n_samples == n


def test_empty_chunk_round_trip():
    chunk = decode_chunk(encode_chunk(7, 0, FS, np.empty(0)))
    assert chunk.n_samples == 0 and chunk.duration_s == 0.0
    assert chunk.samples.dtype == np.dtype("<f8")


def test_large_payload_round_trip():
    samples = np.random.default_rng(0).standard_normal(1 << 20)
    chunk = decode_chunk(encode_chunk(1, 2, FS, samples))
    assert np.array_equal(chunk.samples, samples)


def test_unsupported_sample_dtype_falls_back_to_float64():
    # bool samples are not a wire dtype; they are shipped as float64.
    chunk = decode_chunk(encode_chunk(1, 0, FS, np.array([True, False])))
    assert chunk.samples.dtype == np.dtype("<f8")
    assert np.array_equal(chunk.samples, [1.0, 0.0])


def test_explicit_dtype_casts_payload():
    chunk = decode_chunk(encode_chunk(1, 0, FS, np.array([1.0, 2.0]), dtype=np.int16))
    assert chunk.samples.dtype == np.dtype("<i2")
    assert np.array_equal(chunk.samples, [1, 2])


@given(frames=st.lists(st.integers(0, 40), min_size=0, max_size=6))
@settings(max_examples=30, deadline=None)
def test_iter_chunks_splits_concatenated_frames(frames):
    rng = np.random.default_rng(1)
    encoded = b"".join(
        encode_chunk(pid, seq, FS, rng.standard_normal(n))
        for seq, (pid, n) in enumerate((i % 3, n) for i, n in enumerate(frames))
    )
    decoded = list(iter_chunks(encoded))
    assert [c.n_samples for c in decoded] == frames
    assert [c.seq for c in decoded] == list(range(len(frames)))


# ---------------------------------------------------------------------------
# Encode validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        dict(patient_id=-1),
        dict(patient_id=2**32),
        dict(seq=-1),
        dict(seq=2**32),
        dict(fs=0.0),
        dict(fs=-128.0),
        dict(fs=float("inf")),
        dict(fs=float("nan")),
        dict(dtype=np.complex128),
    ],
)
def test_encode_rejects_bad_fields(kwargs):
    good = dict(patient_id=0, seq=0, fs=FS, samples=np.zeros(4))
    good.update(kwargs)
    with pytest.raises(ValueError):
        encode_chunk(**good)


# ---------------------------------------------------------------------------
# Corruption rejection
# ---------------------------------------------------------------------------

def _frame(n=16, dtype=np.float64):
    return encode_chunk(3, 5, FS, np.arange(n, dtype=dtype))


def _patched(frame: bytes, offset: int, value: bytes) -> bytes:
    return frame[:offset] + value + frame[offset + len(value) :]


def test_decode_rejects_short_header():
    with pytest.raises(WireFormatError, match="truncated header"):
        decode_chunk(_frame()[: HEADER.size - 1])


def test_decode_rejects_bad_magic():
    with pytest.raises(WireFormatError, match="bad magic"):
        decode_chunk(_patched(_frame(), 0, b"NOPE"))


def test_decode_rejects_unknown_version():
    with pytest.raises(WireFormatError, match="version"):
        decode_chunk(_patched(_frame(), 4, bytes([WIRE_VERSION + 1])))


def test_decode_rejects_unknown_dtype_code():
    with pytest.raises(WireFormatError, match="dtype"):
        decode_chunk(_patched(_frame(), 5, bytes([255])))


def test_decode_rejects_reserved_bits():
    # v2 header: the reserved byte sits at offset 7 (offset 6 is the frame
    # kind).  Any non-zero value is from the future and must be refused.
    with pytest.raises(WireFormatError, match="reserved"):
        decode_chunk(_patched(_frame(), 7, b"\x01"))


def test_decode_rejects_unknown_frame_kind():
    with pytest.raises(WireFormatError, match="frame kind"):
        decode_chunk(_patched(_frame(), 6, bytes([17])))


def test_decode_rejects_invalid_fs():
    bad_fs = struct.pack("<d", float("nan"))
    with pytest.raises(WireFormatError, match="sampling frequency"):
        decode_chunk(_patched(_frame(), 20, bad_fs))


def test_decode_rejects_truncated_payload():
    with pytest.raises(WireFormatError, match="truncated payload"):
        decode_chunk(_frame()[:-3])


def test_decode_rejects_declared_count_beyond_payload():
    # Header claims more samples than the payload carries.
    frame = _frame(16)
    inflated = _patched(frame, 16, struct.pack("<I", 17))
    with pytest.raises(WireFormatError, match="truncated payload"):
        decode_chunk(inflated)


def test_decode_rejects_trailing_garbage():
    with pytest.raises(WireFormatError, match="trailing"):
        decode_chunk(_frame() + b"\x00")


def test_decode_rejects_payload_corruption_via_crc():
    frame = bytearray(_frame())
    frame[HEADER.size + 2] ^= 0xFF
    with pytest.raises(WireFormatError, match="CRC"):
        decode_chunk(bytes(frame))


@pytest.mark.parametrize("offset", [8, 12, 16, 20])
def test_decode_rejects_header_field_corruption_via_crc(offset):
    # A bit flip in patient_id / seq / sample-count / fs passes every
    # structural check; the frame CRC (which covers the header) catches it —
    # otherwise the samples would be routed to a phantom patient's DSP state.
    frame = bytearray(_frame())
    frame[offset] ^= 0x01
    with pytest.raises(WireFormatError, match="CRC|truncated"):
        decode_chunk(bytes(frame))


def test_iter_chunks_raises_on_truncated_tail():
    a, b = _frame(8), _frame(8)
    with pytest.raises(WireFormatError):
        list(iter_chunks(a + b[:-1]))


# ---------------------------------------------------------------------------
# Sequence policing
# ---------------------------------------------------------------------------

class TestSequenceTracker:
    def test_accepts_contiguous_sequence(self):
        tracker = SequenceTracker()
        assert tracker.last_seq is None
        for seq in range(5):
            assert tracker.validate(seq) == seq
        assert tracker.last_seq == 4 and tracker.expected == 5

    def test_duplicate_rejected_with_context(self):
        tracker = SequenceTracker()
        tracker.validate(0)
        tracker.validate(1)
        with pytest.raises(DuplicateChunkError) as excinfo:
            tracker.validate(1)
        assert excinfo.value.seq == 1 and excinfo.value.expected == 2

    def test_gap_rejected_with_context(self):
        tracker = SequenceTracker()
        tracker.validate(0)
        with pytest.raises(OutOfOrderChunkError) as excinfo:
            tracker.validate(3)
        assert excinfo.value.seq == 3 and excinfo.value.expected == 1
        # A rejected chunk does not advance the tracker.
        assert tracker.validate(1) == 1

    def test_custom_first_seq(self):
        tracker = SequenceTracker(first_seq=10)
        assert tracker.last_seq is None
        with pytest.raises(DuplicateChunkError):
            tracker.validate(9)
        assert tracker.validate(10) == 10
        assert tracker.last_seq == 10

    @given(seqs=st.lists(st.integers(0, 30), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_only_the_contiguous_prefix_is_ever_accepted(self, seqs):
        tracker = SequenceTracker()
        accepted = []
        for seq in seqs:
            try:
                accepted.append(tracker.validate(seq))
            except (DuplicateChunkError, OutOfOrderChunkError):
                pass
        assert accepted == list(range(len(accepted)))


class TestSequenceRecovery:
    """The documented recovery contract: a rejection never moves the tracker,
    so the stream re-synchronises the moment the expected chunk arrives."""

    def test_next_in_order_chunk_is_accepted_after_a_gap_rejection(self):
        tracker = SequenceTracker()
        tracker.validate(0)
        with pytest.raises(OutOfOrderChunkError):
            tracker.validate(5)
        # The rejection left the tracker exactly where chunk 0 put it...
        assert tracker.expected == 1 and tracker.last_seq == 0
        # ...so the retransmitted in-order chunk is accepted immediately.
        assert tracker.validate(1) == 1
        assert tracker.expected == 2

    def test_next_in_order_chunk_is_accepted_after_a_duplicate_rejection(self):
        tracker = SequenceTracker()
        tracker.validate(0)
        tracker.validate(1)
        with pytest.raises(DuplicateChunkError):
            tracker.validate(0)
        assert tracker.expected == 2 and tracker.last_seq == 1
        assert tracker.validate(2) == 2

    def test_a_storm_of_bad_chunks_never_poisons_recovery(self):
        tracker = SequenceTracker()
        tracker.validate(0)
        for bad in (7, 3, 0, 29, 0, 2):
            with pytest.raises((DuplicateChunkError, OutOfOrderChunkError)):
                tracker.validate(bad)
            assert tracker.expected == 1  # unmoved through the whole storm
        assert tracker.validate(1) == 1

    @given(
        prefix=st.integers(0, 10),
        bad=st.lists(st.integers(0, 40), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_rejections_never_move_the_tracker(self, prefix, bad):
        tracker = SequenceTracker()
        for seq in range(prefix):
            tracker.validate(seq)
        for seq in bad:
            if seq == prefix:
                continue  # only non-expected sequence numbers are rejections
            with pytest.raises((DuplicateChunkError, OutOfOrderChunkError)):
                tracker.validate(seq)
            assert tracker.expected == prefix
        assert tracker.validate(prefix) == prefix

    def test_monitor_stream_resynchronises_after_rejected_frames(self):
        monitor = StreamingMonitor(0, FS)
        chunk = np.zeros(128)
        monitor.push(chunk, seq=0)
        with pytest.raises(OutOfOrderChunkError):
            monitor.push(chunk, seq=3)
        with pytest.raises(OutOfOrderChunkError):
            monitor.push(chunk, seq=2)
        # The transport retransmits from the gap: the stream picks up exactly
        # where it left off and every sample lands once.
        monitor.push(chunk, seq=1)
        monitor.push(chunk, seq=2)
        monitor.push(chunk, seq=3)
        assert monitor.last_seq == 3
        assert monitor.time_seen_s == pytest.approx(4 * chunk.size / FS)


class TestMonitorSequenceIntegration:
    def test_monitor_rejects_duplicate_and_gap_without_state_damage(self):
        monitor = StreamingMonitor(0, FS)
        chunk = np.zeros(256)
        monitor.push(chunk, seq=0)
        seen = monitor.time_seen_s
        with pytest.raises(DuplicateChunkError):
            monitor.push(chunk, seq=0)
        with pytest.raises(OutOfOrderChunkError):
            monitor.push(chunk, seq=2)
        # The rejected chunks never reached the DSP state.
        assert monitor.time_seen_s == seen
        monitor.push(chunk, seq=1)
        assert monitor.time_seen_s == pytest.approx(seen + chunk.size / FS)
        assert monitor.last_seq == 1

    def test_unsequenced_pushes_skip_policing(self):
        monitor = StreamingMonitor(0, FS)
        monitor.push(np.zeros(64))
        monitor.push(np.zeros(64))
        assert monitor.last_seq is None


class _NoCallClassifier:
    """Placeholder classifier for fleets that never reach classification."""

    def scores_and_labels(self, X):  # pragma: no cover - never called
        raise AssertionError("classification not expected in this test")


class TestFleetWireIngestion:
    def test_push_wire_round_trip_and_sequencing(self):
        fleet = MonitorFleet(_NoCallClassifier(), FS)
        samples = np.random.default_rng(2).standard_normal(512)
        fleet.push_wire(encode_chunk(4, 0, FS, samples))
        with pytest.raises(DuplicateChunkError):
            fleet.push_wire(encode_chunk(4, 0, FS, samples))
        with pytest.raises(OutOfOrderChunkError):
            fleet.push_wire(encode_chunk(4, 2, FS, samples))
        fleet.push_wire(encode_chunk(4, 1, FS, samples))
        assert fleet.monitor(4).time_seen_s == pytest.approx(1024 / FS)

    def test_push_wire_rejects_fs_mismatch(self):
        fleet = MonitorFleet(_NoCallClassifier(), FS)
        with pytest.raises(WireFormatError, match="does not match"):
            fleet.push_wire(encode_chunk(1, 0, 2 * FS, np.zeros(8)))


# ---------------------------------------------------------------------------
# Typed frame protocol (v2): control frames and mixed streams
# ---------------------------------------------------------------------------

_control_frames = st.one_of(
    st.builds(
        HandoffFrame,
        patient_id=st.integers(0, 2**32 - 1),
        token=st.integers(0, 2**32 - 1),
        state_version=st.integers(0, 2**32 - 1),
        fs=st.just(FS),
    ),
    st.builds(
        StateFrame,
        patient_id=st.integers(0, 2**32 - 1),
        token=st.integers(0, 2**32 - 1),
        fs=st.just(FS),
        payload=st.binary(max_size=200),
    ),
    st.builds(
        AckFrame,
        patient_id=st.integers(0, 2**32 - 1),
        token=st.integers(0, 2**32 - 1),
        status=st.integers(0, 2),
        fs=st.just(FS),
    ),
)


def _data_frames():
    return st.builds(
        lambda pid, seq, n: EcgChunk(
            patient_id=pid, seq=seq, fs=FS, samples=np.arange(n, dtype=np.float64)
        ),
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 32),
    )


class TestControlFrames:
    def test_handoff_round_trip(self):
        frame = decode_frame(encode_handoff(9, 77, 1, FS))
        assert frame == HandoffFrame(patient_id=9, token=77, state_version=1, fs=FS)

    def test_state_round_trip(self):
        payload = b"\x80\x04N."  # pickled None — any bytes are legal
        frame = decode_frame(encode_state(9, 77, FS, payload))
        assert frame == StateFrame(patient_id=9, token=77, fs=FS, payload=payload)

    def test_ack_round_trip(self):
        frame = decode_frame(encode_ack(9, 77, ACK_OK, FS))
        assert frame == AckFrame(patient_id=9, token=77, status=ACK_OK, fs=FS)

    @given(frame=_control_frames)
    @settings(max_examples=60, deadline=None)
    def test_encode_frame_dispatch_round_trips(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_frame_rejects_non_frames(self):
        with pytest.raises(TypeError):
            encode_frame(b"not a frame")

    def test_frame_kind_registry_is_complete(self):
        assert FRAME_KINDS == {0: EcgChunk, 1: HandoffFrame, 2: StateFrame, 3: AckFrame}

    def test_decode_chunk_refuses_control_frames(self):
        with pytest.raises(WireFormatError, match="not a data frame"):
            decode_chunk(encode_handoff(1, 2, 1, FS))

    def test_iter_chunks_refuses_mixed_streams(self):
        mixed = encode_chunk(1, 0, FS, np.zeros(4)) + encode_ack(1, 0, ACK_OK, FS)
        with pytest.raises(WireFormatError, match="not a data frame"):
            list(iter_chunks(mixed))

    def test_iter_frames_handles_mixed_streams(self):
        mixed = (
            encode_handoff(1, 5, 1, FS)
            + encode_state(1, 5, FS, b"abc")
            + encode_chunk(2, 0, FS, np.zeros(4))
            + encode_ack(1, 5, ACK_OK, FS)
        )
        kinds = [type(f).__name__ for f in iter_frames(mixed)]
        assert kinds == ["HandoffFrame", "StateFrame", "EcgChunk", "AckFrame"]

    def test_control_frame_with_nonzero_dtype_code_is_rejected(self):
        frame = encode_ack(1, 2, ACK_OK, FS)
        with pytest.raises(WireFormatError, match="must be 0"):
            decode_frame(_patched(frame, 5, bytes([1])))

    def test_state_payload_corruption_caught_by_crc(self):
        frame = bytearray(encode_state(1, 2, FS, b"state-bytes"))
        frame[HEADER.size + 3] ^= 0xFF
        with pytest.raises(WireFormatError, match="CRC"):
            decode_frame(bytes(frame))

    def test_truncated_state_payload_is_rejected(self):
        frame = encode_state(1, 2, FS, b"x" * 64)
        with pytest.raises(WireFormatError, match="truncated payload"):
            decode_frame(frame[:-7])


class TestStreamDecoderMixedFrames:
    @given(
        frames=st.lists(st.one_of(_control_frames, _data_frames()), max_size=8),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_reassembly_invariant_under_read_chunking(self, frames, data):
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = StreamDecoder()
        decoded = []
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(1, max(1, len(stream) - pos)))
            decoded.extend(decoder.feed(stream[pos : pos + step]))
            pos += step
        decoder.finish()
        assert len(decoded) == len(frames)
        for got, want in zip(decoded, frames):
            if isinstance(want, EcgChunk):
                assert isinstance(got, EcgChunk)
                assert got.patient_id == want.patient_id and got.seq == want.seq
                assert np.array_equal(got.samples, want.samples)
            else:
                assert got == want

    def test_truncated_state_frame_fails_finish(self):
        decoder = StreamDecoder()
        frame = encode_state(1, 2, FS, b"y" * 128)
        assert decoder.feed(frame[:-1]) == []
        with pytest.raises(WireFormatError, match="mid-frame"):
            decoder.finish()

    def test_oversized_state_declaration_is_rejected_at_the_header(self):
        # A state payload above max_frame_bytes is corruption-by-bound: the
        # decoder must reject on the header alone, never buffer gigabytes.
        decoder = StreamDecoder(max_frame_bytes=1024)
        frame = encode_state(1, 2, FS, b"z" * 2048)
        with pytest.raises(WireFormatError, match="frame bound"):
            decoder.feed(frame[: HEADER.size])
        with pytest.raises(WireFormatError, match="drop the connection"):
            decoder.feed(frame[HEADER.size :])

    def test_control_frames_between_data_frames_one_byte_at_a_time(self):
        stream = (
            encode_chunk(1, 0, FS, np.arange(8.0))
            + encode_handoff(1, 3, 1, FS)
            + encode_state(1, 3, FS, b"pickled")
            + encode_ack(1, 3, ACK_OK, FS)
            + encode_chunk(1, 1, FS, np.arange(4.0))
        )
        decoder = StreamDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i : i + 1]))
        decoder.finish()
        assert [type(f).__name__ for f in decoded] == [
            "EcgChunk",
            "HandoffFrame",
            "StateFrame",
            "AckFrame",
            "EcgChunk",
        ]
        assert decoder.frames_decoded == 5 and decoder.at_frame_boundary
