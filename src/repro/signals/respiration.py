"""Respiration model used to drive respiratory sinus arrhythmia and EDR.

The paper's feature set includes two groups of features computed from the
ECG-Derived Respiration (EDR) time series: the coefficients of its
auto-regressive model and its power spectral density in several bands.  To
exercise those code paths the synthetic cohort needs a realistic respiration
process whose rate and depth change during seizures (ictal tachypnea /
irregular breathing is a well-documented autonomic signature of focal
seizures).

The model produces, on a uniform time grid:

* the instantaneous breathing rate (Hz),
* the instantaneous breathing depth (arbitrary units, around 1.0), and
* the respiration waveform itself (a phase-coherent oscillation).

The waveform modulates both the RR series (respiratory sinus arrhythmia) and
the R-wave amplitude of the synthetic ECG (amplitude-based EDR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.signals.seizures import Seizure

__all__ = ["RespirationParams", "RespirationSignal", "generate_respiration"]


@dataclass
class RespirationParams:
    """Parameters of the synthetic respiration process."""

    #: Baseline breathing frequency in Hz (about 15 breaths per minute).
    base_rate_hz: float = 0.25
    #: Slow random drift of the breathing rate (standard deviation, Hz).
    rate_drift_hz: float = 0.02
    #: Correlation time of the rate drift in seconds.
    rate_drift_tau_s: float = 120.0
    #: Baseline breathing depth.
    base_depth: float = 1.0
    #: Standard deviation of the slow depth drift.
    depth_drift: float = 0.1
    #: Multiplicative increase of the breathing rate at the ictal peak.
    ictal_rate_gain: float = 1.5
    #: Multiplicative change of the breathing depth at the ictal peak
    #: (breathing becomes shallower / more irregular).
    ictal_depth_gain: float = 0.6
    #: Extra breath-by-breath irregularity injected during seizures.
    ictal_jitter: float = 0.15
    #: Multiplicative increase of the breathing rate during non-ictal arousal
    #: episodes (movement, exertion) — milder than the ictal response.
    arousal_rate_gain: float = 1.25
    #: Multiplicative change of the breathing depth during arousals (breathing
    #: gets *deeper* with exertion, unlike the shallow ictal pattern).
    arousal_depth_gain: float = 1.2
    #: Sampling rate of the generated respiration signals (Hz).
    fs: float = 4.0


@dataclass
class RespirationSignal:
    """Respiration process sampled on a uniform grid."""

    t: np.ndarray
    rate_hz: np.ndarray
    depth: np.ndarray
    waveform: np.ndarray
    fs: float

    def value_at(self, times_s: np.ndarray) -> np.ndarray:
        """Linearly interpolate the waveform at arbitrary time instants."""
        return np.interp(times_s, self.t, self.waveform)

    def depth_at(self, times_s: np.ndarray) -> np.ndarray:
        """Linearly interpolate the breathing depth at arbitrary time instants."""
        return np.interp(times_s, self.t, self.depth)


def seizure_envelope(
    t: np.ndarray, seizures: Sequence[Seizure], use_intensity: bool = False
) -> np.ndarray:
    """Smooth 0..1 envelope describing how 'ictal' each time instant is.

    The envelope ramps up during the pre-ictal phase, stays at its plateau
    during the ictal phase and decays exponentially during the post-ictal
    phase.  It is shared between the respiration and RR models so that cardiac
    and respiratory disturbances stay synchronised, as they are
    physiologically.

    Parameters
    ----------
    use_intensity:
        When True, each seizure's plateau is scaled by its ``intensity``
        attribute.  The heart-*rate* response uses the intensity-weighted
        envelope (tachycardia strength varies between seizures), while the
        variability suppression uses the unweighted one (even weak seizures
        suppress beat-to-beat variability).
    """
    envelope = np.zeros_like(t, dtype=float)
    for seizure in seizures:
        contribution = np.zeros_like(t, dtype=float)
        pre_len = max(seizure.preictal_s, 1e-6)
        post_len = max(seizure.postictal_s, 1e-6)

        pre_mask = (t >= seizure.disturbance_start_s) & (t < seizure.onset_s)
        ramp = (t[pre_mask] - seizure.disturbance_start_s) / pre_len
        contribution[pre_mask] = 0.5 * (1.0 - np.cos(np.pi * ramp))

        ictal_mask = (t >= seizure.onset_s) & (t < seizure.offset_s)
        contribution[ictal_mask] = 1.0

        post_mask = (t >= seizure.offset_s) & (t < seizure.disturbance_end_s)
        decay = (t[post_mask] - seizure.offset_s) / post_len
        contribution[post_mask] = np.exp(-3.0 * decay)

        if use_intensity:
            contribution *= float(getattr(seizure, "intensity", 1.0))
        envelope = np.maximum(envelope, contribution)
    return envelope


def _ou_process(
    n: int, dt: float, tau_s: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Ornstein-Uhlenbeck process used for slow physiological drifts."""
    x = np.zeros(n)
    if tau_s <= 0:
        return x
    alpha = np.exp(-dt / tau_s)
    noise_scale = sigma * np.sqrt(1.0 - alpha**2)
    for i in range(1, n):
        x[i] = alpha * x[i - 1] + noise_scale * rng.standard_normal()
    return x


def generate_respiration(
    duration_s: float,
    seizures: Sequence[Seizure],
    rng: np.random.Generator,
    params: RespirationParams | None = None,
    arousals: Sequence[Seizure] = (),
) -> RespirationSignal:
    """Generate the respiration process for one recording session.

    Parameters
    ----------
    duration_s:
        Session length in seconds.
    seizures:
        Annotated seizures of the session; they raise the breathing rate and
        reduce its depth through the shared seizure envelope.
    rng:
        NumPy random generator.
    params:
        Respiration model parameters.
    arousals:
        Non-ictal arousal episodes (movement, exertion); they raise the
        breathing rate moderately and make breathing *deeper*, unlike the
        shallow, irregular ictal pattern.

    Returns
    -------
    :class:`RespirationSignal`
    """
    if params is None:
        params = RespirationParams()
    fs = params.fs
    n = int(np.ceil(duration_s * fs)) + 1
    t = np.arange(n) / fs
    dt = 1.0 / fs

    envelope = seizure_envelope(t, seizures)
    if len(arousals):
        arousal_env = seizure_envelope(t, arousals, use_intensity=True)
    else:
        arousal_env = np.zeros_like(t)

    rate_drift = _ou_process(n, dt, params.rate_drift_tau_s, params.rate_drift_hz, rng)
    rate = params.base_rate_hz + rate_drift
    rate *= 1.0 + (params.ictal_rate_gain - 1.0) * envelope
    rate *= 1.0 + (params.arousal_rate_gain - 1.0) * arousal_env
    rate = np.clip(rate, 0.1, 0.8)

    depth_drift = _ou_process(n, dt, params.rate_drift_tau_s, params.depth_drift, rng)
    depth = params.base_depth + depth_drift
    depth *= 1.0 + (params.ictal_depth_gain - 1.0) * envelope
    depth *= 1.0 + (params.arousal_depth_gain - 1.0) * arousal_env
    # Breath-by-breath irregularity, stronger during seizures.
    depth *= 1.0 + params.ictal_jitter * envelope * rng.standard_normal(n) * 0.3
    depth = np.clip(depth, 0.2, 2.5)

    # Integrate the instantaneous rate to get a coherent respiratory phase.
    phase = 2.0 * np.pi * np.cumsum(rate) * dt
    waveform = depth * np.sin(phase)

    return RespirationSignal(t=t, rate_hz=rate, depth=depth, waveform=waveform, fs=fs)
