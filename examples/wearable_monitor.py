#!/usr/bin/env python3
"""Wearable-monitor walkthrough: a sharded fleet of streaming monitors.

The two other examples start from pre-extracted feature matrices.  This one
exercises the *full* online signal path of Figure 1 of the paper at fleet
scale, the way a backend receiving framed chunks from sixteen Wireless Body
Sensor Nodes would, on top of the :mod:`repro.serving` engine:

1. synthesise raw single-lead ECG traces for one monitored session per
   patient (the remaining sessions form the training data),
2. train a quadratic SVM and quantise it to the paper's 9/15-bit fixed-point
   design point,
3. frame every ~30-second ECG chunk in the versioned binary wire format
   (float32 payload, CRC-protected, per-patient sequence numbers — see
   :mod:`repro.serving.wire`),
4. *push* the frames the way real nodes do: every patient opens its own TCP
   connection to an :class:`~repro.serving.ingest.IngestGateway` and writes
   its frame stream over the socket.  The gateway reassembles frames across
   read boundaries (:class:`~repro.serving.wire.StreamDecoder`), absorbs the
   sixteen concurrent uplinks in per-patient bounded queues, and its pump
   task feeds a 4-shard :class:`~repro.serving.sharding.ShardedFleet` —
   consistent hashing routes each patient to a shard, each chunk runs
   incremental Pan–Tompkins R-peak detection and three-minute window
   assembly with carry-over state, and a latency/batch
   :class:`~repro.serving.scheduler.DrainPolicy` decides when the pending
   windows of all patients are classified in batched fixed-point SVM calls,
5. print the per-patient alarm summaries next to the expert annotations, and
6. report the energy the accelerator model attributes to the fleet.

Run with:  python examples/wearable_monitor.py
"""

import asyncio

import numpy as np

from repro.core import hardware_cost
from repro.features.extractor import extract_cohort_features
from repro.hardware.technology import TECH_40NM
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    AnyOf,
    ChunkCountPolicy,
    IngestGateway,
    PendingWindowPolicy,
    ShardedFleet,
    encode_chunk,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.signals.windows import WindowingParams, window_label
from repro.svm.model import train_svm

#: Monitored fleet size (one wireless node per patient) and shard count.
N_PATIENTS = 16
N_SHARDS = 4
#: Seconds of ECG per transmitted chunk (~30 s at 128 Hz).
CHUNK_SAMPLES = 3840
#: Drain whenever 32 windows are pending, or every 64 received frames,
#: whichever comes first.
DRAIN_POLICY = AnyOf([PendingWindowPolicy(32), ChunkCountPolicy(64)])
#: Per-patient gateway queue bound; "block" backpressure propagates to the
#: nodes through TCP flow control, so no frame is ever lost.
QUEUE_DEPTH = 8


async def stream_through_gateway(fleet, frames):
    """Push every node's frames through a real localhost TCP socket.

    One connection per wireless node, all sixteen concurrent — the gateway
    multiplexes them, applies per-patient backpressure and drives the
    sharded fleet's drain policy.  Returns the canonically ordered decisions
    and the gateway's frame ledger.
    """
    gateway = IngestGateway(fleet, queue_depth=QUEUE_DEPTH, backpressure="block")
    host, port = await gateway.serve()

    async def node(patient_id, node_frames):
        _, writer = await asyncio.open_connection(host, port)
        for frame in node_frames:
            writer.write(frame)
            await writer.drain()
        writer.close()
        await writer.wait_closed()

    await asyncio.gather(*[node(pid, f) for pid, f in sorted(frames.items())])
    decisions = await gateway.stop()
    return decisions, gateway.stats()


def main() -> None:
    # --------------------------------------------------------------- cohort
    params = CohortParams(
        n_patients=N_PATIENTS,
        n_sessions=2 * N_PATIENTS,
        session_duration_s=900.0,
        total_seizures=20,
        seed=42,
        render_ecg=False,
    )
    cohort = generate_cohort(params)

    # Monitor one session per patient (preferring sessions with a seizure);
    # every other session contributes to the training data.
    monitored = {}
    for patient in cohort.patients:
        sessions = sorted(patient.recordings, key=lambda r: -r.n_seizures)
        monitored[patient.patient_id] = sessions[0]
    monitored_sessions = {r.session_id for r in monitored.values()}

    features = extract_cohort_features(cohort)
    train_mask = ~np.isin(features.session_ids, sorted(monitored_sessions))
    X_train, y_train = features.X[train_mask], features.y[train_mask]

    print("Monitored fleet (%d patients):" % len(monitored))
    for patient_id, recording in sorted(monitored.items()):
        annotations = ", ".join(
            "onset %.0f s / %.0f s" % (s.onset_s, s.duration_s) for s in recording.seizures
        )
        print(
            "  patient %2d, session %2d: %d seizure(s)%s"
            % (
                patient_id,
                recording.session_id,
                recording.n_seizures,
                "  [%s]" % annotations if annotations else "",
            )
        )

    # ------------------------------------------------------------- training
    model = train_svm(X_train, y_train)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
    print(
        "\nTrained quadratic SVM: %d support vectors, quantised to 9/15 bits"
        % model.n_support_vectors
    )

    # --------------------------------------- raw ECG -> wire-format frames
    rng = np.random.default_rng(7)
    frames = {}
    for patient_id, recording in sorted(monitored.items()):
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        fs = ecg.fs
        frames[patient_id] = [
            encode_chunk(
                patient_id,
                seq,
                fs,
                ecg.ecg_mv[lo : lo + CHUNK_SAMPLES],
                dtype=np.float32,
            )
            for seq, lo in enumerate(range(0, ecg.ecg_mv.size, CHUNK_SAMPLES))
        ]
    n_frames = sum(len(chunks) for chunks in frames.values())
    n_bytes = sum(len(frame) for chunks in frames.values() for frame in chunks)
    print(
        "Encoded %d wire frames (%.1f MiB, float32 payload, ~%.0f s of ECG each)"
        % (n_frames, n_bytes / 2**20, CHUNK_SAMPLES / fs)
    )

    # -------------------- TCP gateway -> sharded streaming + inference
    fleet = ShardedFleet(detector, fs, n_shards=N_SHARDS, drain_policy=DRAIN_POLICY)
    by_shard = {}
    for patient_id in sorted(monitored):
        by_shard.setdefault(fleet.shard_of(patient_id), []).append(patient_id)
    print("Consistent-hash shard assignment:")
    for shard in sorted(by_shard):
        print("  shard %d <- patients %s" % (shard, by_shard[shard]))
    print("Drain policy: %r" % DRAIN_POLICY)

    # Every node pushes its frames over its own TCP connection; the gateway
    # reassembles, queues and delivers them, polling the drain policy.
    decisions, gateway_stats = asyncio.run(stream_through_gateway(fleet, frames))
    print(
        "Streamed %d frames over %d TCP connections through %d shards;"
        % (gateway_stats.frames_delivered, gateway_stats.connections, N_SHARDS)
    )
    print(
        "  %d batched drains (final flush included), %.0f frames/s through the"
        " gateway, peak queue depth %d"
        % (
            gateway_stats.drains,
            gateway_stats.frames_per_s,
            gateway_stats.max_queue_depth,
        )
    )
    assert gateway_stats.fully_accounted and gateway_stats.frames_delivered == n_frames

    # ------------------------------------------------- per-patient timelines
    windowing = WindowingParams()
    print("\nPer-patient window summaries (three-minute windows):")
    n_windows = 0
    n_classified = 0
    n_correct = 0
    n_alarms = 0
    for patient_id, recording in sorted(monitored.items()):
        events = []
        patient_correct = 0
        patient_classified = 0
        for decision in [d for d in decisions if d.patient_id == patient_id]:
            truth = window_label(
                decision.start_s,
                decision.end_s,
                recording.seizures,
                windowing.min_ictal_fraction,
            )
            predicted = 1 if decision.alarm else -1
            n_windows += 1
            n_classified += int(decision.usable)
            n_alarms += int(decision.alarm)
            correct = decision.usable and predicted == truth
            n_correct += int(correct)
            patient_classified += int(decision.usable)
            patient_correct += int(correct)
            if decision.alarm or truth == 1:
                status = (
                    "ALARM, seizure annotated"
                    if decision.alarm and truth == 1
                    else ("FALSE ALARM" if decision.alarm else "MISSED seizure")
                )
                events.append(
                    "    %5.0f - %5.0f s   %s" % (decision.start_s, decision.end_s, status)
                )
        print(
            "  patient %2d: %d/%d windows correct%s"
            % (
                patient_id,
                patient_correct,
                patient_classified,
                "" if events else ", quiet session",
            )
        )
        for line in events:
            print(line)
    print(
        "\nFleet window accuracy: %d / %d classified (%d unusable), %d alarm(s) raised"
        % (n_correct, n_classified, n_windows - n_classified, n_alarms)
    )

    # ----------------------------------------------------------- energy bill
    report = hardware_cost(
        n_features=model.n_features,
        n_support_vectors=model.n_support_vectors,
        feature_bits=9,
        coeff_bits=15,
        per_feature_scaling=True,
    )
    # Only windows that actually ran through the classifier draw energy.
    fleet_energy_uj = report.energy_nj * n_classified / 1000.0
    monitored_minutes = sum(r.duration_s for r in monitored.values()) / 60.0
    print(
        "\nAccelerator model (%s): %.0f nJ per classification, %.4f mm2"
        % (TECH_40NM.name, report.energy_nj, report.area_mm2)
    )
    print(
        "Inference energy for %.0f monitored minutes: %.2f uJ (%d classified windows)"
        % (monitored_minutes, fleet_energy_uj, n_classified)
    )


if __name__ == "__main__":
    main()
