"""Benchmarks: the raw-speed hot path vs the naive per-window recompute.

Two comparisons, both on the paper's 9/15-bit fixed-point detector trained on
the real experiment features:

* **Quantized kernel** — the fused batch pipeline (preallocated per-thread
  workspaces, one ``einsum``/``matmul`` pass with the MAC1 stage in SIMD
  int32 where the exact overflow bound allows, zero intermediate
  allocations) against the one-window-at-a-time reference path that every
  drain cycle used before the fused kernel existed.  The acceptance bar of
  this optimisation round is **10x** the naive quantized windows/second,
  bit-identical scores and labels; the committed record pins the measured
  ~19x.

* **End to end** — the streaming chain (ring-buffer windower, overlap-aware
  feature cache, one batched classification per drain) against the naive
  chain (same windows, uncached per-window feature extraction, per-window
  reference classification) over an identical synthetic beat workload.
  Feature extraction dominates this path, so the asserted floor is modest;
  the absolute windows/second of both chains are recorded.

``BENCH_hotpath.json`` next to this file is the committed per-commit record.
The kernel bench refuses to pass when the measured speedup falls more than
20% below the committed record, so a regression that erodes the fused path
fails CI even while still above the absolute 10x bar.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.profile import _synth_beat_chunks
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import PendingWindow, classify_windows
from repro.signals.windows import StreamingWindower, WindowingParams
from repro.svm.model import train_svm

from benchmarks.conftest import run_once

#: Kernel workload: one deep drain cycle — 128 patients x 32 pending
#: overlapping windows (``step = window/4``) awaiting classification.
KERNEL_PATIENTS = 128
KERNEL_WINDOWS = 4096

#: End-to-end workload: a small fleet streamed beat-by-beat through the
#: windower -> features -> classifier chain on the overlapping grid.
E2E_PATIENTS = 8
E2E_DURATION_S = 480.0
E2E_WINDOW_S = 60.0
E2E_STEP_S = 15.0

#: Committed per-commit speedup record (see module docstring).
HOTPATH_RECORD = Path(__file__).with_name("BENCH_hotpath.json")

#: Tolerated slack against the committed record: fail on >20% regression.
RECORD_SLACK = 0.8


def _reference_detector(model, config):
    """The same quantization with the fused batch kernel switched off.

    Its public methods then run the pre-optimisation reference path —
    per-call quantization and the row-by-row int64 accumulation — which is
    exactly what a drain cycle cost before this optimisation round.
    """
    det = QuantizedSVM(model, config)
    det._use_fused = False
    return det


def _measure_kernel(det_fused, det_naive, X, repeats=15):
    """Best-of-N interleaved timing: per-window reference vs fused batch.

    Interleaving reps means transient machine load hits both paths equally;
    best-of-N filters scheduler hiccups (the fused rep is short, so plenty of
    reps are needed for its minimum to find a quiet scheduling slot).  The
    allocator is warmed first so glibc's dynamic mmap threshold settles
    before either path is timed, and both paths run once untimed so one-time
    costs (workspace allocation, import-time caches) stay out of the
    comparison.  The per-window slicing happens inside the timed region,
    exactly as the original naive serving loop sliced.
    """
    for _ in range(50):
        _warm = np.empty(1 << 21)
    del _warm

    n = X.shape[0]
    det_fused.scores_and_labels(X)
    det_naive.scores_and_labels(X[:1])
    best_naive = best_fused = float("inf")
    fused_scores = fused_labels = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            per_window = [det_naive.scores_and_labels(X[i : i + 1]) for i in range(n)]
            best_naive = min(best_naive, time.perf_counter() - t0)

            t0 = time.perf_counter()
            fused_scores, fused_labels = det_fused.scores_and_labels(X)
            best_fused = min(best_fused, time.perf_counter() - t0)
    finally:
        gc.enable()

    naive_scores = np.concatenate([s for s, _ in per_window])
    naive_labels = np.concatenate([l for _, l in per_window])
    return naive_scores, naive_labels, fused_scores, fused_labels, best_naive, best_fused


def test_bench_hotpath_quantized_kernel(benchmark, experiment_data):
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    config = QuantizationConfig(feature_bits=9, coeff_bits=15)
    det_fused = QuantizedSVM(model, config)
    det_naive = _reference_detector(model, config)
    assert det_fused._use_fused

    reps = -(-KERNEL_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:KERNEL_WINDOWS]

    naive_scores, naive_labels, fused_scores, fused_labels, t_naive, t_fused = run_once(
        benchmark, _measure_kernel, det_fused, det_naive, X
    )

    n = X.shape[0]
    speedup = t_naive / t_fused
    print()
    print(
        "pending windows per drain : %d  (%d patients, %d support vectors, 9/15 bits)"
        % (n, KERNEL_PATIENTS, model.n_support_vectors)
    )
    print("naive per-window reference: %8.0f windows/s" % (n / t_naive))
    print(
        "fused batch kernel        : %8.0f windows/s  (%.1fx)"
        % (n / t_fused, speedup)
    )
    benchmark.extra_info["windows"] = n
    benchmark.extra_info["naive_windows_per_s"] = n / t_naive
    benchmark.extra_info["fused_windows_per_s"] = n / t_fused
    benchmark.extra_info["speedup"] = speedup

    # Bit-exactness: the fused kernel must agree with the reference path to
    # the last bit, scores and labels both.
    assert np.array_equal(naive_scores, fused_scores)
    assert np.array_equal(naive_labels, fused_labels)

    # The acceptance bar of this optimisation round.
    assert speedup >= 10.0

    # Regression gate against the committed record.
    if HOTPATH_RECORD.exists():
        record = json.loads(HOTPATH_RECORD.read_text())
        floor = RECORD_SLACK * record["quantized_kernel"]["speedup"]
        assert speedup >= floor, (
            "fused-kernel speedup %.1fx regressed more than 20%% below the "
            "committed record (%.1fx); update benchmarks/BENCH_hotpath.json "
            "only with a justified trade-off" % (speedup, floor / RECORD_SLACK)
        )


def _stream_fast(streams, detector, windowing):
    """The optimised chain: ring windower + feature cache + batched drain."""
    windowers = [StreamingWindower(windowing) for _ in streams]
    extractors = [FeatureExtractor(feature_cache=True) for _ in streams]
    decisions = []
    for chunk_index in range(len(streams[0])):
        pending = []
        for p, stream in enumerate(streams):
            times, amps = stream[chunk_index]
            for window in windowers[p].push(times, amps):
                try:
                    feats = extractors[p].extract_beat_window(window)
                except ValueError:
                    feats = None
                pending.append(
                    PendingWindow(p, window.start_s, window.end_s, window.n_beats, feats)
                )
        if pending:
            decisions.extend(classify_windows(detector, pending))
    return decisions


def _stream_naive(streams, detector, windowing):
    """The naive chain: same windows, uncached features, per-window classify."""
    windowers = [StreamingWindower(windowing) for _ in streams]
    decisions = []
    for chunk_index in range(len(streams[0])):
        for p, stream in enumerate(streams):
            times, amps = stream[chunk_index]
            for window in windowers[p].push(times, amps):
                extractor = FeatureExtractor(feature_cache=False)
                try:
                    feats = extractor.extract_beat_window(window)
                except ValueError:
                    feats = None
                pending = [
                    PendingWindow(p, window.start_s, window.end_s, window.n_beats, feats)
                ]
                decisions.extend(classify_windows(detector, pending))
    return decisions


def _measure_e2e(streams, det_fused, det_naive, windowing, repeats=6):
    for _ in range(50):
        _warm = np.empty(1 << 21)
    del _warm

    # One untimed pass of each chain so allocator/workspace warm-up and any
    # state left behind by earlier benches in the same process stays out of
    # the comparison.
    _stream_naive(streams, det_naive, windowing)
    _stream_fast(streams, det_fused, windowing)

    best_naive = best_fast = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            naive = _stream_naive(streams, det_naive, windowing)
            best_naive = min(best_naive, time.perf_counter() - t0)

            t0 = time.perf_counter()
            fast = _stream_fast(streams, det_fused, windowing)
            best_fast = min(best_fast, time.perf_counter() - t0)
    finally:
        gc.enable()
    return naive, fast, best_naive, best_fast


def test_bench_hotpath_end_to_end(benchmark, experiment_data):
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    config = QuantizationConfig(feature_bits=9, coeff_bits=15)
    det_fused = QuantizedSVM(model, config)
    det_naive = _reference_detector(model, config)

    windowing = WindowingParams(window_s=E2E_WINDOW_S, step_s=E2E_STEP_S, min_beats=16)
    streams = [
        _synth_beat_chunks(np.random.default_rng(100 + p), E2E_DURATION_S, chunk_s=8.0)
        for p in range(E2E_PATIENTS)
    ]

    naive, fast, t_naive, t_fast = run_once(
        benchmark, _measure_e2e, streams, det_fused, det_naive, windowing
    )

    n = len(fast)
    speedup = t_naive / t_fast
    print()
    print("windows streamed          : %d  (%d patients)" % (n, E2E_PATIENTS))
    print("naive uncached chain      : %8.0f windows/s" % (n / t_naive))
    print(
        "ring+cache+batched chain  : %8.0f windows/s  (%.2fx)"
        % (n / t_fast, speedup)
    )
    benchmark.extra_info["windows"] = n
    benchmark.extra_info["naive_windows_per_s"] = n / t_naive
    benchmark.extra_info["fast_windows_per_s"] = n / t_fast
    benchmark.extra_info["speedup"] = speedup

    # Decision-for-decision bit-exactness across the whole chain.
    assert len(naive) == len(fast)
    for a, b in zip(naive, fast):
        assert a == b

    # Feature extraction dominates end to end, so the asserted floor is
    # modest — it only guards against the optimised chain regressing to
    # slower-than-naive.  Measured solo the chain wins ~1.15x (recorded in
    # BENCH_hotpath.json); inside the full suite the ratio jitters a few
    # percent with allocator/cache state left by earlier benches, hence the
    # slack.  The kernel bench above carries the 10x bar.
    assert speedup >= 1.02
