"""Three-minute analysis windows and their seizure labels.

The paper extracts one 53-dimensional feature vector per three-minute ECG
window; windows overlapping a seizure are labelled ``+1`` and all others
``-1``.  Because seizures are rare, the positive class is heavily
under-represented — exactly the situation in which sensitivity/specificity
and their geometric mean are the appropriate figures of merit.

To give the training folds a workable number of positive examples, windows
around seizures may be generated with a finer stride (``seizure_step_s``)
than background windows (``step_s``); this is a standard practice for rare
event detection and does not change the evaluation protocol (folds are still
split by recording session).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.signals.dataset import Recording
from repro.signals.seizures import Seizure

__all__ = ["Window", "WindowingParams", "extract_windows", "window_label"]


@dataclass
class WindowingParams:
    """Windowing configuration."""

    #: Window length in seconds (the paper uses three-minute windows).
    window_s: float = 180.0
    #: Stride between consecutive background windows.
    step_s: float = 180.0
    #: Stride used inside the neighbourhood of a seizure, to enrich the
    #: positive class.  Set equal to ``step_s`` to disable enrichment.
    seizure_step_s: float = 45.0
    #: Half-width of the neighbourhood around each seizure in which the finer
    #: stride is applied, in seconds.
    seizure_context_s: float = 240.0
    #: Minimum fraction of the window that must be ictal for a positive label.
    min_ictal_fraction: float = 0.05
    #: Windows with fewer beats than this are discarded as unusable.
    min_beats: int = 60


@dataclass(frozen=True)
class Window:
    """A labelled analysis window of one recording."""

    patient_id: int
    session_id: int
    start_s: float
    end_s: float
    label: int
    beat_slice: slice

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def beats_of(self, recording: Recording) -> np.ndarray:
        """Beat times of the recording that fall inside the window."""
        return recording.beat_times_s[self.beat_slice]

    def rr_of(self, recording: Recording) -> np.ndarray:
        """RR intervals whose *starting* beat falls inside the window."""
        start, stop = self.beat_slice.start, self.beat_slice.stop
        stop_rr = min(stop, recording.rr_s.shape[0])
        return recording.rr_s[start:stop_rr]

    def r_amplitudes_of(self, recording: Recording) -> np.ndarray:
        """R-wave amplitudes of the beats inside the window."""
        return recording.r_amplitudes_mv[self.beat_slice]


def window_label(
    start_s: float, end_s: float, seizures: Sequence[Seizure], min_ictal_fraction: float
) -> int:
    """Label of a window: ``+1`` if it overlaps a seizure enough, else ``-1``."""
    for seizure in seizures:
        if seizure.ictal_fraction(start_s, end_s) >= min_ictal_fraction:
            return 1
        # Very short windows fully inside the ictal phase also count.
        if seizure.overlaps(start_s, end_s) and seizure.duration_s >= (end_s - start_s):
            return 1
    return -1


def _candidate_starts(duration_s: float, seizures: Sequence[Seizure], params: WindowingParams) -> np.ndarray:
    """Start times of all candidate windows (background grid + seizure-context grid)."""
    last_start = duration_s - params.window_s
    if last_start < 0:
        return np.empty(0)
    starts = list(np.arange(0.0, last_start + 1e-9, params.step_s))
    if params.seizure_step_s < params.step_s:
        for seizure in seizures:
            lo = max(0.0, seizure.onset_s - params.seizure_context_s - params.window_s)
            hi = min(last_start, seizure.offset_s + params.seizure_context_s)
            if hi >= lo:
                starts.extend(np.arange(lo, hi + 1e-9, params.seizure_step_s))
    starts = np.unique(np.round(np.asarray(starts), 3))
    return starts


def extract_windows(recording: Recording, params: WindowingParams | None = None) -> List[Window]:
    """Slice a recording into labelled analysis windows.

    Parameters
    ----------
    recording:
        The recording session to window.
    params:
        Windowing configuration; the defaults reproduce the paper's
        three-minute windows with positive-class enrichment around seizures.

    Returns
    -------
    list of :class:`Window`, ordered by start time.
    """
    if params is None:
        params = WindowingParams()
    starts = _candidate_starts(recording.duration_s, recording.seizures, params)
    beat_times = recording.beat_times_s

    windows: List[Window] = []
    for start in starts:
        end = start + params.window_s
        first = int(np.searchsorted(beat_times, start, side="left"))
        last = int(np.searchsorted(beat_times, end, side="right"))
        if last - first < params.min_beats:
            continue
        label = window_label(start, end, recording.seizures, params.min_ictal_fraction)
        windows.append(
            Window(
                patient_id=recording.patient_id,
                session_id=recording.session_id,
                start_s=float(start),
                end_s=float(end),
                label=label,
                beat_slice=slice(first, last),
            )
        )
    return windows
