"""Unit tests for the RR-interval (beat) generator."""

import numpy as np
import pytest

from repro.signals.respiration import generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series
from repro.signals.seizures import Seizure


def _make_series(seizures=(), duration=900.0, seed=0, params=None, **kwargs):
    rng = np.random.default_rng(seed)
    respiration = generate_respiration(duration, list(seizures), rng, None)
    return generate_rr_series(duration, list(seizures), respiration, rng, params, **kwargs)


class TestRRSeriesBasics:
    def test_beat_times_monotonic(self):
        series = _make_series()
        assert np.all(np.diff(series.beat_times_s) > 0)

    def test_rr_matches_beat_times(self):
        series = _make_series()
        assert np.allclose(series.rr_s, np.diff(series.beat_times_s))

    def test_beats_within_duration(self):
        series = _make_series(duration=600.0)
        assert series.beat_times_s[0] >= 0.0
        assert series.beat_times_s[-1] <= 600.0 + 1e-9

    def test_mean_hr_close_to_baseline(self):
        params = RRModelParams(ectopic_rate=0.0)
        series = _make_series(params=params, base_hr_bpm=70.0)
        assert series.mean_hr_bpm() == pytest.approx(70.0, rel=0.12)

    def test_beat_count_scales_with_heart_rate(self):
        params = RRModelParams(ectopic_rate=0.0)
        slow = _make_series(params=params, base_hr_bpm=60.0, seed=1)
        fast = _make_series(params=params, base_hr_bpm=90.0, seed=1)
        assert fast.n_beats > slow.n_beats

    def test_rr_within_physiological_bounds(self):
        series = _make_series()
        assert np.all(series.rr_s > 0.25) and np.all(series.rr_s < 2.0)

    def test_deterministic_given_seed(self):
        a = _make_series(seed=11)
        b = _make_series(seed=11)
        assert np.allclose(a.beat_times_s, b.beat_times_s)

    def test_too_short_session_raises(self):
        rng = np.random.default_rng(0)
        respiration = generate_respiration(2.0, [], rng)
        with pytest.raises(ValueError):
            generate_rr_series(0.2, [], respiration, rng)


class TestSeizureResponse:
    def _windowed_stats(self, series, start, stop):
        mask = (series.beat_times_s[1:] >= start) & (series.beat_times_s[1:] < stop)
        rr = series.rr_s[mask]
        hr = 60.0 / rr
        rmssd = np.sqrt(np.mean(np.diff(rr) ** 2))
        return hr.mean(), rmssd

    def test_ictal_tachycardia(self):
        seizure = Seizure(onset_s=450.0, duration_s=90.0)
        params = RRModelParams(ectopic_rate=0.0)
        series = _make_series([seizure], params=params, seed=2)
        hr_ictal, _ = self._windowed_stats(series, 460.0, 540.0)
        hr_base, _ = self._windowed_stats(series, 60.0, 300.0)
        assert hr_ictal > hr_base * 1.08

    def test_ictal_rmssd_suppression(self):
        seizure = Seizure(onset_s=450.0, duration_s=120.0)
        params = RRModelParams(ectopic_rate=0.0)
        series = _make_series([seizure], params=params, seed=3)
        _, rmssd_ictal = self._windowed_stats(series, 455.0, 565.0)
        _, rmssd_base = self._windowed_stats(series, 60.0, 300.0)
        assert rmssd_ictal < rmssd_base

    def test_hr_response_scales_tachycardia(self):
        seizure = Seizure(onset_s=450.0, duration_s=90.0)
        params = RRModelParams(ectopic_rate=0.0)
        strong = _make_series([seizure], params=params, seed=4, hr_response=1.0)
        weak = _make_series([seizure], params=params, seed=4, hr_response=0.3)
        hr_strong, _ = self._windowed_stats(strong, 460.0, 540.0)
        hr_weak, _ = self._windowed_stats(weak, 460.0, 540.0)
        assert hr_strong > hr_weak

    def test_arousal_raises_rate_without_killing_rsa(self):
        arousal = Seizure(onset_s=450.0, duration_s=120.0, preictal_s=30.0, postictal_s=60.0)
        params = RRModelParams(ectopic_rate=0.0)
        rng = np.random.default_rng(5)
        respiration = generate_respiration(900.0, [], rng, None, arousals=[arousal])
        series = generate_rr_series(900.0, [], respiration, rng, params, arousals=[arousal])
        hr_ar, rmssd_ar = self._windowed_stats(series, 460.0, 560.0)
        hr_base, rmssd_base = self._windowed_stats(series, 60.0, 300.0)
        assert hr_ar > hr_base * 1.05
        # RSA (and hence RMSSD) should not collapse the way it does ictally.
        assert rmssd_ar > 0.4 * rmssd_base


class TestEctopicBeats:
    def test_ectopy_increases_rmssd(self):
        clean_params = RRModelParams(ectopic_rate=0.0)
        noisy_params = RRModelParams(ectopic_rate=0.05)
        clean = _make_series(params=clean_params, seed=6)
        noisy = _make_series(params=noisy_params, seed=6)
        rmssd_clean = np.sqrt(np.mean(np.diff(clean.rr_s) ** 2))
        rmssd_noisy = np.sqrt(np.mean(np.diff(noisy.rr_s) ** 2))
        assert rmssd_noisy > rmssd_clean

    def test_ectopy_preserves_monotonicity(self):
        params = RRModelParams(ectopic_rate=0.1)
        series = _make_series(params=params, seed=7)
        assert np.all(np.diff(series.beat_times_s) > 0)
