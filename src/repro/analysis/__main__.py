"""CLI of the invariant linter: ``python -m repro.analysis [paths...]``.

Exit status 0 means every checked file honours the pinned invariants; 1
means findings were printed (one ``path:line:col [rule-id] message`` block
each, with a fix hint); 2 means the invocation itself was bad.  With no
paths the linter checks the ``repro`` package source it is running from —
the same default the CI ``static-analysis`` job uses.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.framework import run_paths
from repro.analysis.rules import default_rules


def _default_target() -> str:
    """The source tree of the running ``repro`` package."""
    import repro

    return str(Path(repro.__file__).parent)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically enforce the serving stack's pinned invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package source)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, what it checks and the invariant it protects",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(
                "%s\n  checks:    %s\n  protects:  %s"
                % (rule.rule_id, rule.description, rule.invariant)
            )
        return 0

    paths = args.paths or [_default_target()]
    try:
        report = run_paths(paths, rules=rules)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
