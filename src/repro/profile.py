"""Hot-path profiling harness: ``python -m repro.profile``.

Drives the per-patient serving pipeline — streaming windower, feature
extraction (with or without the overlap cache), fixed-point classification —
over a deterministic synthetic beat workload, and reports per-stage wall
time plus windows/second.  ``--cprofile`` additionally prints the top
functions by cumulative time, which is how the hot spots behind the
ring-buffer windower, the batched Welch path and the fused int64 kernel
were found in the first place.

The workload is synthesised directly at the beat level (seeded RNG, no ECG
waveform DSP), so the numbers isolate the windower → features → classifier
chain that dominates a drain cycle.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
from repro.serving.streaming import PendingWindow, classify_windows
from repro.signals.windows import BeatWindow, StreamingWindower, WindowingParams
from repro.svm.model import train_svm

__all__ = ["ProfileReport", "run_profile", "main"]


class ProfileReport:
    """Per-stage wall-time totals of one profiling run."""

    def __init__(self) -> None:
        self.push_s = 0.0
        self.featurize_s = 0.0
        self.classify_s = 0.0
        self.n_windows = 0
        self.n_usable = 0
        self.n_beats = 0

    @property
    def total_s(self) -> float:
        return self.push_s + self.featurize_s + self.classify_s

    def lines(self) -> List[str]:
        def rate(seconds: float) -> str:
            if seconds <= 0.0 or self.n_windows == 0:
                return "-"
            return "%10.0f win/s" % (self.n_windows / seconds)

        return [
            "windows emitted     : %d (%d usable), %d beats" % (
                self.n_windows,
                self.n_usable,
                self.n_beats,
            ),
            "windower push       : %8.1f ms  %s" % (1e3 * self.push_s, rate(self.push_s)),
            "feature extraction  : %8.1f ms  %s" % (1e3 * self.featurize_s, rate(self.featurize_s)),
            "classification      : %8.1f ms  %s" % (1e3 * self.classify_s, rate(self.classify_s)),
            "end to end          : %8.1f ms  %s" % (1e3 * self.total_s, rate(self.total_s)),
        ]


def _make_detector(rng: np.random.Generator, n_train: int = 160) -> QuantizedSVM:
    """A 9/15-bit fixed-point detector trained on a synthetic feature set."""
    X = rng.normal(size=(n_train, 53)) * rng.uniform(0.05, 20.0, size=53)
    y = np.where(rng.random(n_train) > 0.7, 1, -1)
    y[0], y[1] = 1, -1  # both classes present regardless of the draw
    model = train_svm(X, y)
    return QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))


def _synth_beat_chunks(
    rng: np.random.Generator, duration_s: float, chunk_s: float
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """A deterministic beat stream (~72 bpm with jitter), split into chunks."""
    n = int(duration_s / 0.83) + 8
    rr = rng.uniform(0.7, 0.95, size=n)
    times = np.cumsum(rr)
    times = times[times < duration_s]
    amps = 1.0 + 0.2 * rng.standard_normal(times.shape[0])
    chunks: List[Tuple[np.ndarray, np.ndarray]] = []
    edges = np.arange(0.0, duration_s + chunk_s, chunk_s)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (times >= lo) & (times < hi)
        chunks.append((times[mask], amps[mask]))
    return chunks


def run_profile(
    patients: int,
    duration_s: float,
    window_s: float,
    step_fraction: float,
    feature_cache: bool,
    seed: int,
    clock: Callable[[], float] = time.perf_counter,
) -> ProfileReport:
    """Run the windower → features → classifier chain over a synthetic fleet.

    Every patient gets an independent seeded beat stream, a ring-buffer
    windower on the overlapping grid (``step = step_fraction * window``) and
    a feature extractor; completed windows are classified in one batched
    call per drain cycle, exactly like a fleet drain.
    """
    rng = np.random.default_rng(seed)
    detector = _make_detector(rng)
    windowing = WindowingParams(
        window_s=window_s, step_s=step_fraction * window_s, min_beats=16
    )
    report = ProfileReport()

    streams = [
        _synth_beat_chunks(np.random.default_rng(seed + 1 + p), duration_s, chunk_s=8.0)
        for p in range(patients)
    ]
    windowers = [StreamingWindower(windowing) for _ in range(patients)]
    extractors = [FeatureExtractor(feature_cache=feature_cache) for _ in range(patients)]

    n_chunks = len(streams[0])
    for chunk_index in range(n_chunks):
        completed: List[Tuple[int, BeatWindow]] = []
        t0 = clock()
        for p in range(patients):
            times, amps = streams[p][chunk_index]
            for window in windowers[p].push(times, amps):
                completed.append((p, window))
        report.push_s += clock() - t0

        if not completed:
            continue
        t0 = clock()
        pending: List[PendingWindow] = []
        for p, window in completed:
            try:
                features: Optional[np.ndarray] = extractors[p].extract_beat_window(window)
            except ValueError:
                features = None
            pending.append(
                PendingWindow(
                    patient_id=p,
                    start_s=window.start_s,
                    end_s=window.end_s,
                    n_beats=window.n_beats,
                    features=features,
                )
            )
        report.featurize_s += clock() - t0
        report.n_windows += len(pending)
        report.n_usable += sum(1 for w in pending if w.usable)
        report.n_beats += sum(w.n_beats for w in pending)

        t0 = clock()
        classify_windows(detector, pending)
        report.classify_s += clock() - t0

    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="Profile the streaming hot path on a synthetic fleet.",
    )
    parser.add_argument("--patients", type=int, default=16, help="fleet size")
    parser.add_argument(
        "--duration", type=float, default=600.0, help="simulated seconds per patient"
    )
    parser.add_argument("--window", type=float, default=60.0, help="window length (s)")
    parser.add_argument(
        "--step-fraction",
        type=float,
        default=0.25,
        help="stride as a fraction of the window (0.25 = 4x overlap)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the overlap-aware feature cache (A/B comparison)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help="additionally print the top functions by cumulative time",
    )
    args = parser.parse_args(argv)

    kwargs = dict(
        patients=args.patients,
        duration_s=args.duration,
        window_s=args.window,
        step_fraction=args.step_fraction,
        feature_cache=not args.no_cache,
        seed=args.seed,
    )
    print(
        "profiling %d patients x %.0f s, window %.0f s, step %.2f, cache %s"
        % (
            args.patients,
            args.duration,
            args.window,
            args.step_fraction,
            "off" if args.no_cache else "on",
        )
    )
    if args.cprofile:
        profiler = cProfile.Profile()
        profiler.enable()
        report = run_profile(**kwargs)
        profiler.disable()
    else:
        profiler = None
        report = run_profile(**kwargs)

    for line in report.lines():
        print(line)
    if profiler is not None:
        print()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
