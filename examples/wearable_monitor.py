#!/usr/bin/env python3
"""Wearable-monitor walkthrough: from the raw ECG waveform to an on-node alarm.

The two other examples start from pre-extracted feature matrices.  This one
exercises the *full* signal path of Figure 1 of the paper for a single
recording session, the way the firmware of a Wireless Body Sensor Node would:

1. synthesise a raw single-lead ECG trace for a session containing a seizure,
2. detect R peaks with the Pan–Tompkins-style detector,
3. slide a three-minute window over the beat sequence and extract the
   53 features per window,
4. classify every window with a *fixed-point* quadratic SVM (9-bit features,
   15-bit coefficients) trained on the rest of the cohort, and
5. print the resulting alarm timeline next to the expert annotation, plus the
   energy the accelerator model attributes to the monitoring session.

Run with:  python examples/wearable_monitor.py
"""

import numpy as np

from repro.core import hardware_cost
from repro.dsp.peaks import detect_r_peaks
from repro.features.extractor import FeatureExtractor, extract_cohort_features
from repro.hardware.technology import TECH_40NM
from repro.quant import QuantizationConfig, QuantizedSVM
from repro.signals.dataset import CohortParams, Recording, generate_cohort
from repro.signals.windows import Window, WindowingParams, window_label
from repro.svm.model import train_svm


def build_streaming_windows(recording: Recording, beat_times: np.ndarray, params: WindowingParams):
    """Non-overlapping three-minute windows over *detected* beats."""
    windows = []
    start = 0.0
    while start + params.window_s <= recording.duration_s:
        end = start + params.window_s
        first = int(np.searchsorted(beat_times, start, side="left"))
        last = int(np.searchsorted(beat_times, end, side="right"))
        if last - first >= params.min_beats:
            windows.append(
                Window(
                    patient_id=recording.patient_id,
                    session_id=recording.session_id,
                    start_s=start,
                    end_s=end,
                    label=window_label(start, end, recording.seizures, params.min_ictal_fraction),
                    beat_slice=slice(first, last),
                )
            )
        start += params.window_s
    return windows


def main() -> None:
    # --------------------------------------------------------------- cohort
    params = CohortParams(
        n_patients=4,
        n_sessions=8,
        session_duration_s=2400.0,
        total_seizures=12,
        seed=42,
        render_ecg=False,
    )
    cohort = generate_cohort(params)

    # Pick a monitored session that contains at least one seizure and render
    # its raw ECG; all the other sessions form the training data.
    monitored = next(r for r in cohort.recordings if r.n_seizures > 0)
    training_features = extract_cohort_features(cohort)
    train_mask = training_features.session_ids != monitored.session_id
    X_train = training_features.X[train_mask]
    y_train = training_features.y[train_mask]

    print(
        "Monitored session: patient %d, session %d, %d annotated seizure(s)"
        % (monitored.patient_id, monitored.session_id, monitored.n_seizures)
    )
    for seizure in monitored.seizures:
        print(
            "  expert annotation: onset %6.0f s, duration %4.0f s"
            % (seizure.onset_s, seizure.duration_s)
        )

    # ------------------------------------------------------------- training
    model = train_svm(X_train, y_train)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))
    print(
        "\nTrained quadratic SVM: %d support vectors, quantised to 9/15 bits"
        % model.n_support_vectors
    )

    # ------------------------------------------------ raw ECG -> beat stream
    from repro.signals.ecg_model import synthesize_ecg

    rng = np.random.default_rng(7)
    ecg = synthesize_ecg(monitored.beat_times_s, monitored.duration_s, monitored.respiration, rng)
    peak_indices, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
    r_amplitudes = ecg.ecg_mv[peak_indices]
    print(
        "R-peak detection: %d beats detected (%d in the reference beat sequence)"
        % (peak_times.size, monitored.n_beats)
    )

    # Re-package the detected beats as a Recording so the standard feature
    # extractor can be reused unchanged.
    detected = Recording(
        patient_id=monitored.patient_id,
        session_id=monitored.session_id,
        duration_s=monitored.duration_s,
        beat_times_s=peak_times,
        rr_s=np.diff(peak_times),
        r_amplitudes_mv=r_amplitudes,
        seizures=monitored.seizures,
        respiration=monitored.respiration,
    )

    # ------------------------------------------------- windowing + inference
    windowing = WindowingParams()
    windows = build_streaming_windows(detected, peak_times, windowing)
    extractor = FeatureExtractor()

    print("\nAlarm timeline (one three-minute window per line):")
    n_alarms = 0
    n_correct = 0
    for window in windows:
        try:
            vector = extractor.extract_window(detected, window)
        except ValueError:
            continue
        predicted = int(detector.predict(vector.reshape(1, -1))[0])
        truth = window.label
        marker = "ALARM" if predicted == 1 else "  -  "
        agreement = "ok" if predicted == truth else ("missed" if truth == 1 else "false alarm")
        if predicted == 1:
            n_alarms += 1
        if predicted == truth:
            n_correct += 1
        print(
            "  %5.0f - %5.0f s   %s   (annotation: %s, %s)"
            % (window.start_s, window.end_s, marker, "seizure" if truth == 1 else "background", agreement)
        )
    print(
        "window accuracy on the monitored session: %d / %d, %d alarm(s) raised"
        % (n_correct, len(windows), n_alarms)
    )

    # ----------------------------------------------------------- energy bill
    report = hardware_cost(
        n_features=model.n_features,
        n_support_vectors=model.n_support_vectors,
        feature_bits=9,
        coeff_bits=15,
        per_feature_scaling=True,
    )
    session_energy_uj = report.energy_nj * len(windows) / 1000.0
    print(
        "\nAccelerator model (%s): %.0f nJ per classification, %.4f mm2"
        % (TECH_40NM.name, report.energy_nj, report.area_mm2)
    )
    print(
        "Inference energy for the %.0f-minute session: %.2f uJ (%d windows)"
        % (monitored.duration_s / 60.0, session_energy_uj, len(windows))
    )


if __name__ == "__main__":
    main()
