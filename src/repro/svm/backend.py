"""Float-domain inference backend: the serving adapter around ``SVMModel``.

The serving layer's :class:`~repro.serving.registry.ModelRegistry` maps every
patient to an *inference backend* — anything satisfying the structural
:class:`~repro.serving.registry.InferenceBackend` protocol.  A bare
:class:`~repro.svm.model.SVMModel` already satisfies it, but a *tailored*
design point usually consumes a subset of the 53 extracted features: the
fleet's monitors always emit full-width feature vectors, so the model needs a
front-end that selects its own columns before the kernel sees them.
:class:`FloatSVMBackend` is that thin adapter: column projection + a stable
human-readable label for per-model serving stats, delegating the actual
mathematics to the wrapped model unchanged (scores are therefore bit-identical
to calling the model directly on pre-sliced inputs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.svm.model import SVMModel

__all__ = ["FloatSVMBackend", "project_features"]


def project_features(X: np.ndarray, feature_indices: Optional[np.ndarray]) -> np.ndarray:
    """Select a backend's feature columns from full-width window vectors.

    ``feature_indices is None`` means the backend consumes the vectors as-is.
    The projection is the only thing the serving adapters add in front of the
    models, so it is shared by the float and fixed-point backends.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if feature_indices is None:
        return X
    if feature_indices.size:
        if int(feature_indices.min()) < 0:
            # Negative indices would wrap silently — in the alarm path a
            # caller's off-by-one must fail loudly, not select a wrong column.
            raise ValueError(
                "backend feature indices must be non-negative, got %d"
                % int(feature_indices.min())
            )
        if int(feature_indices.max()) >= X.shape[1]:
            raise ValueError(
                "backend selects feature %d but the window vectors have only %d features"
                % (int(feature_indices.max()), X.shape[1])
            )
    return X[:, feature_indices]


class FloatSVMBackend:
    """A trained float SVM behind the serving-layer backend interface.

    Parameters
    ----------
    model:
        The trained :class:`~repro.svm.model.SVMModel`.
    feature_indices:
        Optional column indices (into the fleet's full-width feature vectors)
        this model consumes, in the order the model was trained on.  ``None``
        means the model consumes the full vector.
    name:
        Optional label override for :meth:`describe` (per-model drain stats);
        defaults to a ``float64[f=...,sv=...]`` signature.
    """

    def __init__(
        self,
        model: SVMModel,
        feature_indices: Optional[Sequence[int]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.model = model
        self.feature_indices = (
            None
            if feature_indices is None
            else np.asarray(list(feature_indices), dtype=int)
        )
        if self.feature_indices is not None and self.feature_indices.size != model.n_features:
            raise ValueError(
                "feature_indices selects %d columns but the model consumes %d features"
                % (self.feature_indices.size, model.n_features)
            )
        self._name = name

    # ------------------------------------------------------------- protocol
    @property
    def n_features(self) -> int:
        """Features the wrapped model consumes (after column projection)."""
        return self.model.n_features

    @property
    def n_support_vectors(self) -> int:
        return self.model.n_support_vectors

    def _project(self, X: np.ndarray) -> np.ndarray:
        return project_features(X, self.feature_indices)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self.model.decision_function(self._project(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.model.predict(self._project(X))

    def scores_and_labels(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.model.scores_and_labels(self._project(X))

    def describe(self) -> str:
        """Stable label used by per-model serving stats and drain counters."""
        if self._name is not None:
            return self._name
        return "float64[f=%d,sv=%d]" % (self.model.n_features, self.model.n_support_vectors)

    def __repr__(self) -> str:
        return "FloatSVMBackend(%s)" % self.describe()
