"""Pan–Tompkins-style R-peak detection.

The WBSN signal path in Figure 1 of the paper starts from the raw ECG; the
feature extractor needs beat locations (for HRV / Lorenz features) and R-wave
amplitudes (for amplitude-based EDR).  This module provides a compact
Pan–Tompkins-style detector: band-pass filtering, differentiation, squaring,
moving-window integration and adaptive thresholding with a refractory period,
followed by a local refinement of the R-peak position on the filtered signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dsp.filters import apply_fir, bandpass_fir, moving_average

__all__ = ["PanTompkinsParams", "detect_r_peaks"]


@dataclass
class PanTompkinsParams:
    """Tuning parameters of the R-peak detector."""

    #: Pass band of the QRS enhancement filter (Hz).
    band_low_hz: float = 5.0
    band_high_hz: float = 18.0
    #: Moving-window integration length in seconds (roughly the QRS width).
    integration_window_s: float = 0.150
    #: Refractory period: minimum spacing between detected beats (seconds).
    refractory_s: float = 0.25
    #: Threshold as a fraction of the running signal level.
    threshold_fraction: float = 0.35
    #: Time constant of the running signal-level estimate, in peaks.
    level_memory: float = 8.0
    #: Half-width of the window used to refine the R position (seconds).
    refine_half_window_s: float = 0.10


def _moving_window_integration(x: np.ndarray, width: int) -> np.ndarray:
    return moving_average(x, max(width, 1))


def detect_r_peaks(
    ecg: np.ndarray, fs: float, params: PanTompkinsParams | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Detect R peaks in a single-lead ECG trace.

    Parameters
    ----------
    ecg:
        ECG samples (millivolts or any consistent unit).
    fs:
        Sampling frequency in Hz.
    params:
        Detector parameters.

    Returns
    -------
    (peak_indices, peak_times_s):
        Sample indices and times (seconds) of the detected R peaks.
    """
    if params is None:
        params = PanTompkinsParams()
    ecg = np.asarray(ecg, dtype=float)
    if ecg.size < int(fs):
        return np.empty(0, dtype=int), np.empty(0)

    # 1. Band-pass filter to isolate the QRS energy.
    taps = bandpass_fir(params.band_low_hz, params.band_high_hz, fs, numtaps=int(fs // 2) * 2 + 1)
    filtered = apply_fir(ecg, taps)

    # 2. Differentiate, square, integrate.
    derivative = np.gradient(filtered)
    squared = derivative**2
    integrated = _moving_window_integration(squared, int(params.integration_window_s * fs))

    # 3. Adaptive threshold with refractory period.
    refractory = int(params.refractory_s * fs)
    level = float(np.percentile(integrated, 98))
    threshold = params.threshold_fraction * level
    peaks = []
    i = 1
    n = integrated.size
    while i < n - 1:
        if (
            integrated[i] > threshold
            and integrated[i] >= integrated[i - 1]
            and integrated[i] >= integrated[i + 1]
        ):
            peaks.append(i)
            # Update the running level and threshold.
            level += (integrated[i] - level) / params.level_memory
            threshold = params.threshold_fraction * level
            i += refractory
        else:
            i += 1

    if not peaks:
        return np.empty(0, dtype=int), np.empty(0)

    # 4. Refine each peak to the local maximum of the filtered ECG.
    half = int(params.refine_half_window_s * fs)
    refined = []
    for p in peaks:
        lo = max(0, p - half)
        hi = min(ecg.size, p + half + 1)
        refined.append(lo + int(np.argmax(filtered[lo:hi])))
    refined_arr = np.asarray(sorted(set(refined)), dtype=int)

    # Drop refined peaks that collapsed onto each other within the refractory
    # period (keep the larger one).
    keep = [0]
    for idx in range(1, refined_arr.size):
        if refined_arr[idx] - refined_arr[keep[-1]] < refractory:
            if filtered[refined_arr[idx]] > filtered[refined_arr[keep[-1]]]:
                keep[-1] = idx
        else:
            keep.append(idx)
    final = refined_arr[keep]
    return final, final / fs
