"""Lorenz-plot (Poincaré) features (paper features 9–15).

The Lorenz plot scatters each RR interval against the next one.  The
short-axis dispersion SD1 captures beat-to-beat (vagal) variability while the
long-axis dispersion SD2 captures longer-term variability; seizures compress
SD1 much more strongly than SD2, which is why Lorenz-plot descriptors —
including the Cardiac Sympathetic Index popularised for seizure detection —
carry strong discriminative power.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.features.cache import BeatPartials

__all__ = ["LORENZ_FEATURE_NAMES", "lorenz_features", "poincare_sd"]

LORENZ_FEATURE_NAMES: List[str] = [
    "lorenz_sd1",
    "lorenz_sd2",
    "lorenz_sd1_sd2_ratio",
    "lorenz_ellipse_area",
    "lorenz_csi",
    "lorenz_cvi",
    "lorenz_modified_csi",
]


def poincare_sd(
    rr_s: np.ndarray, partials: "Optional[BeatPartials]" = None
) -> tuple[float, float]:
    """SD1 and SD2 of the Poincaré / Lorenz plot of an RR series.

    SD1 is the dispersion perpendicular to the identity line and SD2 the
    dispersion along it, computed with the classical rotation-by-45° formulas.
    The rotated coordinates are elementwise in adjacent RR pairs, so they can
    come precomputed from the overlap-aware
    :class:`~repro.features.cache.BeatPartialCache` without changing a bit.
    """
    rr = np.asarray(rr_s, dtype=float)
    if rr.size < 3:
        raise ValueError("need at least three RR intervals for a Lorenz plot")
    if partials is None:
        x = rr[:-1]
        y = rr[1:]
        diff = (y - x) / np.sqrt(2.0)
        summ = (y + x) / np.sqrt(2.0)
    else:
        diff = partials.lor_diff
        summ = partials.lor_sum
    sd1 = float(np.std(diff, ddof=1))
    sd2 = float(np.std(summ, ddof=1))
    return sd1, sd2


def lorenz_features(
    rr_s: np.ndarray, partials: "Optional[BeatPartials]" = None
) -> np.ndarray:
    """Compute the seven Lorenz-plot features of one window.

    Returns
    -------
    ndarray of shape (7,):
        ``[SD1, SD2, SD1/SD2, ellipse area, CSI, CVI, modified CSI]``
        where CSI = SD2/SD1, CVI = log10(16 · SD1 · SD2) and
        modified CSI = SD2² / SD1 (all with SD1/SD2 expressed in
        milliseconds, following the seizure-detection literature).
    """
    sd1_s, sd2_s = poincare_sd(rr_s, partials=partials)
    # Express the axes in milliseconds, as is conventional for CSI / CVI.
    sd1 = sd1_s * 1000.0
    sd2 = sd2_s * 1000.0
    eps = 1e-9
    ratio = sd1 / max(sd2, eps)
    area = float(np.pi * sd1 * sd2)
    csi = sd2 / max(sd1, eps)
    cvi = float(np.log10(max(16.0 * sd1 * sd2, eps)))
    modified_csi = sd2**2 / max(sd1, eps)
    return np.array([sd1, sd2, ratio, area, csi, cvi, modified_csi], dtype=float)
