"""Area and energy models of the arithmetic blocks (MACs, squarer, adders).

First-order scaling laws for synthesised arithmetic at a fixed, relaxed clock:

* an array multiplier of an ``a × b`` product is built from roughly ``a · b``
  full-adder-equivalent cells, so its area and switching energy scale with the
  product of the operand widths;
* a ripple/parallel-prefix adder of width ``w`` uses about ``w`` full-adder
  cells;
* a dedicated squarer exploits the symmetry of the partial-product matrix and
  costs about half of a general multiplier of the same width;
* pipeline/accumulator registers cost one flip-flop per bit.

These laws are what makes the paper's bitwidth exploration pay off: going from
a 64-bit to a 9-bit feature word shrinks MAC1 by ~50× in area and energy.
"""

from __future__ import annotations

from repro.analysis.markers import int_only
from repro.hardware.technology import TECH_40NM, TechnologyParams

__all__ = [
    "multiplier_area_um2",
    "multiplier_energy_pj",
    "squarer_area_um2",
    "squarer_energy_pj",
    "adder_area_um2",
    "adder_energy_pj",
    "register_area_um2",
    "register_energy_pj",
]


@int_only
def _check_width(width_bits: int, name: str = "width") -> int:
    width = int(width_bits)
    if width <= 0:
        raise ValueError("%s must be a positive number of bits" % name)
    return width


def multiplier_area_um2(
    width_a_bits: int, width_b_bits: int, tech: TechnologyParams = TECH_40NM
) -> float:
    """Area of an ``a × b`` array multiplier."""
    a = _check_width(width_a_bits, "width_a_bits")
    b = _check_width(width_b_bits, "width_b_bits")
    return tech.full_adder_area_um2 * a * b


def multiplier_energy_pj(
    width_a_bits: int, width_b_bits: int, tech: TechnologyParams = TECH_40NM
) -> float:
    """Switching energy of one ``a × b`` multiplication."""
    a = _check_width(width_a_bits, "width_a_bits")
    b = _check_width(width_b_bits, "width_b_bits")
    return tech.full_adder_energy_pj * a * b


def squarer_area_um2(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Area of a dedicated squarer (about half of a same-width multiplier)."""
    w = _check_width(width_bits)
    return 0.5 * tech.full_adder_area_um2 * w * w


def squarer_energy_pj(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Switching energy of one squaring operation."""
    w = _check_width(width_bits)
    return 0.5 * tech.full_adder_energy_pj * w * w


def adder_area_um2(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Area of a ``w``-bit adder."""
    w = _check_width(width_bits)
    return tech.full_adder_area_um2 * w


def adder_energy_pj(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Switching energy of one ``w``-bit addition."""
    w = _check_width(width_bits)
    return tech.full_adder_energy_pj * w


def register_area_um2(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Area of a ``w``-bit register."""
    w = _check_width(width_bits)
    return tech.register_bit_area_um2 * w


def register_energy_pj(width_bits: int, tech: TechnologyParams = TECH_40NM) -> float:
    """Per-cycle energy of a ``w``-bit register."""
    w = _check_width(width_bits)
    return tech.register_bit_energy_pj * w
