"""Elementary fixed-point helpers.

All quantities in the accelerator datapath are signed integers with an
associated power-of-two scale: a real value ``v`` is represented by the
integer ``q = round(v / scale)`` saturated to the word width, so that
``v ≈ q · scale``.  Keeping every scale a power of two is what lets the
hardware re-align values with shift operations instead of dividers (Section
III of the paper).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.analysis.markers import int_only

__all__ = [
    "scale_for_exponent",
    "saturate",
    "quantize_to_int",
    "quantize_columns",
    "truncate_lsbs",
    "int_bounds",
]

ArrayLike = Union[float, np.ndarray]


@int_only
def int_bounds(bits: int) -> tuple[int, int]:
    """(minimum, maximum) representable value of a signed ``bits``-wide word."""
    if bits < 2:
        raise ValueError("a signed word needs at least two bits")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def scale_for_exponent(range_exponent: int, bits: int) -> float:
    """LSB weight of a signed ``bits``-wide word covering ``[-2^R, 2^R)``.

    The paper keeps, for feature ``j``, the bits of weight
    ``2^(R_j - 1) … 2^(R_j - Dbits)`` plus the sign; equivalently the word is a
    signed integer whose LSB weighs ``2^(R_j - bits + 1)``.
    """
    if bits < 2:
        raise ValueError("a signed word needs at least two bits")
    return float(2.0 ** (range_exponent - bits + 1))


def saturate(values: ArrayLike, bits: int) -> np.ndarray:
    """Clamp integer values to the range of a signed ``bits``-wide word."""
    lo, hi = int_bounds(bits)
    arr = np.asarray(values)
    return np.clip(arr, lo, hi)


def quantize_to_int(values: ArrayLike, scale: float, bits: int) -> np.ndarray:
    """Round real values to the nearest representable integer and saturate.

    Values whose magnitude exceeds the representable range are saturated to
    the admissible maximum / minimum, exactly as the paper prescribes for
    features exceeding their ``[-2^R_j, 2^R_j]`` range.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    arr = np.asarray(values, dtype=float)
    q = np.round(arr / scale)
    q = saturate(q, bits)
    # Use object dtype beyond the int64 range so arbitrarily wide words stay exact.
    if bits <= 62:
        return q.astype(np.int64)
    return np.array([int(v) for v in np.ravel(q)], dtype=object).reshape(q.shape)


def quantize_columns(values: np.ndarray, scales: np.ndarray, bits: int) -> np.ndarray:
    """Quantise a 2-D matrix with one scale per column, in one broadcast.

    Equivalent to calling :func:`quantize_to_int` column by column (same
    rounding, saturation and int64-vs-exact dtype policy) but without a
    Python loop — the batched-inference hot path of
    :class:`~repro.quant.quantized_model.QuantizedSVM` quantises whole
    ``(n_windows, n_features)`` blocks through this.
    """
    scales = np.asarray(scales, dtype=float)
    if np.any(scales <= 0.0):
        raise ValueError("scale must be positive")
    arr = np.atleast_2d(np.asarray(values, dtype=float))
    q = np.round(arr / scales[None, :])
    q = saturate(q, bits)
    if bits <= 62:
        return q.astype(np.int64)
    return np.array(
        [[int(v) for v in row] for row in q], dtype=object
    ).reshape(q.shape)


@int_only
def truncate_lsbs(value: Union[int, np.ndarray], n_bits: int) -> Union[int, np.ndarray]:
    """Discard the ``n_bits`` least significant bits (arithmetic shift right).

    This models the hardware truncation applied after the dot product and
    after the squarer; the arithmetic shift keeps the sign of negative values
    (floor division by ``2**n_bits``).
    """
    if n_bits < 0:
        raise ValueError("n_bits cannot be negative")
    if n_bits == 0:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value) >> n_bits
    return np.asarray(value) >> n_bits
