"""Power-spectral-density features of the EDR series (paper features 25–53).

Twenty-nine features: the power of the ECG-derived respiration series
integrated over 29 contiguous narrow bands spanning 0–1.45 Hz (0.05 Hz wide
each), estimated with the Welch method.  Neighbouring narrow bands of a
smooth physiological spectrum carry largely redundant information — this is
exactly the redundancy visible as the large bright PSD block in the paper's
correlation matrix (Figure 3) and the reason the correlation-driven feature
selection prunes PSD features first.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dsp.psd import band_powers, welch_psd
from repro.features.edr import EDR_FS

__all__ = ["PSD_BANDS", "PSD_FEATURE_NAMES", "psd_features"]

#: Number of PSD band features (paper features 25–53).
_N_BANDS = 29

#: Width of each band in Hz.
_BAND_WIDTH_HZ = 0.05

#: The 29 analysis bands, from 0 Hz up to 1.45 Hz.
PSD_BANDS: List[Tuple[float, float]] = [
    (k * _BAND_WIDTH_HZ, (k + 1) * _BAND_WIDTH_HZ) for k in range(_N_BANDS)
]

PSD_FEATURE_NAMES: List[str] = ["edr_psd_band_%02d" % k for k in range(1, _N_BANDS + 1)]


def psd_features(edr: np.ndarray, fs: float = EDR_FS) -> np.ndarray:
    """Band powers of the EDR series of one window.

    Parameters
    ----------
    edr:
        Uniformly sampled, zero-mean EDR waveform of the window.
    fs:
        Sampling rate of the EDR series.

    Returns
    -------
    ndarray of shape (29,): power in each band, normalised by the total power
    so the features describe the *shape* of the respiratory spectrum rather
    than the (lead-dependent) absolute amplitude.
    """
    edr = np.asarray(edr, dtype=float)
    if edr.size < 16:
        raise ValueError("EDR segment too short for PSD features")
    freqs, psd = welch_psd(edr, fs=fs, segment_length=min(256, edr.size))
    powers = band_powers(freqs, psd, PSD_BANDS)
    total = float(np.sum(powers))
    if total <= 1e-18:
        return np.zeros(_N_BANDS)
    return powers / total
