"""Suppression corpus: every violation below carries an allow comment.

The analyzer must report zero findings for this file while counting exactly
three suppressed ones.
"""

import time

import random  # repro: allow[determinism]


def stamp() -> float:
    # repro: allow[determinism]
    return time.time()


def entropy() -> float:
    return random.random() + time.time()  # repro: allow[*]
