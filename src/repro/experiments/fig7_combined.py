"""Figure 7 — combined optimisation flow and uniform-width references.

Left part of the paper's figure: GM / energy / area of the pipeline after each
optimisation stage (feature reduction → + SV budgeting → + bitwidth
reduction), normalised to the 64-bit unoptimised implementation; the combined
gains are 12.5× energy and 16× area for a GM loss below 3.2%.  Right part:
32-bit and 16-bit pipelines whose only optimisation is a pair of global scale
factors; the 32-bit pipeline needs 7× more area and 4× more energy than the
fully optimised design while losing a further 7% GM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.combined import CombinedFlowConfig, CombinedFlowResult, combined_optimisation_flow
from repro.features.extractor import FeatureMatrix
from repro.svm.model import SVMTrainParams

__all__ = ["PAPER_REFERENCE", "Fig7Result", "run", "format_bars"]

#: Headline numbers reported by the paper.
PAPER_REFERENCE: Dict[str, float] = {
    "energy_gain_x": 12.5,
    "area_gain_x": 16.0,
    "gm_loss_pct": 3.2,
    "uniform32_area_overhead_x": 7.0,
    "uniform32_energy_overhead_x": 4.0,
    "uniform32_gm_penalty_pct": 7.0,
}


@dataclass
class Fig7Result:
    """Wrapper exposing the combined-flow result in Figure 7 terms."""

    flow: CombinedFlowResult

    @property
    def normalised_rows(self) -> List[Dict[str, float]]:
        return self.flow.normalised_rows()

    def headline(self) -> Dict[str, float]:
        """Measured counterparts of the paper's headline claims."""
        gains = self.flow.headline_gains()
        headline = {
            "energy_gain_x": gains["energy_gain"],
            "area_gain_x": gains["area_gain"],
            "gm_loss_pct": 100.0 * gains["gm_loss"],
        }
        optimised = self.flow.fully_optimised
        for reference in self.flow.uniform_references:
            width = int(reference.extras.get("uniform_width", reference.feature_bits))
            headline["uniform%d_energy_overhead_x" % width] = (
                reference.energy_nj / optimised.energy_nj
            )
            headline["uniform%d_area_overhead_x" % width] = reference.area_mm2 / optimised.area_mm2
            headline["uniform%d_gm_penalty_pct" % width] = 100.0 * (optimised.gm - reference.gm)
        return headline


def run(
    features: FeatureMatrix,
    config: Optional[CombinedFlowConfig] = None,
    train_params: Optional[SVMTrainParams] = None,
) -> Fig7Result:
    """Run the combined flow with the paper's stage parameters."""
    flow = combined_optimisation_flow(features, config=config, train_params=train_params)
    return Fig7Result(flow=flow)


def format_bars(result: Fig7Result) -> str:
    """Text rendering of the normalised bars of Figure 7."""
    lines = [
        "Figure 7: combined optimisation flow (normalised to the 64-bit baseline)",
        "%-26s %8s %8s %8s" % ("configuration", "GM", "energy", "area"),
    ]
    for row in result.normalised_rows:
        lines.append(
            "%-26s %8.3f %8.3f %8.3f" % (row["name"], row["gm"], row["energy"], row["area"])
        )
    headline = result.headline()
    lines.append(
        "headline: %.1fx energy, %.1fx area, GM loss %.1f%% (paper: 12.5x, 16x, 3.2%%)"
        % (headline["energy_gain_x"], headline["area_gain_x"], headline["gm_loss_pct"])
    )
    return "\n".join(lines)
