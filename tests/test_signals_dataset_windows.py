"""Unit tests for the cohort generator and the windowing stage."""

import numpy as np
import pytest

from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.seizures import Seizure
from repro.signals.windows import WindowingParams, extract_windows, window_label
from tests.conftest import TEST_COHORT_PARAMS


class TestGenerateCohort:
    def test_structure_matches_params(self, small_cohort):
        assert len(small_cohort.patients) == TEST_COHORT_PARAMS.n_patients
        assert small_cohort.n_recordings == TEST_COHORT_PARAMS.n_sessions

    def test_total_seizure_count(self, small_cohort):
        assert small_cohort.n_seizures == TEST_COHORT_PARAMS.total_seizures

    def test_total_duration(self, small_cohort):
        expected_hours = (
            TEST_COHORT_PARAMS.n_sessions * TEST_COHORT_PARAMS.session_duration_s / 3600.0
        )
        assert small_cohort.total_duration_hours == pytest.approx(expected_hours)

    def test_recordings_have_beats_and_amplitudes(self, small_cohort):
        for recording in small_cohort.recordings:
            assert recording.n_beats > 100
            assert recording.r_amplitudes_mv.shape == recording.beat_times_s.shape
            assert recording.rr_s.shape[0] == recording.n_beats - 1

    def test_session_ids_unique(self, small_cohort):
        ids = [r.session_id for r in small_cohort.recordings]
        assert len(set(ids)) == len(ids)

    def test_patient_baselines_vary(self, small_cohort):
        baselines = [p.base_hr_bpm for p in small_cohort.patients]
        assert np.std(baselines) > 0.0

    def test_phenotypes_in_range(self, small_cohort):
        for patient in small_cohort.patients:
            assert 0.2 <= patient.hr_response <= 1.0
            assert 0.2 <= patient.rsa_response <= 1.0

    def test_deterministic_given_seed(self):
        params = CohortParams(
            n_patients=2, n_sessions=2, session_duration_s=1200.0, total_seizures=2, seed=99
        )
        a = generate_cohort(params)
        b = generate_cohort(params)
        assert np.allclose(a.recordings[0].beat_times_s, b.recordings[0].beat_times_s)

    def test_summary_keys(self, small_cohort):
        summary = small_cohort.summary()
        assert set(summary) == {"n_patients", "n_recordings", "n_seizures", "total_duration_hours"}

    def test_render_ecg_produces_waveform(self):
        params = CohortParams(
            n_patients=1,
            n_sessions=1,
            session_duration_s=900.0,
            total_seizures=1,
            seed=5,
            render_ecg=True,
        )
        cohort = generate_cohort(params)
        recording = cohort.recordings[0]
        assert recording.ecg is not None
        assert recording.ecg.ecg_mv.size == int(900.0 * recording.ecg.fs) + 1


class TestWindowLabel:
    def test_label_positive_when_overlapping_enough(self):
        seizure = Seizure(onset_s=100.0, duration_s=60.0)
        assert window_label(90.0, 270.0, [seizure], min_ictal_fraction=0.05) == 1

    def test_label_negative_when_no_overlap(self):
        seizure = Seizure(onset_s=1000.0, duration_s=60.0)
        assert window_label(0.0, 180.0, [seizure], min_ictal_fraction=0.05) == -1

    def test_label_negative_when_overlap_below_threshold(self):
        seizure = Seizure(onset_s=179.0, duration_s=60.0)
        # Only one second of a 180-second window is ictal (0.56% < 5%).
        assert window_label(0.0, 180.0, [seizure], min_ictal_fraction=0.05) == -1


class TestExtractWindows:
    def test_windows_cover_recording(self, small_cohort):
        recording = small_cohort.recordings[0]
        windows = extract_windows(recording)
        assert len(windows) > 0
        assert all(w.end_s <= recording.duration_s + 1e-9 for w in windows)

    def test_window_duration(self, small_cohort):
        recording = small_cohort.recordings[0]
        for window in extract_windows(recording, WindowingParams(window_s=120.0, step_s=120.0)):
            assert window.duration_s == pytest.approx(120.0)

    def test_labels_are_plus_minus_one(self, small_cohort):
        for recording in small_cohort.recordings:
            for window in extract_windows(recording):
                assert window.label in (-1, 1)

    def test_sessions_with_seizures_have_positive_windows(self, small_cohort):
        for recording in small_cohort.recordings:
            if recording.n_seizures == 0:
                continue
            labels = [w.label for w in extract_windows(recording)]
            assert 1 in labels

    def test_seizure_free_sessions_have_no_positive_windows(self, small_cohort):
        for recording in small_cohort.recordings:
            if recording.n_seizures > 0:
                continue
            labels = [w.label for w in extract_windows(recording)]
            assert 1 not in labels

    def test_enrichment_adds_windows(self, small_cohort):
        recording = next(r for r in small_cohort.recordings if r.n_seizures > 0)
        sparse = extract_windows(recording, WindowingParams(seizure_step_s=180.0, step_s=180.0))
        dense = extract_windows(recording, WindowingParams(seizure_step_s=45.0, step_s=180.0))
        assert len(dense) > len(sparse)

    def test_beat_slice_consistent_with_times(self, small_cohort):
        recording = small_cohort.recordings[0]
        for window in extract_windows(recording)[:5]:
            beats = window.beats_of(recording)
            assert np.all(beats >= window.start_s - 1e-9)
            assert np.all(beats <= window.end_s + 1e-9)

    def test_min_beats_filter(self, small_cohort):
        recording = small_cohort.recordings[0]
        windows = extract_windows(recording, WindowingParams(min_beats=10**6))
        assert windows == []
