"""Kernel functions for SVM training and inference.

Table I of the paper compares linear, quadratic, cubic and Gaussian kernels;
the rest of the exploration focuses on the quadratic kernel

    k(u, v) = (u · v + 1)²

because it offers essentially the same classification performance as the cubic
kernel at a lower hardware cost (a single dot product, one addition and one
squaring per support vector — the MAC1 / SQ blocks of the accelerator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "GaussianKernel",
    "kernel_from_name",
]


class Kernel:
    """Base class: a kernel maps two sample matrices to a Gram matrix."""

    #: Short identifier used in reports and experiment tables.
    name: str = "base"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix ``K`` with ``K[i, j] = k(a[i], b[j])``."""
        raise NotImplementedError

    #: Row-block size of the default :meth:`diagonal` implementation.
    _DIAGONAL_BLOCK: int = 256

    def diagonal(self, a: np.ndarray) -> np.ndarray:
        """The vector ``k(a[i], a[i])`` without forming the full Gram matrix.

        The default evaluates the kernel on row blocks and keeps only the
        block diagonals, so the cost stays ``O(n · block)`` instead of the
        ``O(n²)`` of a full Gram matrix while avoiding a per-sample Python
        loop.  Subclasses override it with closed forms where available.
        """
        a = np.atleast_2d(np.asarray(a, dtype=float))
        n = a.shape[0]
        block = max(int(self._DIAGONAL_BLOCK), 1)
        pieces = [
            np.diagonal(self(a[lo : lo + block], a[lo : lo + block]))
            for lo in range(0, n, block)
        ]
        if not pieces:
            return np.empty(0)
        return np.concatenate([np.asarray(p, dtype=float) for p in pieces])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s()" % type(self).__name__


@dataclass
class LinearKernel(Kernel):
    """k(u, v) = u · v"""

    name: str = "linear"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        return a @ b.T

    def diagonal(self, a: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        return np.einsum("ij,ij->i", a, a)


@dataclass
class PolynomialKernel(Kernel):
    """k(u, v) = (gamma · u · v + coef0) ** degree

    The paper's quadratic kernel is ``degree=2, gamma=1, coef0=1`` (Equation 3)
    and the cubic kernel is ``degree=3`` with the same offsets.
    """

    degree: int = 2
    gamma: float = 1.0
    coef0: float = 1.0
    name: str = "polynomial"

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        self.name = {2: "quadratic", 3: "cubic"}.get(self.degree, "poly%d" % self.degree)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree

    def diagonal(self, a: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        dots = np.einsum("ij,ij->i", a, a)
        return (self.gamma * dots + self.coef0) ** self.degree


@dataclass
class GaussianKernel(Kernel):
    """k(u, v) = exp(-gamma · ‖u - v‖²)

    ``gamma=None`` selects the common `1 / n_features` heuristic at call time.
    """

    gamma: Optional[float] = None
    name: str = "gaussian"

    def _gamma_for(self, n_features: int) -> float:
        return self.gamma if self.gamma is not None else 1.0 / max(n_features, 1)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        gamma = self._gamma_for(a.shape[1])
        sq_a = np.einsum("ij,ij->i", a, a)[:, None]
        sq_b = np.einsum("ij,ij->i", b, b)[None, :]
        distances = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * distances)

    def diagonal(self, a: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        return np.ones(a.shape[0])


def kernel_from_name(name: str, gamma: Optional[float] = None) -> Kernel:
    """Build a kernel from its Table-I name.

    Accepted names: ``linear``, ``quadratic``, ``cubic``, ``gaussian`` (or
    ``rbf``) and ``poly<k>`` for an arbitrary polynomial degree.
    """
    key = name.strip().lower()
    if key == "linear":
        return LinearKernel()
    if key == "quadratic":
        return PolynomialKernel(degree=2)
    if key == "cubic":
        return PolynomialKernel(degree=3)
    if key in ("gaussian", "rbf"):
        return GaussianKernel(gamma=gamma)
    if key.startswith("poly"):
        suffix = key[len("poly") :]
        if not suffix.isdigit() or int(suffix) < 1:
            raise ValueError(
                "unknown kernel name %r (polynomial kernels are spelled 'poly<k>' "
                "with a positive integer degree, e.g. 'poly4')" % name
            )
        return PolynomialKernel(degree=int(suffix))
    raise ValueError(
        "unknown kernel name %r (expected 'linear', 'quadratic', 'cubic', "
        "'gaussian'/'rbf' or 'poly<k>')" % name
    )
