"""Bitwidth exploration (Figure 6 of the paper).

The grid search varies the width of the feature words (``Dbits``) and of the
``α_i y_i`` coefficients (``Abits``) of the fixed-point pipeline, with the ten
least-significant bits discarded after the dot product and after the squarer,
and per-feature power-of-two ranges derived from the support-vector
statistics.  For every grid point the quantised detector is evaluated under
leave-one-session-out cross-validation and the accelerator cost re-estimated.

:func:`homogeneous_width_search` evaluates the baseline the paper compares
against: a single scale factor shared by all features, another shared by all
coefficients, and one uniform width across the whole datapath.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.evaluation import leave_one_session_out, quantized_svm_factory
from repro.features.extractor import FeatureMatrix
from repro.quant.quantized_model import QuantizationConfig
from repro.svm.kernels import Kernel
from repro.svm.model import SVMTrainParams

__all__ = ["bitwidth_grid_search", "homogeneous_width_search"]


def _design_point_for(
    features: FeatureMatrix,
    quantization: QuantizationConfig,
    name: str,
    budget: Optional[int],
    kernel: Optional[Kernel],
    train_params: Optional[SVMTrainParams],
    chunk_fraction: float = 0.25,
) -> DesignPoint:
    factory = quantized_svm_factory(
        quantization,
        budget=budget,
        kernel=kernel,
        train_params=train_params,
        chunk_fraction=chunk_fraction,
    )
    cv = leave_one_session_out(features, factory)
    n_sv = cv.mean_support_vectors
    if not np.isfinite(n_sv) or n_sv <= 0:
        n_sv = float(budget) if budget else float(features.n_samples)
    hardware = hardware_cost(
        n_features=features.n_features,
        n_support_vectors=n_sv,
        feature_bits=quantization.feature_bits,
        coeff_bits=quantization.coeff_bits,
        per_feature_scaling=quantization.per_feature_scaling,
        datapath_cap_bits=quantization.datapath_cap_bits,
        truncate_after_dot=quantization.truncate_after_dot,
        truncate_after_square=quantization.truncate_after_square,
    )
    return DesignPoint.from_evaluation(name=name, cv_result=cv, hardware=hardware)


def bitwidth_grid_search(
    features: FeatureMatrix,
    feature_bit_options: Sequence[int],
    coeff_bit_options: Sequence[int],
    truncate_after_dot: int = 10,
    truncate_after_square: int = 10,
    budget: Optional[int] = None,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
) -> List[DesignPoint]:
    """Evaluate every (Dbits, Abits) combination of the grid (Figure 6).

    Returns
    -------
    list of :class:`DesignPoint` in row-major order (Dbits outer, Abits inner);
    each point's ``extras`` records the grid coordinates.
    """
    points: List[DesignPoint] = []
    for d_bits in feature_bit_options:
        for a_bits in coeff_bit_options:
            quantization = QuantizationConfig(
                feature_bits=int(d_bits),
                coeff_bits=int(a_bits),
                truncate_after_dot=truncate_after_dot,
                truncate_after_square=truncate_after_square,
                per_feature_scaling=True,
            )
            point = _design_point_for(
                features,
                quantization,
                name="Dbits=%d,Abits=%d" % (d_bits, a_bits),
                budget=budget,
                kernel=kernel,
                train_params=train_params,
            )
            point.extras["feature_bits"] = float(d_bits)
            point.extras["coeff_bits"] = float(a_bits)
            points.append(point)
    return points


def homogeneous_width_search(
    features: FeatureMatrix,
    widths: Sequence[int],
    budget: Optional[int] = None,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    truncate_after_dot: int = 10,
    truncate_after_square: int = 10,
) -> List[DesignPoint]:
    """Evaluate uniform-width pipelines with global scale factors.

    This is the paper's comparison baseline: the same bitwidth throughout the
    pipeline and a single scaling factor shared among features (and another
    among the coefficients).  The paper finds that 64 bits are needed to match
    the GM of the per-feature 9/15-bit design.
    """
    points: List[DesignPoint] = []
    for width in widths:
        quantization = QuantizationConfig(
            feature_bits=int(width),
            coeff_bits=int(width),
            truncate_after_dot=truncate_after_dot,
            truncate_after_square=truncate_after_square,
            per_feature_scaling=False,
            datapath_cap_bits=int(width),
        )
        point = _design_point_for(
            features,
            quantization,
            name="uniform-%dbit" % width,
            budget=budget,
            kernel=kernel,
            train_params=train_params,
        )
        point.extras["uniform_width"] = float(width)
        points.append(point)
    return points
