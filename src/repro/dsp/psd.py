"""Welch power spectral density estimation and band-power helpers.

Features 25–53 of the paper's feature set are obtained from the power spectral
analysis of the ECG-derived respiration series; the HRV features also use the
classical LF/HF band powers of the RR tachogram.  This module implements the
Welch method (segment averaging of windowed periodograms) without relying on
``scipy.signal`` so that the numerical behaviour is fully under the
repository's control.

The implementation is hot-path tuned without changing a single output bit
(pinned by the golden trace and the hot-path equivalence suite):

* Hann windows and ``rfftfreq`` grids are memoised per segment length — they
  are pure functions of ``(segment_length, fs)``.
* All Welch segments are windowed and FFT'd as one batched 2-D ``rfft``
  (row-wise FFTs are bitwise identical to per-segment 1-D FFTs); the
  periodogram average still accumulates row by row in the original
  sequential order, because changing a float summation order changes bits.
* :func:`band_powers` integrates every band from one shared trapezoid-panel
  vector instead of re-slicing the PSD per band; each band's panel sum uses
  the same ``np.add.reduce`` pairwise order the trapezoid rule uses.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["welch_psd", "band_power", "band_powers"]

#: ``np.trapz`` was renamed to ``np.trapezoid`` in NumPy 2.0; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz

#: Memoised Hann windows: segment length -> (window, sum(window**2)).
_HANN_CACHE: Dict[int, Tuple[np.ndarray, float]] = {}
#: Memoised one-sided frequency grids: (segment length, fs) -> read-only grid.
_RFFTFREQ_CACHE: Dict[Tuple[int, float], np.ndarray] = {}
#: Memoisation bound; cleared wholesale when exceeded (lengths vary with the
#: per-window beat count, so the key space is finite but not fixed).
_CACHE_LIMIT = 512


def _hann(segment_length: int) -> Tuple[np.ndarray, float]:
    cached = _HANN_CACHE.get(segment_length)
    if cached is None:
        if len(_HANN_CACHE) >= _CACHE_LIMIT:
            _HANN_CACHE.clear()
        window = np.hanning(segment_length)
        window.setflags(write=False)
        cached = (window, float(np.sum(window**2)))
        _HANN_CACHE[segment_length] = cached
    return cached


def _rfftfreq(segment_length: int, fs: float) -> np.ndarray:
    key = (segment_length, fs)
    cached = _RFFTFREQ_CACHE.get(key)
    if cached is None:
        if len(_RFFTFREQ_CACHE) >= _CACHE_LIMIT:
            _RFFTFREQ_CACHE.clear()
        cached = np.fft.rfftfreq(segment_length, d=1.0 / fs)
        cached.setflags(write=False)
        _RFFTFREQ_CACHE[key] = cached
    return cached


def welch_psd(
    x: np.ndarray,
    fs: float,
    segment_length: int = 256,
    overlap: float = 0.5,
    detrend_segments: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD estimate of a uniformly sampled signal.

    Parameters
    ----------
    x:
        Input signal (1-D).
    fs:
        Sampling frequency in Hz.
    segment_length:
        Length of each segment; shortened automatically if the signal is
        shorter than one segment.
    overlap:
        Fractional overlap between consecutive segments (0 ≤ overlap < 1).
    detrend_segments:
        Remove the mean of every segment before windowing (recommended for
        physiological series whose mean dwarfs the oscillatory content).

    Returns
    -------
    (freqs, psd):
        One-sided frequency grid and PSD (power per Hz).  The frequency grid
        is a shared read-only array; copy it before mutating.
    """
    x = np.asarray(x, dtype=float)
    if x.size < 8:
        raise ValueError("signal too short for PSD estimation")
    if not (0.0 <= overlap < 1.0):
        raise ValueError("overlap must lie in [0, 1)")
    segment_length = int(min(segment_length, x.size))
    step = max(1, int(segment_length * (1.0 - overlap)))

    window, window_power = _hann(segment_length)

    # One strided view per segment start, exactly the starts of the original
    # ``range(0, x.size - segment_length + 1, step)`` loop.
    segments = np.lib.stride_tricks.sliding_window_view(x, segment_length)[::step]
    count = segments.shape[0]
    if count == 0:
        raise ValueError("could not form any Welch segment")
    if detrend_segments:
        data = segments - segments.mean(axis=1, keepdims=True)
        np.multiply(data, window, out=data)
    else:
        data = segments * window
    spectra = np.fft.rfft(data, axis=1)
    periodograms = (np.abs(spectra) ** 2) / (fs * window_power)
    # One-sided correction (all bins except DC and Nyquist count twice).
    if segment_length % 2 == 0:
        periodograms[:, 1:-1] *= 2.0
    else:
        periodograms[:, 1:] *= 2.0
    # Sequential accumulation in segment order: a tree/pairwise reduction
    # over the segment axis would round differently for many segments.
    psd_acc = periodograms[0]
    for row in periodograms[1:]:
        psd_acc = psd_acc + row

    return _rfftfreq(segment_length, fs), psd_acc / count


def band_power(freqs: np.ndarray, psd: np.ndarray, low_hz: float, high_hz: float) -> float:
    """Integrated power of a PSD between two frequencies (trapezoidal rule)."""
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        return 0.0
    return float(_trapezoid(psd[mask], freqs[mask]))


def band_powers(
    freqs: np.ndarray, psd: np.ndarray, edges: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """Integrated power for a sequence of ``(low_hz, high_hz)`` bands.

    For a sorted frequency grid (the only kind a PSD estimate produces) every
    band selects a contiguous slice, so all bands share one precomputed
    trapezoid-panel vector ``diff(freqs) * (psd[1:] + psd[:-1]) / 2.0`` and
    each integral is a single slice reduction — bit-identical to calling
    :func:`band_power` per band, at a fraction of the work for the paper's
    29-band grid.
    """
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if freqs.size < 2:
        return np.array([band_power(freqs, psd, lo, hi) for lo, hi in edges])
    widths = np.diff(freqs)
    if np.any(widths < 0):  # unsorted grid: fall back to the reference path
        return np.array([band_power(freqs, psd, lo, hi) for lo, hi in edges])
    # The same elementwise expression np.trapezoid evaluates internally.
    panel = widths * (psd[1:] + psd[:-1]) / 2.0
    edge_arr = np.asarray(edges, dtype=float).reshape(-1, 2)
    first = np.searchsorted(freqs, edge_arr[:, 0], side="left")
    last = np.searchsorted(freqs, edge_arr[:, 1], side="right")
    out = np.empty(edge_arr.shape[0])
    for j in range(edge_arr.shape[0]):
        i0, i1 = int(first[j]), int(last[j])
        # Fewer than two grid points in the band integrates to zero, exactly
        # as the trapezoid rule over a <2-point selection does.
        out[j] = np.add.reduce(panel[i0 : i1 - 1]) if i1 - i0 >= 2 else 0.0
    return out
