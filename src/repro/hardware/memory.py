"""CACTI-style SRAM model for the support-vector memory.

The accelerator stores every support vector (``N_SV × N_feat`` feature words of
``Dbits`` each) plus the ``α_i y_i`` coefficients (``N_SV`` words of ``Abits``)
and, for the per-feature quantisation scheme, one small scale-factor entry per
feature.  The paper attributes a large share of both the area and the energy
gains to shrinking this memory; reference [14] of the paper (CACTI) is the
classical way to estimate those costs.

The model below captures the three CACTI behaviours that matter at this scale:

* array area proportional to the number of bit cells plus a fixed macro
  overhead for decoders / sense amplifiers / control;
* per-access read energy with a fixed component, a per-bit component
  proportional to the word width, and a component growing with total capacity
  (longer word/bit lines);
* leakage proportional to the macro area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.technology import TECH_40NM, TechnologyParams

__all__ = ["SramMacroModel", "sram_model"]


@dataclass(frozen=True)
class SramMacroModel:
    """Area / energy / leakage figures of one SRAM macro."""

    capacity_bits: int
    word_bits: int
    area_um2: float
    read_energy_pj: float
    leakage_uw: float

    @property
    def capacity_kbit(self) -> float:
        return self.capacity_bits / 1024.0

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6


def sram_model(
    n_words: int,
    word_bits: int,
    tech: TechnologyParams = TECH_40NM,
) -> SramMacroModel:
    """Build the SRAM macro model for a memory of ``n_words`` × ``word_bits``.

    Parameters
    ----------
    n_words:
        Number of addressable words (e.g. ``N_SV × N_feat`` for the SV
        feature memory).
    word_bits:
        Width of each word in bits.

    Returns
    -------
    :class:`SramMacroModel`
    """
    n_words = int(n_words)
    word_bits = int(word_bits)
    if n_words <= 0 or word_bits <= 0:
        raise ValueError("n_words and word_bits must be positive")

    capacity_bits = n_words * word_bits
    area_um2 = (
        tech.sram_macro_overhead_um2 + tech.sram_bit_area_um2 * capacity_bits
    )
    read_energy_pj = (
        tech.sram_access_energy_pj
        + tech.sram_bit_read_energy_pj * word_bits
        + tech.sram_capacity_energy_pj_per_kbit * (capacity_bits / 1024.0)
    )
    leakage_uw = tech.sram_leakage_uw_per_mm2 * (area_um2 * 1e-6)
    return SramMacroModel(
        capacity_bits=capacity_bits,
        word_bits=word_bits,
        area_um2=area_um2,
        read_energy_pj=read_energy_pj,
        leakage_uw=leakage_uw,
    )
