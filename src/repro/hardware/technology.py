"""Technology constants of the 40 nm cost model.

The constants below are first-order figures representative of a low-power
40 nm CMOS process running at a modest clock (tens of MHz) and near-threshold
friendly supply, calibrated such that the paper's baseline accelerator
configuration (53 features, ~120 support vectors, 64-bit datapath) lands close
to the values readable from the paper's figures (~2 µJ per classification and
~0.4 mm²).  All downstream results are ratios between configurations, which
depend on the scaling laws (operand widths, operation counts, memory capacity)
rather than on the absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParams", "TECH_40NM"]


@dataclass(frozen=True)
class TechnologyParams:
    """Per-technology cost coefficients used by the analytical models."""

    name: str = "generic-40nm"

    # ------------------------------------------------------------------ area
    #: Area of one full-adder-equivalent cell (µm²).
    full_adder_area_um2: float = 4.0
    #: Area of one flip-flop / register bit (µm²).
    register_bit_area_um2: float = 3.0
    #: SRAM bit-cell area including local periphery amortisation (µm²/bit).
    sram_bit_area_um2: float = 0.75
    #: Fixed SRAM macro overhead (decoders, sense amplifiers, control), µm².
    sram_macro_overhead_um2: float = 1500.0
    #: Fixed control / FSM / glue logic of the accelerator, µm².
    control_overhead_um2: float = 2500.0

    # ---------------------------------------------------------------- energy
    #: Switching energy of one full-adder-equivalent cell per operation (pJ).
    full_adder_energy_pj: float = 0.045
    #: Clock and data switching energy of one register bit per cycle (pJ).
    register_bit_energy_pj: float = 0.002
    #: Fixed per-cycle energy of the control FSM, clock tree and I/O that does
    #: not shrink with the datapath width (pJ / cycle).
    cycle_overhead_energy_pj: float = 50.0
    #: SRAM read energy: per-access fixed part (pJ).
    sram_access_energy_pj: float = 2.0
    #: SRAM read energy: per-bit part (pJ / bit read).
    sram_bit_read_energy_pj: float = 0.08
    #: SRAM read energy growth with capacity (pJ per access per kbit), a
    #: CACTI-like wordline/bitline loading term.
    sram_capacity_energy_pj_per_kbit: float = 0.030

    # --------------------------------------------------------------- leakage
    #: Leakage power density (µW / mm²) of logic at the operating corner.
    logic_leakage_uw_per_mm2: float = 150.0
    #: Leakage power density (µW / mm²) of SRAM.
    sram_leakage_uw_per_mm2: float = 300.0

    # ---------------------------------------------------------------- timing
    #: Clock frequency of the accelerator (MHz).  One MAC1 operation is
    #: scheduled per cycle, so a classification takes about
    #: ``N_SV × N_feat`` cycles.
    clock_mhz: float = 10.0


#: Default technology used throughout the reproduction.
TECH_40NM = TechnologyParams()
