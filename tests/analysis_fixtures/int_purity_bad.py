"""Known-bad corpus for ``int-purity``: float leaks in @int_only functions."""

import math

import numpy as np

from repro.analysis.markers import int_only


@int_only
def bad_float_literal(x: int) -> int:
    scale = 0.5  # expect[int-purity]
    return int(x * scale)


@int_only
def bad_true_division(x: int, y: int) -> int:
    return x / y  # expect[int-purity]


@int_only
def bad_aug_division(x: int, y: int) -> int:
    x /= y  # expect[int-purity]
    return x


@int_only
def bad_float_conversion(x: int) -> int:
    return int(float(x))  # expect[int-purity]


@int_only
def bad_math_call(x: int) -> int:
    return int(math.sqrt(x))  # expect[int-purity]


@int_only
def bad_astype(values):
    return values.astype(np.float64)  # expect[int-purity]


@int_only
def bad_dtype_keyword(values):
    return np.asarray(values, dtype=float)  # expect[int-purity]


@int_only
def bad_mean(values):
    return np.mean(values)  # expect[int-purity]


@int_only
def bad_nested_function(values):
    def helper(v):
        return v * 2.5  # expect[int-purity]

    return [helper(v) for v in values]


def unmarked_float_code_is_fine(x: int) -> float:
    return x / 2.0
