"""Unit tests for the Pan–Tompkins-style R-peak detector."""

import numpy as np
import pytest

from repro.dsp.peaks import PanTompkinsParams, StreamingPeakDetector, detect_r_peaks
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.respiration import generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series


@pytest.fixture(scope="module")
def synthetic_ecg():
    rng = np.random.default_rng(33)
    duration = 180.0
    respiration = generate_respiration(duration, [], rng)
    series = generate_rr_series(duration, [], respiration, rng, RRModelParams(ectopic_rate=0.0))
    ecg = synthesize_ecg(series.beat_times_s, duration, respiration, rng, ECGWaveformParams())
    return ecg, series


class TestDetectRPeaks:
    def test_detects_most_beats(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        true_beats = series.beat_times_s
        # Count true beats matched within 80 ms by a detection.
        matched = sum(np.any(np.abs(peak_times - t) < 0.08) for t in true_beats[2:-2])
        assert matched / (true_beats.size - 4) > 0.9

    def test_false_detection_rate_low(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        true_beats = series.beat_times_s
        false_detections = sum(not np.any(np.abs(true_beats - t) < 0.08) for t in peak_times)
        assert false_detections / max(peak_times.size, 1) < 0.1

    def test_detected_rr_near_true_mean(self, synthetic_ecg):
        ecg, series = synthetic_ecg
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        assert np.mean(np.diff(peak_times)) == pytest.approx(np.mean(series.rr_s), rel=0.05)

    def test_refractory_period_enforced(self, synthetic_ecg):
        ecg, _ = synthetic_ecg
        params = PanTompkinsParams(refractory_s=0.25)
        _, peak_times = detect_r_peaks(ecg.ecg_mv, ecg.fs, params)
        assert np.all(np.diff(peak_times) >= 0.25 - 1e-6)

    def test_short_signal_returns_empty(self):
        indices, times = detect_r_peaks(np.zeros(10), 128.0)
        assert indices.size == 0 and times.size == 0

    def test_flat_signal_returns_few_peaks(self):
        indices, _ = detect_r_peaks(np.zeros(1280), 128.0)
        assert indices.size <= 2

    def test_low_sampling_rate_does_not_raise(self):
        # Regression: with fs <= 36 Hz the fixed 5-18 Hz band used to violate
        # high_hz < fs/2 and raise from bandpass_fir; the band is now clamped.
        for fs in (20.0, 32.0, 36.0):
            t = np.arange(int(fs * 30)) / fs
            signal = np.sin(2.0 * np.pi * 1.2 * t)
            indices, times = detect_r_peaks(signal, fs)
            assert indices.shape == times.shape

    def test_short_trace_does_not_raise(self):
        # Regression: numtaps ~ fs used to exceed the trace length for traces
        # barely longer than one second; the tap count is now clamped.
        fs = 256.0
        t = np.arange(int(fs * 1.2)) / fs
        signal = np.sin(2.0 * np.pi * 1.5 * t)
        indices, times = detect_r_peaks(signal, fs)
        assert indices.shape == times.shape

    def test_low_rate_spike_train_detected(self):
        # At 30 Hz the clamped band must still localise strong spikes.
        fs = 30.0
        n = int(fs * 60)
        signal = 0.01 * np.random.default_rng(0).standard_normal(n)
        spike_positions = np.arange(int(fs), n - int(fs), int(0.8 * fs))
        signal[spike_positions] += 2.0
        indices, _ = detect_r_peaks(signal, fs)
        assert indices.size >= 0.8 * spike_positions.size


class TestStreamingPeakDetector:
    def _stream(self, trace, fs, chunk):
        detector = StreamingPeakDetector(fs)
        indices = []
        for lo in range(0, trace.size, chunk):
            i, t, a = detector.process(trace[lo : lo + chunk])
            assert i.shape == t.shape == a.shape
            indices.append(i)
        i, _, _ = detector.flush()
        indices.append(i)
        return np.concatenate(indices)

    def test_matches_batch_detector(self, synthetic_ecg):
        ecg, _ = synthetic_ecg
        batch_indices, _ = detect_r_peaks(ecg.ecg_mv, ecg.fs)
        stream_indices = self._stream(ecg.ecg_mv, ecg.fs, 4096)
        tolerance = int(0.04 * ecg.fs)
        matched = sum(
            np.min(np.abs(stream_indices - p)) <= tolerance for p in batch_indices
        )
        assert matched / batch_indices.size > 0.95

    def test_chunk_size_invariance(self, synthetic_ecg):
        # The emitted beat sequence must not depend on how the stream is cut
        # into chunks: the initial threshold level is frozen from exactly the
        # first two seconds, and every later stage only finalises samples
        # whose full filtering/integration context has arrived.
        ecg, _ = synthetic_ecg
        reference = self._stream(ecg.ecg_mv, ecg.fs, 4096)
        for chunk in (257, 1280, 8192, ecg.ecg_mv.size):
            assert np.array_equal(self._stream(ecg.ecg_mv, ecg.fs, chunk), reference)

    def test_monotonic_and_refractory_across_chunks(self, synthetic_ecg):
        ecg, _ = synthetic_ecg
        stream_indices = self._stream(ecg.ecg_mv, ecg.fs, 333)
        refractory = int(0.25 * ecg.fs)
        assert np.all(np.diff(stream_indices) >= refractory)

    def test_times_and_finalized_clock(self, synthetic_ecg):
        ecg, _ = synthetic_ecg
        detector = StreamingPeakDetector(ecg.fs)
        detector.process(ecg.ecg_mv[:12800])
        assert detector.time_seen_s == pytest.approx(12800 / ecg.fs)
        assert 0.0 < detector.finalized_time_s <= detector.time_seen_s

    def test_empty_and_tiny_chunks(self):
        detector = StreamingPeakDetector(128.0)
        i, t, a = detector.process(np.empty(0))
        assert i.size == 0
        i, t, a = detector.process(np.zeros(5))
        assert i.size == 0
        i, t, a = detector.flush()
        assert i.size == 0
