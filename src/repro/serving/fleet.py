"""Batched inference over a fleet of concurrent streaming monitors.

A server receiving ECG chunks from many body sensor nodes should not run one
SVM evaluation per window: the per-call Python and quantisation overhead
dominates at fleet scale.  :class:`MonitorFleet` keeps one
:class:`~repro.serving.streaming.StreamingMonitor` per patient, accumulates
the windows they complete and, on :meth:`MonitorFleet.drain`, classifies *all*
pending windows from *all* patients with a single vectorised
``decision_function`` / ``predict`` pair — on the fixed-point model this is
one int64 matrix pipeline for the whole batch, bit-identical to the
per-window loop (see ``tests/test_serving.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.dsp.peaks import PanTompkinsParams
from repro.serving.streaming import (
    PendingWindow,
    StreamingMonitor,
    WindowDecision,
    classify_windows,
)
from repro.signals.windows import WindowingParams

__all__ = ["MonitorFleet"]


class MonitorFleet:
    """Many concurrent patients, one batched classifier.

    Parameters
    ----------
    classifier:
        Shared :class:`~repro.svm.model.SVMModel` or
        :class:`~repro.quant.quantized_model.QuantizedSVM`.
    fs:
        Sampling frequency of the incoming ECG streams (Hz).
    windowing / detector_params:
        Shared configuration handed to every per-patient monitor.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        windowing: WindowingParams | None = None,
        detector_params: PanTompkinsParams | None = None,
    ) -> None:
        self.classifier = classifier
        self.fs = float(fs)
        self.windowing = windowing
        self.detector_params = detector_params
        self._monitors: Dict[int, StreamingMonitor] = {}
        self._pending: List[PendingWindow] = []

    # ------------------------------------------------------------ membership
    @property
    def patient_ids(self) -> List[int]:
        return sorted(self._monitors)

    @property
    def n_patients(self) -> int:
        return len(self._monitors)

    @property
    def pending_count(self) -> int:
        """Number of completed windows awaiting the next :meth:`drain`."""
        return len(self._pending)

    def add_patient(self, patient_id: int) -> StreamingMonitor:
        """Register a patient; returns their (classifier-less) monitor."""
        patient_id = int(patient_id)
        if patient_id in self._monitors:
            raise KeyError("patient %d is already monitored" % patient_id)
        monitor = StreamingMonitor(
            patient_id,
            self.fs,
            classifier=None,
            windowing=self.windowing,
            detector_params=self.detector_params,
        )
        self._monitors[patient_id] = monitor
        return monitor

    def monitor(self, patient_id: int) -> StreamingMonitor:
        return self._monitors[int(patient_id)]

    # -------------------------------------------------------------- streaming
    def push(self, patient_id: int, chunk: np.ndarray) -> int:
        """Feed one ECG chunk of one patient; windows it completes are queued.

        Returns the number of windows currently pending classification.
        """
        patient_id = int(patient_id)
        if patient_id not in self._monitors:
            self.add_patient(patient_id)
        self._pending.extend(self._monitors[patient_id].push(chunk))
        return len(self._pending)

    def finish(self, patient_id: int | None = None) -> int:
        """Flush one patient's stream (or all of them) into the pending queue."""
        if patient_id is not None:
            self._pending.extend(self._monitors[int(patient_id)].finish())
        else:
            for pid in self.patient_ids:
                self._pending.extend(self._monitors[pid].finish())
        return len(self._pending)

    def drain(self) -> List[WindowDecision]:
        """Classify every pending window in one batched SVM call."""
        pending, self._pending = self._pending, []
        return classify_windows(self.classifier, pending)

    def run(
        self, streams: Mapping[int, Iterable[np.ndarray]], drain_every: int = 0
    ) -> List[WindowDecision]:
        """Convenience driver: interleave the patients' chunk streams.

        Chunks are consumed round-robin across patients (the arrival order a
        server would see), the streams are flushed, and pending windows are
        classified in batched drains — every ``drain_every`` pushed chunks
        when positive, otherwise in a single final drain.
        """
        iterators = {int(pid): iter(chunks) for pid, chunks in streams.items()}
        for pid in iterators:
            if pid not in self._monitors:
                self.add_patient(pid)
        decisions: List[WindowDecision] = []
        n_pushed = 0
        while iterators:
            for pid in list(iterators):
                try:
                    chunk = next(iterators[pid])
                except StopIteration:
                    del iterators[pid]
                    continue
                self.push(pid, chunk)
                n_pushed += 1
                if drain_every > 0 and n_pushed % drain_every == 0:
                    decisions.extend(self.drain())
        self.finish()
        decisions.extend(self.drain())
        decisions.sort(key=lambda d: (d.start_s, d.patient_id))
        return decisions
