"""Batched inference over a fleet of concurrent streaming monitors.

A server receiving ECG chunks from many body sensor nodes should not run one
SVM evaluation per window: the per-call Python and quantisation overhead
dominates at fleet scale.  :class:`MonitorFleet` keeps one
:class:`~repro.serving.streaming.StreamingMonitor` per patient, accumulates
the windows they complete and, on :meth:`MonitorFleet.drain`, classifies the
pending windows of *all* patients in one vectorised call per model group —
on the fixed-point models this is one int64 matrix pipeline per group for
the whole batch, bit-identical to the per-window loop (see
``tests/test_serving.py``).

Which model classifies whom is a
:class:`~repro.serving.registry.ModelRegistry` decision: a fleet built from
a bare classifier serves every patient with it (one group, the pre-registry
behaviour, decision-for-decision), while a fleet built from a registry
serves each patient their *tailored* design point — the paper's per-patient
feature sets, SV budgets and bit widths — without giving up batching
(``tests/test_serving_registry.py``).

*When* to drain is a pluggable :class:`~repro.serving.scheduler.DrainPolicy`
(chunk-count, queue-size or wall-clock-latency triggered); the fleet
maintains the :class:`~repro.serving.scheduler.DrainStats` the policy
observes and offers :meth:`MonitorFleet.maybe_drain` as the poll point.
Chunks can arrive either as raw arrays (:meth:`MonitorFleet.push`) or as
framed bytes in the :mod:`repro.serving.wire` format
(:meth:`MonitorFleet.push_wire`, with per-patient sequence enforcement).
A fleet is one *shard* of the horizontally scaled
:class:`~repro.serving.sharding.ShardedFleet`.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.dsp.peaks import PanTompkinsParams
from repro.serving.registry import InferenceBackend, ModelRegistry, classify_grouped
from repro.serving.scheduler import ChunkCountPolicy, DrainPolicy, DrainStats
from repro.serving.streaming import (
    MONITOR_STATE_VERSION,
    GapStats,
    MonitorState,
    PendingWindow,
    StreamingMonitor,
    WindowDecision,
)
from repro.serving.wire import decode_chunk_checked
from repro.signals.windows import WindowingParams

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.serving.sharding import ShardedFleet

__all__ = ["MonitorFleet", "decision_sort_key", "run_streams"]


def decision_sort_key(decision: WindowDecision) -> tuple[float, int]:
    """Canonical ordering of fleet output: by window start, then patient.

    Both :meth:`MonitorFleet.run` and the sharded fleet sort their merged
    decisions with this key, so any fleet topology over the same streams
    yields the same decision *sequence*, not just the same decision set.
    """
    return (decision.start_s, decision.patient_id)


def run_streams(
    fleet: "MonitorFleet | ShardedFleet",
    streams: Mapping[int, Iterable[np.ndarray]],
    drain_every: int = 0,
    policy: DrainPolicy | None = None,
) -> List[WindowDecision]:
    """The shared convenience driver behind ``MonitorFleet.run`` and
    ``ShardedFleet.run``: interleave the patients' chunk streams.

    Chunks are consumed round-robin across patients (the arrival order a
    server would see) and the streams are flushed at the end.  Pending
    windows are classified in batched drains whenever the drain policy
    triggers — ``policy`` if given, else the fleet's own ``drain_policy``,
    else (for ``drain_every > 0``) a
    :class:`~repro.serving.scheduler.ChunkCountPolicy`; with no policy at
    all there is a single final drain.  Decisions are returned in the
    canonical :func:`decision_sort_key` order.

    One driver for both fleet shapes is what keeps their arrival order and
    drain scheduling identical — the precondition of the sharded-vs-single
    parity guarantee.
    """
    if policy is None:
        policy = fleet.drain_policy
    if policy is None and drain_every > 0:
        policy = ChunkCountPolicy(drain_every)
    previous_policy = fleet.drain_policy
    fleet.drain_policy = policy
    try:
        iterators = {int(pid): iter(chunks) for pid, chunks in streams.items()}
        for pid in iterators:
            if not fleet.has_patient(pid):
                fleet.add_patient(pid)
        decisions: List[WindowDecision] = []
        while iterators:
            for pid in list(iterators):
                try:
                    chunk = next(iterators[pid])
                except StopIteration:
                    del iterators[pid]
                    continue
                fleet.push(pid, chunk)
                decisions.extend(fleet.maybe_drain())
        fleet.finish()
        decisions.extend(fleet.drain())
    finally:
        fleet.drain_policy = previous_policy
    decisions.sort(key=decision_sort_key)
    return decisions


class MonitorFleet:
    """Many concurrent patients, one batched classifier.

    Parameters
    ----------
    classifier:
        Either a shared backend (:class:`~repro.svm.model.SVMModel`,
        :class:`~repro.quant.quantized_model.QuantizedSVM` or any
        :class:`~repro.serving.registry.InferenceBackend`) serving every
        patient, or a :class:`~repro.serving.registry.ModelRegistry` mapping
        patients to their tailored backends (with an optional default
        fallback).  A bare backend is wrapped as
        ``ModelRegistry(default=classifier)``, so the two forms behave
        identically for a homogeneous fleet.
    fs:
        Sampling frequency of the incoming ECG streams (Hz).
    windowing / detector_params:
        Shared configuration handed to every per-patient monitor.
    drain_policy:
        Optional :class:`~repro.serving.scheduler.DrainPolicy` consulted by
        :meth:`maybe_drain` (and by :meth:`run` after every pushed chunk).
        Without one, draining is purely manual.
    auto_register:
        Contract for chunks of unknown patients.  ``True`` (default): the
        fleet transparently creates a monitor on first contact — the right
        behaviour for a server where nodes may start transmitting at any
        time.  ``False``: only explicitly :meth:`add_patient`-ed ids are
        accepted and anything else raises :class:`KeyError` — the right
        behaviour when an upstream registry owns patient lifecycle and a
        stray id is a routing bug.
    clock:
        Monotonic time source used for latency-based drain policies;
        injectable for deterministic tests.
    feature_cache:
        Overlap-aware per-beat feature cache of every monitor this fleet
        creates or revives (bit-identical either way; see
        :class:`~repro.serving.streaming.StreamingMonitor`).
    lossy:
        Datagram-transport mode for every monitor this fleet creates or
        revives: ``seq`` values are absolute sample offsets, and a jump
        ahead is absorbed as frame loss instead of raising
        ``OutOfOrderChunkError`` (see
        :meth:`~repro.serving.streaming.StreamingMonitor.note_gap`).  A
        fleet is lossy or strict as a whole, never patient by patient.
    """

    def __init__(
        self,
        classifier: InferenceBackend | ModelRegistry,
        fs: float,
        windowing: WindowingParams | None = None,
        detector_params: PanTompkinsParams | None = None,
        drain_policy: DrainPolicy | None = None,
        auto_register: bool = True,
        clock: Callable[[], float] = time.monotonic,
        feature_cache: bool = True,
        lossy: bool = False,
    ) -> None:
        if isinstance(classifier, ModelRegistry):
            self.registry = classifier
        else:
            self.registry = ModelRegistry(default=classifier)
        self.fs = float(fs)
        self.windowing = windowing
        self.detector_params = detector_params
        self.drain_policy = drain_policy
        self.auto_register = bool(auto_register)
        self.feature_cache = bool(feature_cache)
        self.lossy = bool(lossy)
        self._clock = clock
        self._monitors: Dict[int, StreamingMonitor] = {}
        self._pending: List[PendingWindow] = []
        self._chunks_since_drain = 0
        self._oldest_pending_t: Optional[float] = None

    # --------------------------------------------------------------- models
    @property
    def classifier(self) -> Optional[InferenceBackend]:
        """The registry's default backend (the shared model of a homogeneous
        fleet); ``None`` when the registry is strict per-patient only."""
        return self.registry.default

    def register_model(self, patient_id: int, backend: InferenceBackend) -> int:
        """Install (or hot-swap) one patient's tailored backend.

        Delegates to :meth:`ModelRegistry.register
        <repro.serving.registry.ModelRegistry.register>`: the swap is
        atomic, bumps the registry epoch (returned) and takes effect at the
        very next drain — queued windows are classified by the *new* model.
        """
        return self.registry.register(patient_id, backend)

    def model_label_for(self, patient_id: int) -> str:
        """Stats label of the backend serving ``patient_id``."""
        return self.registry.label_for(patient_id)

    # ------------------------------------------------------------ membership
    @property
    def patient_ids(self) -> List[int]:
        return sorted(self._monitors)

    @property
    def n_patients(self) -> int:
        return len(self._monitors)

    @property
    def pending_count(self) -> int:
        """Number of completed windows awaiting the next :meth:`drain`."""
        return len(self._pending)

    def add_patient(self, patient_id: int) -> StreamingMonitor:
        """Register a patient; returns their (classifier-less) monitor."""
        patient_id = int(patient_id)
        if patient_id in self._monitors:
            raise KeyError("patient %d is already monitored" % patient_id)
        monitor = StreamingMonitor(
            patient_id,
            self.fs,
            classifier=None,
            windowing=self.windowing,
            detector_params=self.detector_params,
            feature_cache=self.feature_cache,
            lossy=self.lossy,
        )
        self._monitors[patient_id] = monitor
        return monitor

    def monitor(self, patient_id: int) -> StreamingMonitor:
        return self._monitors[int(patient_id)]

    def missing_patients(self, patient_ids: Iterable[int]) -> List[int]:
        """Ids from ``patient_ids`` with no registered monitor.

        One-call membership probe for routing layers: the sharded fleet's
        strict-mode ``enqueue`` validates a whole replay batch with a single
        round-trip per shard instead of one ``has_patient`` call per id.
        """
        return sorted({int(p) for p in patient_ids} - set(self._monitors))

    def has_patient(self, patient_id: int) -> bool:
        return int(patient_id) in self._monitors

    # ------------------------------------------------------------- migration
    def snapshot_patient(self, patient_id: int) -> MonitorState:
        """Non-destructively capture one patient's full serving state.

        The checkpoint counterpart of :meth:`export_patient`: the returned
        :class:`~repro.serving.streaming.MonitorState` carries the same DSP
        carry-over and the patient's currently queued
        :class:`~repro.serving.streaming.PendingWindow` entries, but the
        fleet keeps serving the patient — nothing is detached.  A federated
        cluster checkpoints every patient this way so that a dead gateway's
        patients can revive at their new owner from the last snapshot
        (:mod:`repro.serving.cluster`).

        A patient known only through :meth:`enqueue` snapshots a
        pending-only state.  Raises :class:`KeyError` when the fleet knows
        nothing of the patient at all.
        """
        patient_id = int(patient_id)
        monitor = self._monitors.get(patient_id)
        queued = tuple(
            window for window in self._pending if int(window.patient_id) == patient_id
        )
        if monitor is None and not queued:
            raise KeyError(
                "patient %d has no monitor and no pending windows here" % patient_id
            )
        if monitor is not None:
            state = monitor.snapshot()
        else:
            state = MonitorState(
                version=MONITOR_STATE_VERSION,
                patient_id=patient_id,
                fs=self.fs,
                detector=None,
                windower=None,
                sequence=None,
                n_windows=0,
                n_usable=0,
            )
        return replace(state, pending=queued)

    def export_patient(self, patient_id: int) -> MonitorState:
        """Atomically detach one patient: monitor state plus queued windows.

        Returns a :class:`~repro.serving.streaming.MonitorState` carrying the
        patient's full DSP carry-over *and* every one of their
        :class:`~repro.serving.streaming.PendingWindow` entries, removed from
        this fleet's queue in their arrival order.  After the call the fleet
        holds nothing of the patient — the state is the single authoritative
        copy, ready for :meth:`import_patient` on another fleet (possibly in
        another process: the state pickles).

        A patient known only through :meth:`enqueue` (windows but no monitor)
        exports a pending-only state.  Raises :class:`KeyError` when the
        fleet knows nothing of the patient at all.
        """
        patient_id = int(patient_id)
        monitor = self._monitors.pop(patient_id, None)
        kept: List[PendingWindow] = []
        moved: List[PendingWindow] = []
        for window in self._pending:
            (moved if int(window.patient_id) == patient_id else kept).append(window)
        if monitor is None and not moved:
            raise KeyError(
                "patient %d has no monitor and no pending windows here" % patient_id
            )
        self._pending = kept
        if not self._pending:
            self._oldest_pending_t = None
        if monitor is not None:
            state = monitor.snapshot()
        else:
            state = MonitorState(
                version=MONITOR_STATE_VERSION,
                patient_id=patient_id,
                fs=self.fs,
                detector=None,
                windower=None,
                sequence=None,
                n_windows=0,
                n_usable=0,
            )
        return replace(state, pending=tuple(moved))

    def import_patient(self, state: MonitorState, pending_age_s: float = 0.0) -> int:
        """Atomically attach a migrated patient: monitor plus queued windows.

        The inverse of :meth:`export_patient`: revives the monitor (when the
        state carries one) and appends the state's pending windows to this
        fleet's queue, so the very next drain classifies them exactly as the
        source fleet would have.  Import is an explicit ownership transfer —
        it bypasses the ``auto_register`` contract the same way
        :meth:`add_patient` does.

        ``pending_age_s`` is how long the state's pending windows had already
        waited on the source fleet: the oldest-pending clock is back-dated by
        that much, so a migrated window keeps its age in this fleet's
        :meth:`stats` instead of looking freshly arrived — a
        :class:`~repro.serving.scheduler.LatencyPolicy` bound must not be
        extended by a mid-wait migration.  Ages are durations, so the value
        transfers safely between fleets with unsynchronised clocks.

        Returns the fleet's new pending-window count (like :meth:`push`).
        Raises :class:`KeyError` if the patient is already monitored here and
        :class:`ValueError` on a version or sampling-frequency mismatch —
        both *before* any state is mutated.
        """
        if not isinstance(state, MonitorState):
            raise ValueError("import_patient expects a MonitorState")
        if state.version != MONITOR_STATE_VERSION:
            raise ValueError(
                "monitor state version %d is not the supported version %d"
                % (state.version, MONITOR_STATE_VERSION)
            )
        patient_id = int(state.patient_id)
        if patient_id in self._monitors:
            raise KeyError("patient %d is already monitored" % patient_id)
        if state.has_monitor and state.fs != self.fs:
            raise ValueError(
                "state fs %g Hz does not match the fleet's %g Hz" % (state.fs, self.fs)
            )
        if state.has_monitor:
            self._monitors[patient_id] = StreamingMonitor.from_snapshot(
                state, feature_cache=self.feature_cache, lossy=self.lossy
            )
        if state.pending:
            self._queue(list(state.pending))
            if pending_age_s > 0.0:
                backdated = self._clock() - float(pending_age_s)
                if self._oldest_pending_t is None or backdated < self._oldest_pending_t:
                    self._oldest_pending_t = backdated
        return len(self._pending)

    def _monitor_for_push(self, patient_id: int) -> StreamingMonitor:
        patient_id = int(patient_id)
        monitor = self._monitors.get(patient_id)
        if monitor is None:
            if not self.auto_register:
                raise KeyError(
                    "unknown patient %d (auto_register=False; call add_patient first)"
                    % patient_id
                )
            monitor = self.add_patient(patient_id)
        return monitor

    # -------------------------------------------------------------- streaming
    def push(self, patient_id: int, chunk: np.ndarray, seq: int | None = None) -> int:
        """Feed one ECG chunk of one patient; windows it completes are queued.

        Unknown ``patient_id`` values follow the ``auto_register`` contract
        (see the class docstring).  ``seq``, when given, is enforced by the
        patient's monitor (duplicates / gaps raise, see
        :meth:`~repro.serving.streaming.StreamingMonitor.push`).

        Returns the number of windows currently pending classification.
        """
        monitor = self._monitor_for_push(patient_id)
        self._queue(monitor.push(chunk, seq=seq))
        self._chunks_since_drain += 1
        return len(self._pending)

    def push_wire(self, frame: bytes) -> int:
        """Feed one wire-format frame (see :mod:`repro.serving.wire`).

        The frame's sampling frequency must match the fleet's; its sequence
        number is enforced against the patient's stream.  Returns the pending
        window count, like :meth:`push`.
        """
        chunk = decode_chunk_checked(frame, self.fs)
        return self.push(chunk.patient_id, chunk.samples, seq=chunk.seq)

    def enqueue(self, windows: Iterable[PendingWindow]) -> int:
        """Queue externally produced pending windows for the next drain.

        This is the replay / offload entry point: windows featurised
        elsewhere (an edge node, a recorded session, a benchmark) join the
        same batched classification path as live streams.

        Unknown patients follow the same ``auto_register`` contract as
        :meth:`push`: with ``auto_register=False`` a window for a patient
        that was never :meth:`add_patient`-ed raises :class:`KeyError`
        *before anything is queued* (replayed windows are just as subject to
        routing bugs as live chunks).  With the default ``auto_register=True``
        no monitor is created — replayed windows carry their features
        already, so there is no DSP state to host.
        """
        windows = list(windows)
        if not self.auto_register:
            for window in windows:
                if int(window.patient_id) not in self._monitors:
                    raise KeyError(
                        "unknown patient %d (auto_register=False; call add_patient first)"
                        % int(window.patient_id)
                    )
        self._queue(windows)
        return len(self._pending)

    def finish(self, patient_id: int | None = None) -> int:
        """Flush one patient's stream (or all of them) into the pending queue."""
        if patient_id is not None:
            self._queue(self._monitors[int(patient_id)].finish())
        else:
            for pid in self.patient_ids:
                self._queue(self._monitors[pid].finish())
        return len(self._pending)

    def _queue(self, windows: List[PendingWindow]) -> None:
        if windows and not self._pending:
            self._oldest_pending_t = self._clock()
        self._pending.extend(windows)

    # -------------------------------------------------------------- draining
    def stats(self) -> DrainStats:
        """Queue-state snapshot for :class:`~repro.serving.scheduler.DrainPolicy`."""
        if self._pending and self._oldest_pending_t is not None:
            oldest_age = max(0.0, self._clock() - self._oldest_pending_t)
        else:
            oldest_age = 0.0
        return DrainStats(
            pending_windows=len(self._pending),
            chunks_since_drain=self._chunks_since_drain,
            oldest_pending_age_s=oldest_age,
            n_patients=len(self._monitors),
        )

    def gap_stats(self) -> GapStats:
        """Aggregate lossy-mode gap accounting over every live monitor.

        Always answers (all-zero on a strict fleet), so gateways can poll it
        unconditionally.  Counts follow a patient through migration — they
        ride in :class:`~repro.serving.streaming.MonitorState`.
        """
        gaps = 0
        windows_reset = 0
        for monitor in self._monitors.values():
            gaps += monitor.n_gaps
            windows_reset += monitor.windows_reset_by_gap
        return GapStats(gaps=gaps, windows_reset=windows_reset)

    def should_drain(self) -> bool:
        """Whether the configured drain policy wants a drain right now."""
        return self.drain_policy is not None and self.drain_policy.should_drain(self.stats())

    def maybe_drain(self) -> List[WindowDecision]:
        """Drain if (and only if) the drain policy triggers; else ``[]``."""
        if self.drain_policy is None:
            return []
        stats = self.stats()
        if not self.drain_policy.should_drain(stats):
            return []
        return self._drain(stats)

    def drain(self) -> List[WindowDecision]:
        """Classify every pending window, one batched SVM call per model group.

        Windows are grouped by the backend the registry resolves for their
        patient and every group is classified with a single vectorised call;
        decisions come back in the queue's arrival order regardless of the
        grouping (see :func:`~repro.serving.registry.classify_grouped`).
        With a single shared model this is exactly one batched call.
        """
        return self._drain(self.stats())

    def _drain(self, stats: DrainStats) -> List[WindowDecision]:
        # Classify BEFORE popping the queue: if the classifier raises, every
        # window stays pending and the drain can be retried — a failed drain
        # must never lose seizure-alarm windows.
        decisions = classify_grouped(self.registry.backend_for, self._pending)
        self._pending = []
        self._chunks_since_drain = 0
        self._oldest_pending_t = None
        if self.drain_policy is not None:
            self.drain_policy.notify_drain(stats)
        return decisions

    def run(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        drain_every: int = 0,
        policy: DrainPolicy | None = None,
    ) -> List[WindowDecision]:
        """Convenience driver over :func:`run_streams` (see its docstring)."""
        return run_streams(self, streams, drain_every=drain_every, policy=policy)
