#!/usr/bin/env python3
"""Kernel comparison (Table I) plus the cost of each kernel's accelerator.

The paper motivates the quadratic kernel by comparing linear, quadratic, cubic
and Gaussian SVMs (Table I): the polynomial kernels clearly beat the linear
one on the clinical data, and the quadratic kernel matches the cubic one at a
lower implementation cost.  This example regenerates the comparison on the
synthetic cohort and additionally reports, for each kernel, the size of the
SV memory the accelerator would need — the reason the number of support
vectors matters as much as raw accuracy on a WBSN.

Run with:  python examples/kernel_comparison.py  [--profile paper]
"""

import argparse

from repro.core import hardware_cost
from repro.experiments import table1_kernels
from repro.experiments.data import PROFILES, get_experiment_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    args = parser.parse_args()

    data = get_experiment_data(args.profile)
    rows = table1_kernels.run(data.features)

    print(table1_kernels.format_table(rows))
    print()
    print("Paper Table I (clinical cohort), for comparison:")
    for kernel, reference in table1_kernels.PAPER_TABLE1.items():
        print(
            "  %-10s Sp %.1f%%  Se %.1f%%  GM %.1f%%"
            % (kernel, reference["specificity"], reference["sensitivity"], reference["gm"])
        )

    print()
    print("Accelerator implications of the kernel choice (64-bit datapath):")
    for row in rows:
        report = hardware_cost(
            n_features=data.features.n_features,
            n_support_vectors=max(row.mean_support_vectors, 1.0),
            feature_bits=64,
            coeff_bits=64,
            per_feature_scaling=False,
            datapath_cap_bits=64,
        )
        print(
            "  %-10s avg #SV %6.1f -> SV memory %7.1f kbit, %7.0f nJ / classification"
            % (
                row.kernel,
                row.mean_support_vectors,
                row.mean_support_vectors * data.features.n_features * 64 / 1024.0,
                report.energy_nj,
            )
        )
    print()
    print(
        "The quadratic kernel offers cubic-level GM with a smaller SV set than the\n"
        "Gaussian kernel, which is why the paper tailors Equation 3 in hardware."
    )


if __name__ == "__main__":
    main()
