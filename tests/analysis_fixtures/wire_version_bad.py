"""Known-bad corpus for ``wire-version``: layout drift without a bump.

Every layout constant below differs from the fingerprint pinned for wire
version 1 in ``repro.analysis.rules.wire_version.WIRE_REGISTRY``.
"""

import struct

WIRE_VERSION = 1
WIRE_MAGIC = b"ECG0"  # expect[wire-version]
HEADER = struct.Struct("<4sBBHIIId")  # expect[wire-version]
DTYPE_CODES = {0: "f4", 1: "f8", 2: "i2"}  # expect[wire-version]
