"""Figure 5 — GM / energy / area when varying the support-vector budget.

The paper bounds the SV-set size with the norm-based budgeting strategy
(iterative removal of the lowest-norm SV plus re-training) and sweeps the
budget.  Classification quality is almost flat until roughly 50 support
vectors remain and collapses below; energy and area drop with the budget
because both the kernel-evaluation workload and the SV memory shrink.  At the
~50-SV design point the paper reports −76% energy and −45% area for a 1.5%
GM loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.design_point import DesignPoint
from repro.core.sv_budgeting import sv_budget_sweep
from repro.features.extractor import FeatureMatrix
from repro.svm.model import SVMTrainParams

__all__ = ["PAPER_REFERENCE", "DEFAULT_BUDGETS", "Fig5Result", "run", "format_series"]

#: Reference behaviour reported by the paper for its selected design point.
PAPER_REFERENCE: Dict[str, float] = {
    "selected_budget": 50,
    "energy_reduction_pct": 76.0,
    "area_reduction_pct": 45.0,
    "gm_loss_pct": 1.5,
}

#: SV budgets swept by default (largest first; the first entry acts as the
#: un-budgeted reference when it exceeds the natural SV count).
DEFAULT_BUDGETS: Sequence[int] = (120, 100, 80, 68, 50, 35, 20, 10)


@dataclass
class Fig5Result:
    """The Figure 5 series plus the derived selected-point statistics."""

    points: List[DesignPoint]
    selected_budget: int

    @property
    def baseline(self) -> DesignPoint:
        return self.points[0]

    @property
    def selected(self) -> DesignPoint:
        for point in self.points:
            if int(point.extras.get("budget", -1)) == self.selected_budget:
                return point
        raise KeyError("selected budget %d not in sweep" % self.selected_budget)

    def selected_summary(self) -> Dict[str, float]:
        baseline, selected = self.baseline, self.selected
        return {
            "selected_budget": float(self.selected_budget),
            "energy_reduction_pct": 100.0 * (1.0 - selected.energy_nj / baseline.energy_nj),
            "area_reduction_pct": 100.0 * (1.0 - selected.area_mm2 / baseline.area_mm2),
            "gm_loss_pct": 100.0 * (baseline.gm - selected.gm),
        }


def run(
    features: FeatureMatrix,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    selected_budget: int = 50,
    train_params: Optional[SVMTrainParams] = None,
    chunk_fraction: float = 0.25,
) -> Fig5Result:
    """Run the Figure 5 sweep (full feature set, 64-bit hardware)."""
    points = sv_budget_sweep(
        features,
        budgets,
        train_params=train_params,
        feature_bits=64,
        coeff_bits=64,
        chunk_fraction=chunk_fraction,
    )
    budgets = list(budgets)
    selected = selected_budget if selected_budget in budgets else budgets[len(budgets) // 2]
    return Fig5Result(points=points, selected_budget=selected)


def format_series(result: Fig5Result) -> str:
    """Text rendering of the Figure 5 series."""
    lines = [
        "Figure 5: classification performance and resources vs. SV budget",
        "%10s %8s %8s %12s %10s" % ("budget", "GM %", "avg #SV", "energy [nJ]", "area [mm2]"),
    ]
    for point in result.points:
        lines.append(
            "%10d %8.1f %8.1f %12.1f %10.4f"
            % (
                int(point.extras.get("budget", 0)),
                100.0 * point.gm,
                point.n_support_vectors,
                point.energy_nj,
                point.area_mm2,
            )
        )
    summary = result.selected_summary()
    lines.append(
        "selected point: budget %d -> energy -%.0f%%, area -%.0f%%, GM loss %.1f%% "
        "(paper: -76%%, -45%%, 1.5%%)"
        % (
            result.selected_budget,
            summary["energy_reduction_pct"],
            summary["area_reduction_pct"],
            summary["gm_loss_pct"],
        )
    )
    return "\n".join(lines)
