"""Benchmark: batched fleet inference vs the naive per-window loop.

The serving engine's claim is that classifying the pending windows of a whole
monitor fleet in one vectorised call is far cheaper than the one-window-at-a-
time loop a naive server would run.  This harness measures both paths on the
same stack of feature vectors with the paper's 9/15-bit fixed-point detector,
checks that the predictions agree exactly, and reports windows/second.
"""

import time

import numpy as np

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import PendingWindow, classify_windows
from repro.svm.model import train_svm

from benchmarks.conftest import run_once

#: Number of simultaneous pending windows in the simulated fleet drain.
TARGET_WINDOWS = 512


def _measure(detector, X):
    t0 = time.perf_counter()
    naive = np.concatenate([detector.predict(X[i : i + 1]) for i in range(X.shape[0])])
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = detector.predict(X)
    t_batched = time.perf_counter() - t0

    # The same batch routed through the fleet's drain path (decision scores
    # plus labels), to time the full serving layer and not just the model.
    pending = [
        PendingWindow(
            patient_id=i % 16,
            start_s=180.0 * (i // 16),
            end_s=180.0 * (i // 16) + 180.0,
            n_beats=200,
            features=X[i],
        )
        for i in range(X.shape[0])
    ]
    t0 = time.perf_counter()
    decisions = classify_windows(detector, pending)
    t_drain = time.perf_counter() - t0
    return naive, batched, decisions, t_naive, t_batched, t_drain


def test_bench_serving_batched_inference(benchmark, experiment_data):
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    reps = -(-TARGET_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:TARGET_WINDOWS]

    naive, batched, decisions, t_naive, t_batched, t_drain = run_once(
        benchmark, _measure, detector, X
    )

    n = X.shape[0]
    print()
    print("pending windows per drain : %d  (%d support vectors, 9/15 bits)"
          % (n, model.n_support_vectors))
    print("naive per-window loop     : %8.0f windows/s" % (n / t_naive))
    print("batched predict           : %8.0f windows/s  (%.1fx)"
          % (n / t_batched, t_naive / t_batched))
    print("fleet drain (scores+labels): %7.0f windows/s  (%.1fx)"
          % (n / t_drain, t_naive / t_drain))

    # Correctness: the batched path is bit-identical to the per-window loop,
    # both through predict() and through the fleet drain.
    assert np.array_equal(naive, batched)
    drain_labels = np.asarray([1 if d.alarm else -1 for d in decisions])
    assert np.array_equal(naive, drain_labels)

    # The acceptance bar of the serving subsystem: at least 5x the naive
    # windows/second throughput.
    assert t_naive / t_batched >= 5.0
