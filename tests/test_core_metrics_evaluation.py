"""Unit tests for the classification metrics and the LOSO evaluation loop."""

import numpy as np
import pytest

from repro.core.evaluation import (
    budgeted_svm_factory,
    float_svm_factory,
    leave_one_session_out,
    quantized_svm_factory,
)
from repro.core.metrics import ClassificationMetrics, confusion_counts, geometric_mean
from repro.quant.quantized_model import QuantizationConfig
from repro.svm.kernels import LinearKernel


class TestConfusionCounts:
    def test_perfect_prediction(self):
        y = np.array([1, 1, -1, -1])
        assert confusion_counts(y, y) == (2, 2, 0, 0)

    def test_all_wrong(self):
        y = np.array([1, -1])
        assert confusion_counts(y, -y) == (0, 0, 1, 1)

    def test_mixed(self):
        y_true = np.array([1, 1, -1, -1, -1])
        y_pred = np.array([1, -1, -1, 1, -1])
        assert confusion_counts(y_true, y_pred) == (1, 2, 1, 1)

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 1]), np.array([1, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([1, -1]), np.array([1]))


class TestClassificationMetrics:
    def test_sensitivity_specificity_gm(self):
        metrics = ClassificationMetrics(
            true_positives=8, true_negatives=90, false_positives=10, false_negatives=2
        )
        assert metrics.sensitivity == pytest.approx(0.8)
        assert metrics.specificity == pytest.approx(0.9)
        assert metrics.gm == pytest.approx(np.sqrt(0.72))

    def test_undefined_sensitivity_without_positives(self):
        metrics = ClassificationMetrics(0, 10, 0, 0)
        assert metrics.sensitivity is None
        assert metrics.gm is None
        assert metrics.specificity == 1.0

    def test_merge_pools_counts(self):
        a = ClassificationMetrics(1, 2, 3, 4)
        b = ClassificationMetrics(10, 20, 30, 40)
        merged = a.merged_with(b)
        assert (merged.true_positives, merged.true_negatives) == (11, 22)
        assert (merged.false_positives, merged.false_negatives) == (33, 44)

    def test_from_predictions(self):
        y_true = np.array([1, -1, 1, -1])
        y_pred = np.array([1, -1, -1, -1])
        metrics = ClassificationMetrics.from_predictions(y_true, y_pred)
        assert metrics.true_positives == 1
        assert metrics.false_negatives == 1

    def test_geometric_mean_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean(-0.1, 0.5)

    def test_undefined_specificity_without_negatives(self):
        metrics = ClassificationMetrics(5, 0, 0, 1)
        assert metrics.specificity is None
        assert metrics.gm is None
        assert metrics.sensitivity == pytest.approx(5 / 6)

    def test_empty_evaluation_has_no_metrics(self):
        metrics = ClassificationMetrics(0, 0, 0, 0)
        assert metrics.sensitivity is None
        assert metrics.specificity is None
        assert metrics.gm is None

    def test_merge_fills_in_the_missing_class(self):
        # A positives-only fold pooled with a negatives-only fold yields a
        # fully defined GM even though each half has gm == None.
        only_negatives = ClassificationMetrics(0, 5, 1, 0)
        only_positives = ClassificationMetrics(3, 0, 0, 1)
        assert only_negatives.gm is None and only_positives.gm is None
        merged = only_negatives.merged_with(only_positives)
        assert merged.sensitivity == pytest.approx(3 / 4)
        assert merged.specificity == pytest.approx(5 / 6)
        assert merged.gm == pytest.approx(np.sqrt((3 / 4) * (5 / 6)))

    def test_merge_is_commutative_and_preserves_none(self):
        a = ClassificationMetrics(0, 0, 0, 0)
        b = ClassificationMetrics(0, 7, 2, 0)
        ab, ba = a.merged_with(b), b.merged_with(a)
        assert ab == ba
        assert ab.sensitivity is None  # still no positives after pooling
        assert ab.gm is None
        assert ab.specificity == pytest.approx(7 / 9)


class TestLeaveOneSessionOut:
    def test_one_fold_per_session(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory(LinearKernel()))
        assert result.n_folds == len(feature_matrix.sessions)

    def test_fold_sizes_match_sessions(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory(LinearKernel()))
        for fold in result.folds:
            expected = int(np.sum(feature_matrix.session_ids == fold.session_id))
            assert fold.n_test_windows == expected

    def test_metrics_within_unit_interval(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory())
        assert 0.0 <= result.sensitivity <= 1.0
        assert 0.0 <= result.specificity <= 1.0
        assert 0.0 <= result.gm <= 1.0

    def test_gm_is_geometric_mean_of_averages(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory())
        assert result.gm == pytest.approx(np.sqrt(result.sensitivity * result.specificity))

    def test_detector_beats_chance(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory())
        assert result.gm > 0.6

    def test_session_subset(self, feature_matrix):
        sessions = list(feature_matrix.sessions[:2])
        result = leave_one_session_out(
            feature_matrix, float_svm_factory(LinearKernel()), sessions=sessions
        )
        assert result.n_folds == 2

    def test_mean_support_vectors_positive(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory())
        assert result.mean_support_vectors > 0

    def test_budgeted_factory_respects_budget(self, feature_matrix):
        budget = 15
        result = leave_one_session_out(feature_matrix, budgeted_svm_factory(budget=budget))
        assert all(fold.n_support_vectors <= budget for fold in result.folds)

    def test_quantized_factory_reports_sv_count(self, feature_matrix):
        factory = quantized_svm_factory(QuantizationConfig(feature_bits=9, coeff_bits=15))
        result = leave_one_session_out(feature_matrix, factory)
        assert result.mean_support_vectors > 0
        assert 0.0 <= result.gm <= 1.0

    def test_quantized_close_to_float(self, feature_matrix):
        float_result = leave_one_session_out(feature_matrix, float_svm_factory())
        quant_result = leave_one_session_out(
            feature_matrix,
            quantized_svm_factory(QuantizationConfig(feature_bits=12, coeff_bits=16)),
        )
        assert abs(float_result.gm - quant_result.gm) < 0.1

    def test_pooled_metrics_counts_match_total_windows(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory(LinearKernel()))
        pooled = result.pooled_metrics
        total = (
            pooled.true_positives
            + pooled.true_negatives
            + pooled.false_positives
            + pooled.false_negatives
        )
        assert total == feature_matrix.n_samples

    def test_summary_keys(self, feature_matrix):
        result = leave_one_session_out(feature_matrix, float_svm_factory(LinearKernel()))
        assert set(result.summary()) == {
            "n_folds",
            "sensitivity",
            "specificity",
            "gm",
            "mean_support_vectors",
            "n_features",
        }
