"""Unit tests for the SMO solver and the SVM training / inference API."""

import numpy as np
import pytest

from repro.svm.kernels import LinearKernel, PolynomialKernel
from repro.svm.model import SVMTrainParams, class_weighted_penalties, train_svm
from repro.svm.smo import SMOParams, smo_solve


class TestSMOSolver:
    def _solve_linear(self, X, y, c=1.0):
        gram = X @ X.T
        return smo_solve(gram, y, SMOParams(c_positive=c, c_negative=c))

    def test_dual_constraints_satisfied(self, separable_dataset):
        X, y = separable_dataset
        result = self._solve_linear(X, y)
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= 1.0 + 1e-9)
        assert abs(np.dot(result.alpha, y)) < 1e-6

    def test_converges_on_separable_data(self, separable_dataset):
        X, y = separable_dataset
        result = self._solve_linear(X, y, c=10.0)
        assert result.converged

    def test_perfect_classification_of_training_set(self, separable_dataset):
        X, y = separable_dataset
        result = self._solve_linear(X, y, c=10.0)
        scores = (X @ X.T) @ (result.alpha * y) + result.bias
        assert np.all(np.sign(scores) == y)

    def test_sparse_solution_on_separable_data(self, separable_dataset):
        X, y = separable_dataset
        result = self._solve_linear(X, y, c=10.0)
        assert np.sum(result.support_mask()) < X.shape[0] / 2

    def test_alpha_capped_by_per_class_c(self):
        rng = np.random.default_rng(8)
        # Overlapping classes force some alphas to the box bound.
        X = np.vstack([rng.normal(0.3, 1.0, (40, 2)), rng.normal(-0.3, 1.0, (40, 2))])
        y = np.concatenate([np.ones(40), -np.ones(40)])
        params = SMOParams(c_positive=0.5, c_negative=2.0)
        result = smo_solve(X @ X.T, y, params)
        assert np.all(result.alpha[y > 0] <= 0.5 + 1e-9)
        assert np.all(result.alpha[y < 0] <= 2.0 + 1e-9)

    def test_rejects_single_class(self):
        X = np.random.default_rng(9).normal(size=(10, 2))
        with pytest.raises(ValueError):
            smo_solve(X @ X.T, np.ones(10), SMOParams())

    def test_rejects_bad_labels(self):
        X = np.random.default_rng(10).normal(size=(4, 2))
        with pytest.raises(ValueError):
            smo_solve(X @ X.T, np.array([0, 1, 1, 0]), SMOParams())

    def test_rejects_non_square_kernel(self):
        with pytest.raises(ValueError):
            smo_solve(np.zeros((3, 4)), np.array([1, -1, 1]), SMOParams())


class TestClassWeights:
    def test_balanced_weights_scale_with_imbalance(self):
        y = np.array([1] * 10 + [-1] * 90)
        params = class_weighted_penalties(y, c=1.0, balanced=True)
        assert params.c_positive == pytest.approx(5.0)
        assert params.c_negative == pytest.approx(100.0 / 180.0)

    def test_unbalanced_weights_equal(self):
        y = np.array([1] * 10 + [-1] * 90)
        params = class_weighted_penalties(y, c=2.0, balanced=False)
        assert params.c_positive == params.c_negative == 2.0


class TestTrainSVM:
    def test_training_produces_support_vectors(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y, kernel=LinearKernel())
        assert 0 < model.n_support_vectors <= X.shape[0]
        assert model.support_vectors.shape[1] == 2
        assert model.dual_coef.shape == (model.n_support_vectors,)

    def test_training_accuracy_on_separable_data(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y, kernel=LinearKernel())
        assert np.mean(model.predict(X) == y) > 0.95

    def test_quadratic_solves_xor_like_problem(self):
        rng = np.random.default_rng(11)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(X[:, 0] * X[:, 1] > 0, 1, -1)
        model = train_svm(X, y, kernel=PolynomialKernel(degree=2), params=SVMTrainParams(c=10.0))
        assert np.mean(model.predict(X) == y) > 0.95

    def test_linear_fails_xor_like_problem(self):
        rng = np.random.default_rng(12)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(X[:, 0] * X[:, 1] > 0, 1, -1)
        model = train_svm(X, y, kernel=LinearKernel(), params=SVMTrainParams(c=10.0))
        assert np.mean(model.predict(X) == y) < 0.8

    def test_decision_function_sign_matches_predict(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y)
        scores = model.decision_function(X)
        labels = model.predict(X)
        assert np.all((scores >= 0) == (labels == 1))

    def test_feature_count_validated_at_predict(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))

    def test_dual_coef_sign_matches_labels(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y, kernel=LinearKernel())
        assert np.all(np.sign(model.dual_coef) == model.sv_labels)

    def test_support_indices_refer_to_training_rows(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y, kernel=LinearKernel(), params=SVMTrainParams(scaling="none"))
        assert np.allclose(model.support_vectors, X[model.support_indices])

    def test_scaling_none_keeps_raw_support_vectors(self, separable_dataset):
        X, y = separable_dataset
        model = train_svm(X, y, params=SVMTrainParams(scaling="none"))
        assert model.scaler is None

    def test_sv_norms_positive(self, quadratic_model):
        norms = quadratic_model.sv_norms()
        assert norms.shape == (quadratic_model.n_support_vectors,)
        assert np.all(norms > 0.0)

    def test_memory_words(self, quadratic_model):
        expected = quadratic_model.n_support_vectors * quadratic_model.n_features
        assert quadratic_model.memory_words() == expected

    def test_cohort_model_beats_chance(self, feature_matrix, quadratic_model):
        predictions = quadratic_model.predict(feature_matrix.X)
        accuracy = np.mean(predictions == feature_matrix.y)
        assert accuracy > 0.8
