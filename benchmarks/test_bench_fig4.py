"""Benchmark: regenerate Figure 4 (GM / energy / area vs. number of features).

Paper reference: GM degrades slowly down to ~15 features and collapses below;
the selected 23-feature point costs 65% less energy and 42% less area than the
full 53-feature set for a 1.2% GM loss, on a 64-bit implementation.
"""

from repro.experiments import fig4_features

from benchmarks.conftest import run_once


def test_bench_fig4_feature_count_sweep(benchmark, experiment_data, full_axes):
    counts = fig4_features.DEFAULT_FEATURE_COUNTS if full_axes else (53, 38, 23, 15, 8)
    result = run_once(
        benchmark, fig4_features.run, experiment_data.features, feature_counts=counts
    )

    print()
    print(fig4_features.format_series(result))
    print("paper reference:", fig4_features.PAPER_REFERENCE)

    points = result.points
    assert [p.n_features for p in points] == list(counts)

    # Energy and area shrink monotonically with the feature count (the SV
    # count changes slightly between sizes, so allow a small tolerance).
    baseline = result.baseline
    selected = result.selected
    assert selected.energy_nj < baseline.energy_nj
    assert selected.area_mm2 < baseline.area_mm2

    summary = result.selected_summary()
    # Shape check against the paper's selected point: tens of percent of
    # energy/area saved for a small GM loss.
    assert summary["energy_reduction_pct"] > 30.0
    assert summary["area_reduction_pct"] > 20.0
    assert summary["gm_loss_pct"] < 10.0
