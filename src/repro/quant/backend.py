"""Fixed-point inference backend: the serving adapter around ``QuantizedSVM``.

The fixed-point twin of :class:`repro.svm.backend.FloatSVMBackend`: it puts a
:class:`~repro.quant.quantized_model.QuantizedSVM` behind the serving layer's
:class:`~repro.serving.registry.InferenceBackend` protocol, selecting the
design point's feature columns from the fleet's full-width window vectors
before the integer pipeline quantises them.  The projection happens in the
float domain (it is pure column selection), so the scores stay bit-identical
to running the quantised model directly on pre-sliced inputs — the property
the heterogeneous-fleet parity suite pins.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
from repro.svm.backend import project_features

__all__ = ["QuantizedSVMBackend"]


class QuantizedSVMBackend:
    """A fixed-point SVM pipeline behind the serving-layer backend interface.

    Parameters
    ----------
    quantized:
        The bit-accurate :class:`~repro.quant.quantized_model.QuantizedSVM`.
    feature_indices:
        Optional column indices (into the fleet's full-width feature vectors)
        this design point consumes; ``None`` for the full vector.
    name:
        Optional label override for :meth:`describe`; defaults to a
        ``q<Dbits>/<Abits>[f=...,sv=...]`` signature.
    """

    def __init__(
        self,
        quantized: QuantizedSVM,
        feature_indices: Optional[Sequence[int]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.quantized = quantized
        self.feature_indices = (
            None
            if feature_indices is None
            else np.asarray(list(feature_indices), dtype=int)
        )
        if (
            self.feature_indices is not None
            and self.feature_indices.size != quantized.n_features
        ):
            raise ValueError(
                "feature_indices selects %d columns but the pipeline consumes %d features"
                % (self.feature_indices.size, quantized.n_features)
            )
        self._name = name

    # ------------------------------------------------------------- protocol
    @property
    def n_features(self) -> int:
        """Features the integer pipeline consumes (after column projection)."""
        return self.quantized.n_features

    @property
    def n_support_vectors(self) -> int:
        return self.quantized.n_support_vectors

    @property
    def config(self) -> "QuantizationConfig":
        """The :class:`~repro.quant.quantized_model.QuantizationConfig`."""
        return self.quantized.config

    def _project(self, X: np.ndarray) -> np.ndarray:
        return project_features(X, self.feature_indices)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self.quantized.decision_function(self._project(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.quantized.predict(self._project(X))

    def scores_and_labels(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.quantized.scores_and_labels(self._project(X))

    def describe(self) -> str:
        """Stable label used by per-model serving stats and drain counters."""
        if self._name is not None:
            return self._name
        config = self.quantized.config
        return "q%d/%d[f=%d,sv=%d]" % (
            config.feature_bits,
            config.coeff_bits,
            self.quantized.n_features,
            self.quantized.n_support_vectors,
        )

    def __repr__(self) -> str:
        return "QuantizedSVMBackend(%s)" % self.describe()
