"""Support-vector budget sweep (Figure 5 of the paper).

For a series of SV budgets, the detector is re-trained with the budgeting loop
of :mod:`repro.svm.budget` (iterative removal of the lowest-norm support
vector followed by re-training) under leave-one-session-out cross-validation,
and the accelerator is re-sized for the resulting SV count.  Small budgets
shrink the SV memory (area, leakage, energy-per-access) and the per-
classification workload; classification quality degrades only marginally until
roughly 50 support vectors remain, then drops sharply — the knee the paper
exploits.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.evaluation import budgeted_svm_factory, leave_one_session_out
from repro.features.extractor import FeatureMatrix
from repro.svm.kernels import Kernel
from repro.svm.model import SVMTrainParams

__all__ = ["sv_budget_sweep"]


def sv_budget_sweep(
    features: FeatureMatrix,
    budgets: Sequence[int],
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    feature_bits: int = 64,
    coeff_bits: int = 64,
    chunk_fraction: float = 0.25,
    model_factory_builder: Optional[Callable[[int], Callable]] = None,
) -> List[DesignPoint]:
    """GM / energy / area for a series of support-vector budgets.

    Parameters
    ----------
    features:
        Feature matrix used for training/evaluation (full 53-feature set in
        the paper's Figure 5).
    budgets:
        SV budgets to evaluate, e.g. ``[120, 100, 80, 68, 50, 30, 20, 10]``.
    kernel, train_params:
        Training configuration.
    feature_bits, coeff_bits:
        Hardware word widths (Figure 5 uses the 64-bit implementation).
    chunk_fraction:
        Removal schedule of the budgeting loop (see
        :class:`repro.svm.budget.BudgetParams`).
    model_factory_builder:
        Alternative factory builder ``budget -> model_factory`` used by the
        ablation benchmarks (e.g. random SV removal instead of lowest-norm).

    Returns
    -------
    list of :class:`DesignPoint`, one per budget.
    """
    points: List[DesignPoint] = []
    for budget in budgets:
        if model_factory_builder is not None:
            factory = model_factory_builder(int(budget))
        else:
            factory = budgeted_svm_factory(
                budget=int(budget),
                kernel=kernel,
                train_params=train_params,
                chunk_fraction=chunk_fraction,
            )
        cv = leave_one_session_out(features, factory)
        n_sv = cv.mean_support_vectors
        if not np.isfinite(n_sv) or n_sv <= 0:
            n_sv = float(budget)
        hardware = hardware_cost(
            n_features=features.n_features,
            n_support_vectors=n_sv,
            feature_bits=feature_bits,
            coeff_bits=coeff_bits,
            per_feature_scaling=False,
            datapath_cap_bits=max(feature_bits, coeff_bits),
        )
        points.append(
            DesignPoint.from_evaluation(
                name="budget=%d" % budget,
                cv_result=cv,
                hardware=hardware,
                extras={"budget": float(budget)},
            )
        )
    return points
