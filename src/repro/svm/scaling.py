"""Per-feature normalisation of the feature vectors.

The 53 features span wildly different numeric ranges (RR intervals in seconds,
Lorenz-plot areas in ms², normalised PSD band powers, …) and a polynomial
kernel on the raw values would be dominated by the largest ones.  Two
normalisers are provided, both fitted on the *training* fold only:

* :class:`StandardScaler` — classical zero-mean / unit-variance
  standardisation; the strongest conditioning, but it requires per-feature
  multipliers and subtractors in an embedded implementation.
* :class:`PowerOfTwoScaler` — shift-only normalisation: every feature is
  divided by ``2^round(log2(σ_j))`` and the mean is *not* removed.  This is
  the normalisation a WBSN feature extractor can afford (shifts instead of
  dividers, exactly the philosophy of the paper's range handling) and it is
  the default of :func:`repro.svm.model.train_svm`.  Because means are kept,
  the normalised features still span visibly different ranges, which is what
  makes the paper's per-feature versus global scaling comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "PowerOfTwoScaler", "make_scaler"]


@dataclass
class StandardScaler:
    """Zero-mean / unit-variance scaler (fit on training data only)."""

    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    scale_: Optional[np.ndarray] = field(default=None, repr=False)
    #: Features whose standard deviation falls below this are left unscaled
    #: (constant columns carry no information and must not blow up).
    min_std: float = 1e-12

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None and self.scale_ is not None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and standard deviation."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0, ddof=0)
        std = np.where(std < self.min_std, 1.0, std)
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted standardisation."""
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before transform()")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def transform_into(self, X: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Standardise ``X`` into a preallocated ``out`` buffer.

        Bit-identical to :meth:`transform` (same subtract-then-divide
        elementwise sequence) but allocation-free; the serving hot path uses
        this to standardise window batches into reusable workspaces.
        """
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before transform_into()")
        np.subtract(X, self.mean_, out=out)
        np.divide(out, self.scale_, out=out)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` then transform it."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X_scaled: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original feature units."""
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform()")
        X_scaled = np.asarray(X_scaled, dtype=float)
        return X_scaled * self.scale_ + self.mean_

    def select_features(self, indices) -> "StandardScaler":
        """Scaler restricted to a subset of feature columns."""
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before select_features()")
        indices = list(indices)
        reduced = type(self)(min_std=self.min_std)
        reduced.mean_ = self.mean_[indices].copy()
        reduced.scale_ = self.scale_[indices].copy()
        return reduced


@dataclass
class PowerOfTwoScaler(StandardScaler):
    """Shift-only normaliser: divide by ``2^round(log2(σ))``, keep the mean.

    The scale factors are exact powers of two, so an embedded front-end can
    apply them with arithmetic shifts; no per-feature offset subtraction is
    required.  Constant features keep a scale of one.
    """

    def fit(self, X: np.ndarray) -> "PowerOfTwoScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        std = X.std(axis=0, ddof=0)
        usable = std >= self.min_std
        exponents = np.zeros(X.shape[1])
        exponents[usable] = np.round(np.log2(std[usable]))
        self.scale_ = 2.0**exponents
        self.mean_ = np.zeros(X.shape[1])
        return self

    def scale_exponents(self) -> np.ndarray:
        """The per-feature shift amounts ``round(log2(σ_j))``."""
        if not self.is_fitted:
            raise RuntimeError("PowerOfTwoScaler must be fitted first")
        return np.round(np.log2(self.scale_)).astype(int)


def make_scaler(kind: str) -> Optional[StandardScaler]:
    """Build a scaler by name: ``"pow2"``, ``"standard"`` or ``"none"``."""
    key = kind.strip().lower()
    if key in ("pow2", "power-of-two", "shift"):
        return PowerOfTwoScaler()
    if key in ("standard", "zscore"):
        return StandardScaler()
    if key in ("none", "raw", ""):
        return None
    raise ValueError("unknown scaler kind %r" % kind)
