"""Ablation benchmark: correlation-driven vs. random feature selection.

DESIGN.md calls out the correlation-driven removal heuristic as a design
choice worth ablating: if removing the most redundant feature first did not
matter, random removal would do just as well.  This benchmark compares the GM
of both strategies at an aggressive subset size.
"""

import numpy as np

from repro.core.feature_selection import feature_reduction_sweep

from benchmarks.conftest import run_once

#: Aggressive subset size where the choice of which features to drop matters.
SUBSET_SIZE = 15
#: Number of random-selection repetitions to average over.
RANDOM_TRIALS = 3


def _random_selection(seed):
    def select(X, n_keep):
        rng = np.random.default_rng(seed)
        return sorted(rng.choice(X.shape[1], size=n_keep, replace=False).tolist())

    return select


def _run_ablation(features):
    correlation_points = feature_reduction_sweep(features, [SUBSET_SIZE])
    random_gms = []
    for seed in range(RANDOM_TRIALS):
        random_points = feature_reduction_sweep(
            features, [SUBSET_SIZE], selection_fn=_random_selection(seed)
        )
        random_gms.append(random_points[0].gm)
    return correlation_points[0], random_gms


def test_bench_ablation_feature_selection(benchmark, experiment_data):
    correlation_point, random_gms = run_once(benchmark, _run_ablation, experiment_data.features)

    print()
    print(
        "correlation-driven selection @ %d features: GM %.1f%%"
        % (SUBSET_SIZE, 100.0 * correlation_point.gm)
    )
    print(
        "random selection        @ %d features: GM %.1f%% (mean of %d trials: %s)"
        % (
            SUBSET_SIZE,
            100.0 * float(np.mean(random_gms)),
            len(random_gms),
            ", ".join("%.1f%%" % (100.0 * g) for g in random_gms),
        )
    )

    # The informed heuristic should not be worse than random selection (it is
    # usually clearly better; a small tolerance absorbs fold noise).
    assert correlation_point.gm >= float(np.mean(random_gms)) - 0.03
