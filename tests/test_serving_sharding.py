"""Cross-layer parity and property tests for the sharded serving stack.

The contract under test: **sharding is invisible**.  For random multi-patient
ECG workloads (varying sampling frequency, chunk partitioning and seizure
placement), a :class:`~repro.serving.sharding.ShardedFleet` — any shard
count, any executor backend, any drain policy, float or fixed-point
classifier — must produce decision-for-decision identical output to a single
:class:`~repro.serving.fleet.MonitorFleet`, which in turn must agree with the
offline per-window ``FeatureExtractor`` + ``predict`` loop.

Scores are compared bit-exactly on the fixed-point model (an integer
pipeline has no excuse for even one ULP of drift).  Float scores are compared
to 1e-9 relative tolerance: BLAS dispatches single-row batches to ``gemv``
and larger ones to ``gemm``, so a drain that happens to hold exactly one
usable window may differ from the big-batch result in the last ULP — the
labels must still be identical.
"""

import math

import numpy as np
import pytest

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    AnyOf,
    ChunkCountPolicy,
    HashRing,
    LatencyPolicy,
    MonitorFleet,
    PendingWindowPolicy,
    ShardedFleet,
    StreamingMonitor,
    decision_sort_key,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg

#: Fuzz corpus: each case varies the cohort seed, fleet size, session length,
#: sampling frequency and the chunk-size distribution of the node uplinks.
FUZZ_CASES = [
    dict(seed=21, n_patients=4, duration_s=1000.0, fs=128.0, seizures=4, max_chunk=6000),
    dict(seed=22, n_patients=5, duration_s=1100.0, fs=100.0, seizures=3, max_chunk=2500),
    dict(seed=23, n_patients=6, duration_s=900.0, fs=160.0, seizures=5, max_chunk=9000),
]

#: Shard count → drain policy, so every policy type participates in the
#: parity sweep.  LatencyPolicy(0.0) drains whenever anything is pending —
#: deterministic without clock injection.
POLICY_OF_SHARDS = {
    1: ChunkCountPolicy(5),
    2: AnyOf([ChunkCountPolicy(7), PendingWindowPolicy(4)]),
    4: LatencyPolicy(0.0),
}


def _make_streams(case):
    """Per-patient chunked raw-ECG streams for one fuzz case."""
    params = CohortParams(
        n_patients=case["n_patients"],
        n_sessions=case["n_patients"],
        session_duration_s=case["duration_s"],
        total_seizures=case["seizures"],
        seed=case["seed"],
        ecg_params=ECGWaveformParams(fs=case["fs"]),
    )
    cohort = generate_cohort(params)
    rng = np.random.default_rng(case["seed"] + 1)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        chunks = []
        lo = 0
        while lo < ecg.ecg_mv.size:
            size = int(rng.integers(200, case["max_chunk"]))
            chunks.append(ecg.ecg_mv[lo : lo + size])
            lo += size
        streams[recording.patient_id] = chunks
    return streams, case["fs"]


@pytest.fixture(scope="module", params=[case["seed"] for case in FUZZ_CASES])
def fuzz_case(request):
    case = next(c for c in FUZZ_CASES if c["seed"] == request.param)
    streams, fs = _make_streams(case)
    return dict(case=case, streams=streams, fs=fs)


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


def _assert_decisions_identical(reference, candidate, *, exact_scores: bool):
    __tracebackhint__ = True
    assert len(candidate) == len(reference)
    for expected, got in zip(reference, candidate):
        assert got.patient_id == expected.patient_id
        assert got.start_s == expected.start_s
        assert got.end_s == expected.end_s
        assert got.n_beats == expected.n_beats
        assert got.usable == expected.usable
        assert got.alarm == expected.alarm
        if expected.score is None:
            assert got.score is None
        elif exact_scores:
            assert got.score == expected.score
        else:
            assert math.isclose(got.score, expected.score, rel_tol=1e-9, abs_tol=1e-12)


class TestShardedParityFuzz:
    """ShardedFleet ≡ MonitorFleet ≡ offline loop, for every fuzz case."""

    def _single_fleet_reference(self, classifier, fuzz_case):
        fleet = MonitorFleet(classifier, fuzz_case["fs"])
        return fleet.run(fuzz_case["streams"])

    @pytest.mark.parametrize("n_shards", sorted(POLICY_OF_SHARDS))
    def test_quantized_parity_is_bit_exact(self, fuzz_case, quantized_detector, n_shards):
        reference = self._single_fleet_reference(quantized_detector, fuzz_case)
        assert any(d.usable for d in reference)
        sharded = ShardedFleet(quantized_detector, fuzz_case["fs"], n_shards=n_shards)
        decisions = sharded.run(fuzz_case["streams"], policy=POLICY_OF_SHARDS[n_shards])
        _assert_decisions_identical(reference, decisions, exact_scores=True)

    @pytest.mark.parametrize("n_shards", sorted(POLICY_OF_SHARDS))
    def test_float_parity(self, fuzz_case, quadratic_model, n_shards):
        reference = self._single_fleet_reference(quadratic_model, fuzz_case)
        sharded = ShardedFleet(quadratic_model, fuzz_case["fs"], n_shards=n_shards)
        decisions = sharded.run(fuzz_case["streams"], policy=POLICY_OF_SHARDS[n_shards])
        _assert_decisions_identical(reference, decisions, exact_scores=False)

    def test_agreement_with_offline_feature_loop(
        self, fuzz_case, quadratic_model, quantized_detector
    ):
        """Fleet labels == offline per-window FeatureExtractor + predict loop."""
        pending = []
        for patient_id, chunks in fuzz_case["streams"].items():
            monitor = StreamingMonitor(patient_id, fuzz_case["fs"])
            for chunk in chunks:
                pending.extend(monitor.push(chunk))
            pending.extend(monitor.finish())
        for classifier, exact in ((quantized_detector, True), (quadratic_model, False)):
            offline = {
                (w.patient_id, w.start_s): int(classifier.predict(w.features.reshape(1, -1))[0])
                for w in pending
                if w.usable
            }
            sharded = ShardedFleet(classifier, fuzz_case["fs"], n_shards=4)
            decisions = sharded.run(fuzz_case["streams"])
            usable = [d for d in decisions if d.usable]
            assert len(usable) == len(offline) > 0
            for decision in usable:
                expected = offline[(decision.patient_id, decision.start_s)]
                assert (1 if decision.alarm else -1) == expected


class TestBackendParity:
    """Thread and process executors match the serial backend bit for bit."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, fuzz_case, quantized_detector, backend):
        if fuzz_case["case"]["seed"] != FUZZ_CASES[0]["seed"]:
            pytest.skip("backend sweep runs on the first fuzz case only")
        serial = ShardedFleet(quantized_detector, fuzz_case["fs"], n_shards=2)
        reference = serial.run(fuzz_case["streams"], drain_every=6)
        with ShardedFleet(
            quantized_detector, fuzz_case["fs"], n_shards=2, backend=backend
        ) as sharded:
            decisions = sharded.run(fuzz_case["streams"], drain_every=6)
        _assert_decisions_identical(reference, decisions, exact_scores=True)

    def test_process_backend_propagates_sequence_errors(self, quantized_detector):
        from repro.serving import DuplicateChunkError

        with ShardedFleet(
            quantized_detector, 128.0, n_shards=2, backend="process"
        ) as sharded:
            sharded.push(1, np.zeros(64), seq=0)
            with pytest.raises(DuplicateChunkError):
                sharded.push(1, np.zeros(64), seq=0)


class TestShardedWireIngestion:
    def test_wire_fed_sharded_fleet_matches_direct_push(self, fuzz_case, quantized_detector):
        if fuzz_case["case"]["seed"] != FUZZ_CASES[0]["seed"]:
            pytest.skip("wire ingestion parity runs on the first fuzz case only")
        from repro.serving import encode_chunk

        reference = ShardedFleet(quantized_detector, fuzz_case["fs"], n_shards=4).run(
            fuzz_case["streams"]
        )
        sharded = ShardedFleet(quantized_detector, fuzz_case["fs"], n_shards=4)
        # Interleave frames round-robin, the arrival order run() uses.
        iterators = {pid: iter(chunks) for pid, chunks in fuzz_case["streams"].items()}
        sequence = {pid: 0 for pid in iterators}
        while iterators:
            for pid in list(iterators):
                try:
                    chunk = next(iterators[pid])
                except StopIteration:
                    del iterators[pid]
                    continue
                sharded.push_wire(encode_chunk(pid, sequence[pid], fuzz_case["fs"], chunk))
                sequence[pid] += 1
        sharded.finish()
        decisions = sharded.drain()
        _assert_decisions_identical(reference, decisions, exact_scores=True)


def _feature_window(patient_id, start_s, features):
    from repro.serving import PendingWindow

    return PendingWindow(
        patient_id=patient_id,
        start_s=start_s,
        end_s=start_s + 180.0,
        n_beats=200,
        features=features,
    )


class TestShardedFleetApi:
    """Cheap (no-DSP) coverage of the sharded fleet's queue-facing surface."""

    def test_enqueue_routes_and_drain_merges_canonically(self, quantized_detector, feature_matrix):
        fleet = ShardedFleet(quantized_detector, 128.0, n_shards=3)
        windows = [
            _feature_window(pid, 180.0 * k, feature_matrix.X[(pid + k) % feature_matrix.X.shape[0]])
            for pid in range(9)
            for k in range(3)
        ]
        assert fleet.enqueue(windows) == len(windows)
        assert fleet.pending_count == len(windows)
        single = MonitorFleet(quantized_detector, 128.0)
        single.enqueue(windows)
        expected = sorted(single.drain(), key=decision_sort_key)
        assert fleet.drain() == expected
        assert fleet.pending_count == 0

    def test_policy_driven_maybe_drain_over_merged_stats(self, quantized_detector, feature_matrix):
        fleet = ShardedFleet(
            quantized_detector, 128.0, n_shards=3, drain_policy=PendingWindowPolicy(4)
        )
        # Three windows spread over the shards: below the threshold fleet-wide.
        fleet.enqueue([_feature_window(pid, 0.0, feature_matrix.X[pid]) for pid in range(3)])
        assert fleet.stats().pending_windows == 3
        assert fleet.maybe_drain() == []
        fleet.enqueue([_feature_window(3, 0.0, feature_matrix.X[3])])
        drained = fleet.maybe_drain()
        assert len(drained) == 4
        assert fleet.stats().pending_windows == 0

    def test_local_stats_track_the_authoritative_sweep(self, quantized_detector, feature_matrix):
        """Scheduling runs off sweep-free local counters; they must agree
        with the authoritative per-shard sweep at every step."""
        fleet = ShardedFleet(quantized_detector, 128.0, n_shards=3)
        for step in range(6):
            fleet.enqueue([_feature_window(step, 0.0, feature_matrix.X[step])])
            swept, local = fleet.stats(), fleet.local_stats()
            assert local.pending_windows == swept.pending_windows == step + 1
        fleet.push(40, np.zeros(64))
        assert fleet.local_stats().chunks_since_drain == 1
        fleet.drain()
        local = fleet.local_stats()
        assert local.pending_windows == 0 and local.chunks_since_drain == 0
        assert local.oldest_pending_age_s == 0.0

    def test_finish_single_patient_routes_to_its_shard(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, 128.0, n_shards=2)
        fleet.push(5, np.zeros(256))
        assert fleet.finish(5) == 0
        with pytest.raises(KeyError):
            fleet.finish(6)


class _PoisonableClassifier:
    """Raises on any batch containing the poison marker in feature 0."""

    POISON = 1e9

    def __init__(self, inner):
        self._inner = inner

    def scores_and_labels(self, X):
        if np.any(X[:, 0] == self.POISON):
            raise RuntimeError("poisoned batch")
        return self._inner.scores_and_labels(X)


class TestDrainExceptionSafety:
    """A failed drain must never lose windows or already-computed decisions."""

    def test_monitor_fleet_keeps_windows_when_classify_raises(
        self, quantized_detector, feature_matrix
    ):
        fleet = MonitorFleet(_PoisonableClassifier(quantized_detector), 128.0)
        poison = np.array(feature_matrix.X[0])
        poison[0] = _PoisonableClassifier.POISON
        fleet.enqueue(
            [_feature_window(0, 0.0, feature_matrix.X[0]), _feature_window(1, 0.0, poison)]
        )
        with pytest.raises(RuntimeError, match="poisoned"):
            fleet.drain()
        # Nothing was popped: the drain is retryable.
        assert fleet.pending_count == 2

    def test_sharded_drain_salvages_healthy_shards(self, quantized_detector, feature_matrix):
        from repro.serving import ShardDrainError

        fleet = ShardedFleet(_PoisonableClassifier(quantized_detector), 128.0, n_shards=4)
        good = [_feature_window(pid, 0.0, feature_matrix.X[pid]) for pid in range(8)]
        poison_features = np.array(feature_matrix.X[8])
        poison_features[0] = _PoisonableClassifier.POISON
        poisoned = _feature_window(8, 0.0, poison_features)
        fleet.enqueue(good + [poisoned])
        bad_shard = fleet.shard_of(8)
        with pytest.raises(ShardDrainError) as excinfo:
            fleet.drain()
        # The healthy shards' decisions were salvaged, canonically sorted...
        salvaged = excinfo.value.decisions
        healthy = [w for w in good if fleet.shard_of(w.patient_id) != bad_shard]
        assert sorted(d.patient_id for d in salvaged) == sorted(w.patient_id for w in healthy)
        assert set(excinfo.value.errors) == {bad_shard}
        # ...and the failed shard kept its windows queued for a retry.
        poisoned_shard_windows = 1 + sum(
            1 for w in good if fleet.shard_of(w.patient_id) == bad_shard
        )
        assert fleet.stats().pending_windows == poisoned_shard_windows
        assert fleet.local_stats().pending_windows == poisoned_shard_windows

    def test_failed_sharded_drain_keeps_policy_triggers_armed(
        self, quantized_detector, feature_matrix
    ):
        """A failed drain must not disarm the drain policy: the chunk counter
        and oldest-window clock survive, so the retry fires on the next poll."""
        from repro.serving import ShardDrainError

        fleet = ShardedFleet(
            _PoisonableClassifier(quantized_detector),
            128.0,
            n_shards=2,
            drain_policy=ChunkCountPolicy(1),
        )
        fleet.push(0, np.zeros(64))
        poison = np.array(feature_matrix.X[0])
        poison[0] = _PoisonableClassifier.POISON
        fleet.enqueue([_feature_window(0, 0.0, poison)])
        with pytest.raises(ShardDrainError):
            fleet.maybe_drain()
        assert fleet.local_stats().chunks_since_drain == 1
        assert fleet.should_drain()  # the retry is armed immediately


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(8), HashRing(8)
        ids = range(500)
        assert [a.shard_of(i) for i in ids] == [b.shard_of(i) for i in ids]

    def test_reasonable_balance(self):
        ring = HashRing(4, replicas=128)
        counts = np.bincount([ring.shard_of(i) for i in range(2000)], minlength=4)
        assert counts.min() > 0.12 * 2000
        assert counts.max() < 0.40 * 2000

    def test_resharding_moves_a_minority_of_patients(self):
        before, after = HashRing(4), HashRing(5)
        ids = range(2000)
        moved = sum(before.shard_of(i) != after.shard_of(i) for i in ids)
        # The consistent-hashing promise: ~1/5 of keys move, never a reshuffle
        # of everything (plain modulo hashing would move ~4/5).
        assert 0 < moved < 0.45 * 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)

    def test_sharded_fleet_routing_matches_ring(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, 128.0, n_shards=4)
        for pid in range(32):
            assert fleet.shard_of(pid) == fleet.ring.shard_of(pid)

    def test_unknown_backend_rejected(self, quantized_detector):
        with pytest.raises(ValueError, match="unknown backend"):
            ShardedFleet(quantized_detector, 128.0, backend="rayon")
