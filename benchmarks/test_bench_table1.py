"""Benchmark: regenerate Table I (kernel comparison).

Paper reference (Table I): linear Sp 75.6 / Se 82.3 / GM 72.9, quadratic
92.3 / 86.6 / 86.8, cubic 95.3 / 86.6 / 88.0, Gaussian 97.0 / 79.6 / 82.6.
The reproduction prints the same four rows measured on the synthetic cohort.
"""

from repro.experiments import table1_kernels

from benchmarks.conftest import run_once


def test_bench_table1_kernel_comparison(benchmark, experiment_data):
    rows = run_once(benchmark, table1_kernels.run, experiment_data.features)

    print()
    print(table1_kernels.format_table(rows))
    print("paper Table I reference:", table1_kernels.PAPER_TABLE1)

    by_kernel = {row.kernel: row for row in rows}
    assert set(by_kernel) == {"linear", "quadratic", "cubic", "gaussian"}
    # Every kernel must produce a usable detector on the synthetic cohort.
    for row in rows:
        assert 0.5 <= row.gm <= 1.0
    # The paper's chosen kernel (quadratic) must be in the same quality league
    # as the cubic one (the basis for choosing the cheaper of the two).
    assert abs(by_kernel["quadratic"].gm - by_kernel["cubic"].gm) < 0.08
