"""Async ingestion gateway: the push-based front door of the serving layer.

PR 1–2 left the fleets pull-driven — some caller hands chunks to
:meth:`~repro.serving.fleet.MonitorFleet.push` synchronously.  A deployed
monitor backend is the opposite shape: hundreds of body sensor nodes *push*
wire-format frames over flaky links, at their own rate, and the backend must
absorb bursts without corrupting per-patient DSP state or falling over.
:class:`IngestGateway` is that front door:

* **Transport** — an ``asyncio`` TCP server (:meth:`IngestGateway.serve`)
  accepts any number of node connections, each carrying a raw concatenation
  of :mod:`repro.serving.wire` frames.  A per-connection
  :class:`~repro.serving.wire.StreamDecoder` reassembles frames across
  arbitrary ``read()`` boundaries; a corrupt stream drops that connection
  only.  In-process producers use :meth:`IngestGateway.submit` (framed
  bytes) or :meth:`IngestGateway.submit_chunk` (decoded chunks) instead.
* **Per-patient backpressure** — every patient has a bounded frame queue
  (``queue_depth``) with a configurable overflow policy: ``"block"`` holds
  the producer coroutine (TCP flow control propagates to the node),
  ``"shed-oldest"`` drops the stalest queued frame, ``"reject"`` refuses the
  new one with :class:`BackpressureError`.  Policies are per-patient: one
  chatty node cannot evict another patient's frames.
* **Draining** — a single pump task moves queued frames into the fleet in
  global arrival order and polls the fleet's
  :class:`~repro.serving.scheduler.DrainPolicy` after every frame (and on an
  idle tick, so a :class:`~repro.serving.scheduler.LatencyPolicy` fires even
  when no new frames arrive).  The fleet's injectable clock keeps that
  testable under asyncio.
* **Parity** — the gateway preserves the serving layer's headline
  guarantee: per-patient frame order is FIFO end to end and the fleet's
  classifiers are batch-composition invariant (bit-exactly so on the
  fixed-point path), so for any chunking of the byte stream, any queue
  depth and any backpressure policy that drops no frames, the decisions are
  identical to the synchronous offline loop (``tests/test_serving_ingest.py``).
* **Accounting** — :meth:`IngestGateway.stats` returns a
  :class:`GatewayStats` snapshot in which every frame ever received is
  delivered, queued, shed, rejected or errored — nothing vanishes, which is
  what makes the lossy policies auditable.

Graceful shutdown (:meth:`IngestGateway.stop`) closes the server, lets the
open connections finish, drains every queue into the fleet, flushes the
monitors' partial windows and runs a final classify — then returns the full
canonically ordered decision list.

The pump runs the DSP synchronously on the event loop: one ~30 s ECG chunk
costs well under a millisecond of Pan–Tompkins + windowing, so handing it to
an executor would cost more in ping-pong than it buys.  At fleet scale the
classifier work is already batched by the drain policy.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Mapping, Optional

from repro.serving.fleet import decision_sort_key
from repro.serving.scheduler import DrainPolicy
from repro.serving.streaming import WindowDecision
from repro.serving.wire import (
    EcgChunk,
    SequenceError,
    StreamDecoder,
    WireFormatError,
    decode_chunk,
)

if TYPE_CHECKING:  # typing-only: autoscale also type-imports from here
    from repro.serving.autoscale import AutoscaleController

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressureError",
    "GatewayStats",
    "IngestGateway",
]

#: Recognised per-patient queue overflow policies.
BACKPRESSURE_POLICIES = ("block", "shed-oldest", "reject")


class BackpressureError(RuntimeError):
    """A frame was refused because its patient's queue is full (``"reject"``)."""

    def __init__(self, patient_id: int, queue_depth: int) -> None:
        super().__init__(
            "patient %d queue is full (%d frames)" % (patient_id, queue_depth)
        )
        self.patient_id = int(patient_id)
        self.queue_depth = int(queue_depth)


@dataclass(frozen=True)
class GatewayStats:
    """Point-in-time snapshot of the gateway's frame ledger and queues.

    The ledger is conservative: ``frames_received`` splits exactly into
    delivered + queued + shed + rejected + errored + gap-dropped
    (:attr:`fully_accounted`), so under a lossy backpressure policy the
    losses are *measured*, never implied.
    """

    #: Frames that entered the gateway (decoded from TCP or submitted).
    frames_received: int
    #: Frames handed to the fleet's streaming path.
    frames_delivered: int
    #: Frames dropped by the ``"shed-oldest"`` policy.
    frames_shed: int
    #: Frames refused by the ``"reject"`` policy.
    frames_rejected: int
    #: Frames the fleet refused (sequence violation, unknown patient, fs
    #: mismatch) — received but undeliverable.
    frames_errored: int
    #: Undecodable inputs: connections dropped for a corrupt byte stream,
    #: plus in-process submissions that failed to decode.
    wire_errors: int
    #: Raw bytes received — TCP reads and in-process frame submissions.
    bytes_received: int
    #: TCP connections accepted so far.
    connections: int
    #: Patients with a queue (every patient ever seen by the gateway).
    patients: int
    #: Frames currently waiting in per-patient queues.
    queued_frames: int
    #: Deepest any single patient queue has ever been.
    max_queue_depth: int
    #: Window decisions emitted so far.
    decisions: int
    #: Policy-triggered drains run by the pump (the final flush included).
    drains: int
    #: Seconds since the gateway started (0.0 before :meth:`IngestGateway.start`).
    uptime_s: float
    #: Live reshards completed through :meth:`IngestGateway.reshard`.
    reshards: int = 0
    #: Queued frames handed to another gateway during a cluster handoff
    #: (:meth:`IngestGateway.take_queued`) — they left this gateway's queues
    #: without being delivered here, and are accounted on the destination.
    frames_forwarded: int = 0
    #: Reshards initiated by the gateway's own autoscale controller (a
    #: subset of :attr:`reshards`).
    autoscale_actions: int = 0
    #: Window decisions per model label (the registry's per-backend
    #: ``describe()`` signature) — the observability half of a heterogeneous
    #: fleet: which design points are actually doing the classifying.  Empty
    #: when the fleet does not expose ``model_label_for``.
    drained_by_model: Mapping[str, int] = field(default_factory=dict)
    #: Lossy mode only: frames dropped at delivery because they fell behind a
    #: gap the stream already skipped past (stale datagrams — e.g. a replay
    #: of frames an earlier shed made obsolete).  A ledger outcome, distinct
    #: from ``frames_errored``: on a lossy transport these are expected loss,
    #: not faults.
    frames_gap_dropped: int = 0
    #: Lossy mode only: sequence gaps the fleet's monitors absorbed
    #: (``StreamingMonitor.note_gap`` calls), polled from the fleet.
    gaps_detected: int = 0
    #: Lossy mode only: grid windows abandoned by gap resets — the measured
    #: decision impact of all loss so far, polled from the fleet.
    windows_reset_by_gap: int = 0

    @property
    def frames_per_s(self) -> float:
        """Delivered-frame throughput over the gateway's lifetime."""
        return self.frames_delivered / self.uptime_s if self.uptime_s > 0.0 else 0.0

    @property
    def fully_accounted(self) -> bool:
        """Every received frame is delivered, queued, shed, rejected,
        errored, dropped behind a gap — or forwarded to another gateway of
        the cluster."""
        return self.frames_received == (
            self.frames_delivered
            + self.queued_frames
            + self.frames_shed
            + self.frames_rejected
            + self.frames_errored
            + self.frames_gap_dropped
            + self.frames_forwarded
        )


class _PatientQueue:
    """One patient's bounded FIFO of decoded chunks plus its space signal."""

    __slots__ = ("items", "space", "stale")

    def __init__(self) -> None:
        self.items: Deque[EcgChunk] = deque()
        self.space = asyncio.Event()
        self.space.set()
        #: Arrival-order markers in the gateway's global deque that no longer
        #: have a frame behind them (their frame was shed or forwarded).  The
        #: pump consumes this debt marker-by-marker; the compactor uses it to
        #: rebuild the order deque without scanning every queue.
        self.stale = 0


class IngestGateway:
    """Asyncio front door feeding a monitor fleet from pushed wire frames.

    Parameters
    ----------
    fleet:
        A :class:`~repro.serving.fleet.MonitorFleet` or
        :class:`~repro.serving.sharding.ShardedFleet`.  The gateway owns its
        streaming side while running: frames are pushed in arrival order and
        the fleet's drain policy is polled by the pump task.
    queue_depth:
        Per-patient queue bound (frames).  The knob that trades memory for
        burst absorption.
    backpressure:
        ``"block"`` (default), ``"shed-oldest"`` or ``"reject"`` — what
        happens to an arriving frame whose patient queue is full.
    drain_policy:
        Optional :class:`~repro.serving.scheduler.DrainPolicy` installed on
        the fleet (replacing its current one) for each serving period:
        :meth:`start` installs it, :meth:`stop` restores the fleet's
        previous policy, and a restarted gateway installs it again.  Without
        any policy, windows are classified only by the final flush.
    poll_interval_s:
        Idle tick of the pump task — the latency resolution of time-based
        drain policies when no frames are arriving.
    close_grace_s:
        How long :meth:`stop` waits for open connections to drain their
        in-flight bytes and hit EOF before force-closing them.  A push
        protocol has no close handshake, so an idle-but-open node link must
        not be allowed to park shutdown forever.
    enforce_seq:
        Whether delivered frames carry their wire sequence numbers into the
        fleet's strict per-patient policing.  Defaults to ``True`` under
        ``"block"`` (the gateway is lossless, so a gap really is a transport
        fault) and ``False`` under the lossy policies (a shed frame is a
        *policy decision* — the stream must keep flowing across the gap,
        which strict sequencing would forbid).  With ``lossy=True`` the
        default flips back to ``True``: sequence numbers are exactly how the
        fleet's monitors *detect* gaps, and their datagram mode absorbs them
        instead of rejecting the stream.  Override to force either.
    lossy:
        Datagram-transport mode, end to end.  Requires a fleet constructed
        with ``lossy=True`` (the monitors read ``seq`` as the chunk's
        absolute sample offset): frame loss — upstream, or shed here by
        backpressure — becomes a detected gap with a DSP reset instead of a
        stuck or rejected stream, stale frames are dropped and counted as
        :attr:`GatewayStats.frames_gap_dropped`, and
        :meth:`stats` folds the fleet's gap counters
        (:attr:`GatewayStats.gaps_detected` /
        :attr:`GatewayStats.windows_reset_by_gap`) into the snapshot.
    clock:
        Monotonic time source for :attr:`GatewayStats.uptime_s`; injectable
        for deterministic tests.
    autoscaler:
        Optional :class:`~repro.serving.autoscale.AutoscaleController` over
        the same fleet.  The pump loop then runs one control tick after each
        delivered frame and on every idle tick: the controller plans from
        the live :meth:`stats` snapshot, and a non-hold decision executes
        through the gateway's own quiescing :meth:`reshard` — so autonomous
        topology changes get exactly the zero-frame-loss treatment manual
        ones do.  Requires a fleet that supports live resharding.
    """

    def __init__(
        self,
        fleet,
        *,
        queue_depth: int = 64,
        backpressure: str = "block",
        drain_policy: Optional[DrainPolicy] = None,
        poll_interval_s: float = 0.05,
        close_grace_s: float = 1.0,
        enforce_seq: Optional[bool] = None,
        clock: Callable[[], float] = time.monotonic,
        autoscaler: Optional["AutoscaleController"] = None,
        lossy: bool = False,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                "unknown backpressure policy %r (choose from %s)"
                % (backpressure, BACKPRESSURE_POLICIES)
            )
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.lossy = bool(lossy)
        if self.lossy != bool(getattr(fleet, "lossy", False)):
            raise ValueError(
                "gateway lossy=%r but its fleet was built with lossy=%r — the"
                " transport mode decides how monitors read seq numbers, so"
                " the two must match" % (self.lossy, getattr(fleet, "lossy", False))
            )
        self.fleet = fleet
        self.queue_depth = int(queue_depth)
        self.backpressure = backpressure
        if enforce_seq is None:
            enforce_seq = self.lossy or backpressure == "block"
        self.enforce_seq = bool(enforce_seq)
        self._gateway_policy = drain_policy
        self._previous_policy: Optional[DrainPolicy] = None
        self._policy_installed = False
        self.poll_interval_s = float(poll_interval_s)
        self.close_grace_s = float(close_grace_s)
        self._clock = clock
        #: Decisions emitted so far, canonically sorted by :meth:`stop`.
        self.decisions: List[WindowDecision] = []
        self._queues: Dict[int, _PatientQueue] = {}
        self._order: Deque[int] = deque()
        self._data = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._closing_connections = False
        self._pump_task: Optional[asyncio.Task] = None
        self._closing = False
        self._started_t: Optional[float] = None
        self._frames_received = 0
        self._frames_delivered = 0
        self._frames_shed = 0
        self._frames_rejected = 0
        self._frames_errored = 0
        self._wire_errors = 0
        self._bytes_received = 0
        self._connections = 0
        self._queued = 0
        self._max_queue_depth = 0
        self._drains = 0
        self._drained_by_model: Dict[str, int] = {}
        #: Patients whose delivery is paused while their monitor state
        #: migrates between shards (see :meth:`reshard`).  Their frames keep
        #: arriving and queue under the normal backpressure policies.
        self._quiesced: set = set()
        self._frames_forwarded = 0
        self._frames_gap_dropped = 0
        #: Arrival-order markers whose frame was shed or forwarded, gateway
        #: wide (the sum of every queue's ``stale`` debt).  Bounded by
        #: :meth:`_compact_order`, so a long lossy run cannot grow the order
        #: deque without bound.
        self._stale_markers = 0
        self._reshards = 0
        if autoscaler is not None and (
            not hasattr(fleet, "preview_reshard") or not hasattr(fleet, "reshard")
        ):
            raise TypeError(
                "autoscaler needs a fleet that supports live resharding; "
                "%r does not" % type(fleet).__name__
            )
        self._autoscaler = autoscaler
        self._autoscale_actions = 0

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the pump task (idempotent).  :meth:`serve` calls this.

        Also the recovery point: if the pump died on a classifier fault, a
        new start() replaces it and delivery resumes.
        """
        if self._pump_task is None or self._pump_task.done():
            self._closing = False
            self._closing_connections = False
            # asyncio primitives bind to the loop that first awaits them and
            # raise "bound to a different event loop" if reused from another;
            # a new serving period may run under a fresh asyncio.run.
            # Replace only events left bound to a previous period's loop —
            # waiters parked on the current loop's events keep theirs.
            running = asyncio.get_running_loop()
            if getattr(self._data, "_loop", None) not in (None, running):
                self._data = asyncio.Event()
                if self._order:
                    self._data.set()
            for queue in self._queues.values():
                if getattr(queue.space, "_loop", None) not in (None, running):
                    queue.space = asyncio.Event()
                    if len(queue.items) < self.queue_depth:
                        queue.space.set()
            # (guarded so reviving a dead pump does not re-capture the
            # gateway's own installed policy as the "previous" one)
            if self._gateway_policy is not None and not self._policy_installed:
                self._previous_policy = self.fleet.drain_policy
                self.fleet.drain_policy = self._gateway_policy
                self._policy_installed = True
            if self._started_t is None:
                self._started_t = self._clock()
            self._pump_task = asyncio.get_running_loop().create_task(self._pump_loop())

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start the TCP front door; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the test- and example-friendly
        default.  Each accepted connection is an independent frame stream.
        """
        await self.start()
        if self._server is not None:
            raise RuntimeError("gateway is already serving")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> List[WindowDecision]:
        """Graceful shutdown: drain everything, flush windows, final classify.

        Stops accepting connections; gives the open ones ``close_grace_s``
        to drain their in-flight bytes and close from the node side, then
        force-disconnects the stragglers (an idle-but-open node link must
        not park shutdown forever); delivers every queued frame to the
        fleet, flushes the monitors' partial windows and runs one final
        drain.  Returns the complete decision list in canonical
        :func:`~repro.serving.fleet.decision_sort_key` order (also left on
        :attr:`decisions`).

        Fault-tolerant and retryable: if the pump task died on a classifier
        fault, its queued frames are still delivered here and the final
        drain reclassifies the fleet's surviving windows (a failed fleet
        drain keeps them queued), so a transient fault costs nothing once
        it clears; if the fault persists, the error propagates with the
        fleet's previous drain policy restored and every queue intact — a
        later :meth:`stop` retries cleanly.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            # A just-accepted connection's handler task registers itself in
            # _conn_tasks synchronously at its first step; one loop pass lets
            # not-yet-started handlers do that before we wait on them
            # (Server.wait_closed only waits for handlers on Python >= 3.12.1).
            await asyncio.sleep(0)
        if self._conn_tasks:
            # While the pump is alive, handlers blocked on a full queue keep
            # making progress through the grace window.
            _, stragglers = await asyncio.wait(
                list(self._conn_tasks), timeout=self.close_grace_s
            )
            if stragglers:
                self._closing_connections = True
                # Wake producers parked on block-policy backpressure: with a
                # dead pump nothing else ever would, and closing a transport
                # does not interrupt an Event wait (see submit_chunk, which
                # lets them through one-over-bound during forced close).
                for queue in self._queues.values():
                    queue.space.set()
                for writer in list(self._conn_writers):
                    writer.close()
        while self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._closing = True
        self._data.set()
        pump, self._pump_task = self._pump_task, None
        if pump is not None:
            try:
                await pump
            except Exception:
                # The pump died mid-run (e.g. a classifier fault in a policy
                # drain).  Its windows are still queued on the fleet and its
                # frames still queued here; the flush below delivers and
                # reclassifies them, which is the pump error handled.
                pass
        try:
            # Also the safety net for a gateway that was fed but never
            # started: no submitted frame is ever silently lost.
            while self._deliver_one():
                self._poll_drain()
            self.fleet.finish()
            final = self.fleet.drain()
        finally:
            # Restore only what start() actually installed — never clobber a
            # policy the caller set on the fleet themselves.
            if self._policy_installed:
                self.fleet.drain_policy = self._previous_policy
                self._policy_installed = False
        if final:
            self._drains += 1
        self._emit(final)
        self.decisions.sort(key=decision_sort_key)
        return list(self.decisions)

    async def __aenter__(self) -> "IngestGateway":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -------------------------------------------------------------- ingestion
    async def submit(self, frame: bytes) -> None:
        """In-process front door: ingest one complete framed chunk.

        Applies the same strict decoding and backpressure as the TCP path.
        Raises :class:`~repro.serving.wire.WireFormatError` on a bad frame
        (tallied in ``wire_errors``, exactly like a corrupt TCP stream) and
        :class:`BackpressureError` under the ``"reject"`` policy.
        """
        self._bytes_received += len(frame)
        try:
            chunk = decode_chunk(frame)
        except WireFormatError:
            self._wire_errors += 1
            raise
        await self.submit_chunk(chunk)

    async def submit_chunk(self, chunk: EcgChunk) -> None:
        """Ingest an already-decoded chunk (the zero-copy in-process path).

        ``frames_received`` is incremented only at the terminal outcome of
        the frame (queued / rejected / errored), never before an ``await`` —
        so the :attr:`GatewayStats.fully_accounted` invariant holds at every
        suspension point, including while a ``"block"``-policy producer is
        parked on a full queue.
        """
        if chunk.fs != self.fleet.fs:
            self._frames_received += 1
            self._frames_errored += 1
            raise WireFormatError(
                "chunk fs %g Hz does not match the fleet's %g Hz"
                % (chunk.fs, self.fleet.fs)
            )
        queue = self._queues.get(chunk.patient_id)
        if queue is None:
            queue = self._queues[chunk.patient_id] = _PatientQueue()
        if len(queue.items) >= self.queue_depth:
            if self.backpressure == "shed-oldest":
                queue.items.popleft()
                self._queued -= 1
                self._frames_shed += 1
                # The shed frame's arrival-order marker is now stale; record
                # the debt so the pump can consume it and the compactor can
                # rebuild the order deque without scanning every queue.
                queue.stale += 1
                self._stale_markers += 1
            elif self.backpressure == "reject":
                self._frames_received += 1
                self._frames_rejected += 1
                raise BackpressureError(chunk.patient_id, self.queue_depth)
            else:  # block: hold the producer until the pump makes room
                while len(queue.items) >= self.queue_depth:
                    if self._closing_connections:
                        # Forced shutdown: accept the frame one-over-bound
                        # rather than deadlock a handler the pump can no
                        # longer relieve; stop()'s flush delivers it.
                        break
                    queue.space.clear()
                    await queue.space.wait()
        queue.items.append(chunk)
        self._frames_received += 1
        self._queued += 1
        if len(queue.items) > self._max_queue_depth:
            self._max_queue_depth = len(queue.items)
        self._order.append(chunk.patient_id)
        self._maybe_compact_order()
        self._data.set()

    async def _handle_connection(self, reader, writer) -> None:
        """One node's connection: reassemble frames, apply backpressure."""
        self._connections += 1
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        decoder = StreamDecoder()
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionError, OSError):
                    # The link dropped (or stop() force-closed it): whatever
                    # frames completed before that are already submitted.
                    break
                if not data:
                    if not self._closing_connections:
                        # EOF the gateway did not force is the node's own
                        # close; a partial buffered frame is then truncation.
                        decoder.finish()
                    break
                self._bytes_received += len(data)
                for chunk in decoder.feed(data):
                    try:
                        await self.submit_chunk(chunk)
                    except BackpressureError:
                        pass  # recorded in frames_rejected; the stream goes on
        except WireFormatError:
            # Framing is gone (or the fs is wrong): this connection is dead,
            # but the gateway and every other node keep running.
            self._wire_errors += 1
        finally:
            self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------- resharding
    def plan_topology(self, n_shards: Optional[int] = None, weights=None):
        """Plan a fleet topology change (see :meth:`ShardedFleet.plan_topology
        <repro.serving.sharding.ShardedFleet.plan_topology>`) without
        touching the gateway or the fleet.  The plan's ``movers`` are the
        quiesce set :meth:`apply_topology` will freeze."""
        plan = getattr(self.fleet, "plan_topology", None)
        if plan is None or not hasattr(self.fleet, "apply_topology"):
            raise TypeError(
                "fleet %r does not support live resharding" % type(self.fleet).__name__
            )
        return plan(n_shards, weights=weights)

    async def apply_topology(self, plan) -> Dict[int, tuple]:
        """Execute a :class:`~repro.serving.sharding.TopologyPlan` live,
        zero frames lost.

        Exactly the patients the plan reassigns are *quiesced*: the pump
        skips their queues (their arrival-order markers stay put, so
        per-patient FIFO delivery resumes exactly where it paused) while
        their frames keep arriving and buffer under the normal backpressure
        policies — ``block`` holds their nodes via TCP flow control, the
        lossy policies shed/reject with the usual accounting.  Every other
        patient streams on undisturbed.  Once in-flight pump work has
        settled, the fleet migrates the frozen patients' monitor state
        (:meth:`ShardedFleet.apply_topology
        <repro.serving.sharding.ShardedFleet.apply_topology>`), delivery
        resumes, and the :class:`GatewayStats` ledger invariant holds at
        every suspension point throughout (quiesced frames are simply
        ``queued``).

        Returns the migrated ``{patient_id: (old_shard, new_shard)}``
        mapping.  Must not race :meth:`stop`: a shutdown flush that runs
        inside the quiesce window would leave the frozen patients' frames
        queued (never lost — a later :meth:`stop` delivers them).
        """
        if not hasattr(self.fleet, "apply_topology"):
            raise TypeError(
                "fleet %r does not support live resharding" % type(self.fleet).__name__
            )
        moving = set(plan.movers)
        self._quiesced |= moving
        try:
            # One loop pass: whatever delivery step the pump is mid-way
            # through completes before any monitor detaches; from here on it
            # can only deliver non-quiesced patients' frames.
            await asyncio.sleep(0)
            moved = self.fleet.apply_topology(plan)
        finally:
            self._quiesced -= moving
            if self._order:
                self._data.set()  # wake the pump for the thawed queues
        self._reshards += 1
        return moved

    async def reshard(self, n_shards: int) -> Dict[int, tuple]:
        """Live-reshard the fleet underneath the gateway, zero frames lost.

        A thin wrapper: ``apply_topology(plan_topology(n_shards))`` — see
        :meth:`apply_topology` for the quiesce protocol and guarantees.
        """
        return await self.apply_topology(self.plan_topology(n_shards))

    # ------------------------------------------------------------- federation
    def quiesce_patients(self, patient_ids) -> None:
        """Pause delivery for ``patient_ids`` (their frames keep queueing).

        The cluster handoff protocol freezes a migrating patient here before
        exporting their monitor state; matched by :meth:`resume_patients`.
        """
        self._quiesced |= {int(pid) for pid in patient_ids}

    def resume_patients(self, patient_ids) -> None:
        """Thaw patients frozen by :meth:`quiesce_patients`."""
        self._quiesced -= {int(pid) for pid in patient_ids}
        if self._order:
            self._data.set()  # wake the pump for the thawed queues

    def queued_frames_of(self, patient_id: int) -> List[EcgChunk]:
        """Peek (copy) a patient's queued, undelivered frames, oldest first."""
        queue = self._queues.get(int(patient_id))
        return list(queue.items) if queue is not None else []

    def take_queued(self, patient_id: int) -> List[EcgChunk]:
        """Remove and return a patient's queued frames, oldest first.

        The forwarding half of a cluster handoff: the frames leave this
        gateway's ledger as ``frames_forwarded`` (keeping
        :attr:`GatewayStats.fully_accounted` true) and must be re-submitted
        to the destination gateway, which counts them as received there.
        Synchronous — no suspension point splits the ledger update.
        """
        patient_id = int(patient_id)
        queue = self._queues.get(patient_id)
        if queue is None or not queue.items:
            return []
        taken = list(queue.items)
        queue.items.clear()
        self._queued -= len(taken)
        self._frames_forwarded += len(taken)
        # Every forwarded frame leaves a stale arrival-order marker behind,
        # exactly like a shed one.
        queue.stale += len(taken)
        self._stale_markers += len(taken)
        self._maybe_compact_order()
        queue.space.set()
        return taken

    def flush_queues(self) -> None:
        """Synchronously deliver every deliverable queued frame to the fleet.

        Quiesced patients' frames stay put.  Runs the drain-policy poll after
        each delivery, exactly like the pump, so policy semantics hold.
        """
        while self._deliver_one():
            self._poll_drain()

    def drain_now(self, finish: bool = False) -> List[WindowDecision]:
        """Deliver queued frames, then force one fleet drain, synchronously.

        With ``finish=True`` the monitors' partial windows are flushed first
        (end of stream).  Returns the decisions drained by this call; they
        are also appended to :attr:`decisions`.  The cluster uses this for
        race-free mid-schedule drains — no pump interleaving, no await.
        """
        self.flush_queues()
        if finish:
            self.fleet.finish()
        drained = self.fleet.drain()
        if drained:
            self._drains += 1
        self._emit(drained)
        return drained

    async def abort(self) -> None:
        """Crash-stop: cancel the pump and sever connections, flush nothing.

        Queued frames and fleet windows are left exactly where they are —
        this is the test seam for killing a cluster node mid-flight, and the
        cleanup path after :meth:`drain_now` has already harvested a node.
        Unlike :meth:`stop`, the fleet is never finished or drained, and the
        gateway's installed drain policy is still restored.
        """
        self._closing = True
        self._closing_connections = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Wake producers parked on block-policy backpressure: with the pump
        # about to die nothing else ever would (closing a transport does not
        # interrupt an Event wait).
        for queue in self._queues.values():
            queue.space.set()
        for writer in list(self._conn_writers):
            writer.close()
        while self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        pump, self._pump_task = self._pump_task, None
        if pump is not None:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):
                pass
        if self._policy_installed:
            self.fleet.drain_policy = self._previous_policy
            self._policy_installed = False

    # ------------------------------------------------------------------ pump
    def _maybe_compact_order(self) -> None:
        """Drop stale markers from the arrival-order deque once they dominate.

        Under sustained shed-oldest pressure (or repeated handoffs) every
        shed frame leaves one stale marker behind; without compaction the
        deque grows without bound and every pump scan wades through the
        corpses.  Compaction keeps, per patient, exactly one marker per
        queued frame — the leading markers, which are the ones that deliver
        — so delivery order is untouched.  Synchronous, and only called from
        synchronous sections, so it can never race the pump mid-delivery.
        """
        if self._stale_markers <= 64 or self._stale_markers <= self._queued:
            return
        live = {pid: len(queue.items) for pid, queue in self._queues.items()}
        compacted: Deque[int] = deque()
        for pid in self._order:
            remaining = live.get(pid, 0)
            if remaining:
                compacted.append(pid)
                live[pid] = remaining - 1
        self._order = compacted
        for queue in self._queues.values():
            queue.stale = 0
        self._stale_markers = 0

    def _deliver_one(self) -> bool:
        """Move the oldest deliverable queued frame into the fleet.

        Returns ``False`` when nothing is deliverable (idle, or every queued
        frame belongs to a quiesced patient).  Quiesced patients' markers are
        skipped *in place* — they keep their position at the front of the
        global arrival order, so delivery resumes in the exact order it
        paused when :meth:`reshard` thaws them.
        """
        held = []
        delivered = False
        try:
            while self._order:
                patient_id = self._order.popleft()
                if patient_id in self._quiesced:
                    held.append(patient_id)
                    continue
                queue = self._queues[patient_id]
                if not queue.items:
                    # Stale marker left behind by a shed or forwarded frame:
                    # consume its recorded debt and move on.
                    if queue.stale:
                        queue.stale -= 1
                        self._stale_markers -= 1
                    continue
                chunk = queue.items.popleft()
                self._queued -= 1
                if len(queue.items) < self.queue_depth:
                    queue.space.set()
                try:
                    self.fleet.push(
                        chunk.patient_id,
                        chunk.samples,
                        seq=chunk.seq if self.enforce_seq else None,
                    )
                except SequenceError:
                    if self.lossy:
                        # A stale datagram behind a gap the stream already
                        # skipped past (e.g. a cluster replay of frames an
                        # earlier shed made obsolete): expected loss on this
                        # transport, not a fault.
                        self._frames_gap_dropped += 1
                    else:
                        self._frames_errored += 1
                except KeyError:
                    self._frames_errored += 1
                else:
                    self._frames_delivered += 1
                delivered = True
                break
        finally:
            if held:
                self._order.extendleft(reversed(held))
        return delivered

    def _emit(self, decisions: List[WindowDecision]) -> None:
        self.decisions.extend(decisions)
        label_for = getattr(self.fleet, "model_label_for", None)
        if label_for is None or not decisions:
            return
        # Per-model drain counts: resolved *now*, against the registry state
        # that just classified these windows (a later hot-swap must not
        # retroactively re-attribute decisions).
        labels: Dict[int, str] = {}
        for decision in decisions:
            label = labels.get(decision.patient_id)
            if label is None:
                try:
                    label = label_for(decision.patient_id)
                except KeyError:  # pragma: no cover - registry raced empty
                    label = "<unmodelled>"
                labels[decision.patient_id] = label
            self._drained_by_model[label] = self._drained_by_model.get(label, 0) + 1

    def _poll_drain(self) -> None:
        decisions = self.fleet.maybe_drain()
        if decisions:
            self._drains += 1
            self._emit(decisions)

    async def _maybe_autoscale(self) -> None:
        """One autoscale control tick, if a controller is installed.

        Planning is synchronous (cheap local counters only); a non-hold
        decision executes through :meth:`reshard`, whose quiesce window is
        the only suspension — and by the pump-loop contract nothing else
        delivers frames while this coroutine is parked there.
        """
        if self._autoscaler is None or self._closing:
            return
        decision = self._autoscaler.plan(gateway_stats=self.stats())
        if decision.action == "hold":
            return
        await self.reshard(decision.to_shards)
        self._autoscaler.note_action(decision)
        self._autoscale_actions += 1

    async def _pump_loop(self) -> None:
        while True:
            if self._deliver_one():
                self._poll_drain()
                await self._maybe_autoscale()
                # Yield between frames so producers (and the shed/reject
                # bookkeeping they run) interleave with delivery.
                await asyncio.sleep(0)
                continue
            if self._closing:
                return
            self._data.clear()
            # Data raced in after the last delivery?  Markers that are all
            # quiesced do not count: re-looping on them would busy-spin the
            # event loop for the whole quiesce window of a live reshard.
            if any(pid not in self._quiesced for pid in self._order):
                self._data.set()
                continue
            timeout = (
                self.poll_interval_s
                if self.fleet.drain_policy is not None or self._autoscaler is not None
                else None
            )
            try:
                await asyncio.wait_for(self._data.wait(), timeout)
            except asyncio.TimeoutError:
                # Idle tick: give time-based drain policies (and the
                # autoscaler, which may owe a scale-down) their poll.
                self._poll_drain()
                await self._maybe_autoscale()

    # ----------------------------------------------------------------- stats
    def stats(self) -> GatewayStats:
        """Snapshot the frame ledger, queue state and throughput.

        In lossy mode the fleet's gap counters are polled into the snapshot
        (``gaps_detected`` / ``windows_reset_by_gap``); strict gateways skip
        the sweep — the counters are structurally zero there.
        """
        uptime = 0.0
        if self._started_t is not None:
            uptime = max(0.0, self._clock() - self._started_t)
        gaps_detected = 0
        windows_reset = 0
        if self.lossy:
            gap_stats = getattr(self.fleet, "gap_stats", None)
            if gap_stats is not None:
                gaps = gap_stats()
                gaps_detected = gaps.gaps
                windows_reset = gaps.windows_reset
        return GatewayStats(
            frames_received=self._frames_received,
            frames_delivered=self._frames_delivered,
            frames_shed=self._frames_shed,
            frames_rejected=self._frames_rejected,
            frames_errored=self._frames_errored,
            wire_errors=self._wire_errors,
            bytes_received=self._bytes_received,
            connections=self._connections,
            patients=len(self._queues),
            queued_frames=self._queued,
            max_queue_depth=self._max_queue_depth,
            decisions=len(self.decisions),
            drains=self._drains,
            uptime_s=uptime,
            reshards=self._reshards,
            frames_forwarded=self._frames_forwarded,
            autoscale_actions=self._autoscale_actions,
            drained_by_model=dict(self._drained_by_model),
            frames_gap_dropped=self._frames_gap_dropped,
            gaps_detected=gaps_detected,
            windows_reset_by_gap=windows_reset,
        )
