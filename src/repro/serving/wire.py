"""Versioned binary wire format for ECG chunks.

A body sensor node ships its raw ECG to the serving backend in framed,
self-describing chunks.  The frame is a fixed 32-byte little-endian header
followed by the raw sample payload:

======  ====  ==========  ====================================================
offset  size  type        field
======  ====  ==========  ====================================================
0       4     ``4s``      magic ``b"ECGC"``
4       1     ``u8``      format version (currently :data:`WIRE_VERSION` = 1)
5       1     ``u8``      payload dtype code (see :data:`DTYPE_CODES`)
6       2     ``u16``     reserved, must be zero
8       4     ``u32``     patient id
12      4     ``u32``     chunk sequence number (per patient, starts at 0)
16      4     ``u32``     sample count
20      8     ``f64``     sampling frequency (Hz)
28      4     ``u32``     CRC-32 of the whole frame (header with this field
                          zeroed, then payload)
32      --    payload     ``sample count`` samples of the declared dtype,
                          little endian
======  ====  ==========  ====================================================

The CRC covers the *header as well as* the payload: a flipped bit in
``patient_id`` would otherwise route perfectly valid samples to the wrong
patient's DSP state, which is corruption just as surely as a damaged sample.

:func:`encode_chunk` / :func:`decode_chunk` convert between frames and
:class:`EcgChunk` objects; :func:`iter_chunks` splits a concatenated byte
stream (a pipe, a file, a socket buffer) back into chunks.  Decoding is
strict: bad magic, unknown version or dtype, non-zero reserved bits, a
truncated payload, trailing garbage or a CRC mismatch all raise
:class:`WireFormatError` — a corrupted frame is never silently turned into
samples.

A *live* byte stream (a TCP socket) delivers frames in arbitrary pieces:
``read()`` may return half a header, three frames and a bit, or one byte.
:class:`StreamDecoder` is the incremental counterpart of :func:`iter_chunks`
for that case — feed it whatever bytes arrived and it yields every frame
that has become complete, buffering the partial tail for the next feed.  It
applies the same strict validation, and fails as *early* as the arrived
bytes allow (a bad magic needs four bytes, not a whole frame).

Delivery-order policing is separate from framing: a :class:`SequenceTracker`
validates per-patient sequence numbers and raises
:class:`DuplicateChunkError` for already-seen chunks and
:class:`OutOfOrderChunkError` for gaps or reordering, so a monitor's
carry-over DSP state can never be corrupted by a misdelivered chunk
(:meth:`repro.serving.streaming.StreamingMonitor.push` applies one tracker
per stream when sequence numbers are provided).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

__all__ = [
    "WIRE_VERSION",
    "WIRE_MAGIC",
    "HEADER",
    "DTYPE_CODES",
    "WireFormatError",
    "SequenceError",
    "DuplicateChunkError",
    "OutOfOrderChunkError",
    "EcgChunk",
    "encode_chunk",
    "decode_chunk",
    "decode_chunk_checked",
    "iter_chunks",
    "StreamDecoder",
    "SequenceTracker",
]

#: Current wire-format version; bumped on any incompatible layout change.
WIRE_VERSION = 1

#: Frame magic, first four bytes of every chunk.
WIRE_MAGIC = b"ECGC"

#: Little-endian header layout (see the module docstring for the field table).
HEADER = struct.Struct("<4sBBHIIIdI")

#: Supported payload dtypes.  Frames always carry little-endian samples; the
#: integer formats are for nodes that transmit raw ADC codes.
DTYPE_CODES: Dict[int, np.dtype] = {
    0: np.dtype("<f8"),
    1: np.dtype("<f4"),
    2: np.dtype("<i2"),
    3: np.dtype("<i4"),
}
_CODE_OF_DTYPE = {dtype: code for code, dtype in DTYPE_CODES.items()}


class WireFormatError(ValueError):
    """A frame could not be decoded (corruption, truncation, bad version)."""


class SequenceError(ValueError):
    """A chunk arrived with an unacceptable sequence number."""

    def __init__(self, message: str, *, seq: int, expected: int) -> None:
        super().__init__(message)
        self.seq = int(seq)
        self.expected = int(expected)

    def __reduce__(self) -> tuple[object, tuple[object, ...]]:
        # Keyword-only constructor args defeat the default exception pickling
        # (needed when a shard worker process reports a sequence violation).
        return (
            _rebuild_sequence_error,
            (type(self), self.args[0], self.seq, self.expected),
        )


def _rebuild_sequence_error(
    cls: type[SequenceError], message: str, seq: int, expected: int
) -> SequenceError:
    return cls(message, seq=seq, expected=expected)


class DuplicateChunkError(SequenceError):
    """The chunk's sequence number was already consumed."""


class OutOfOrderChunkError(SequenceError):
    """The chunk skips ahead of the next expected sequence number."""


@dataclass(frozen=True)
class EcgChunk:
    """One decoded ECG chunk: routing metadata plus the raw samples."""

    patient_id: int
    seq: int
    fs: float
    samples: np.ndarray

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def duration_s(self) -> float:
        return self.n_samples / self.fs


def encode_chunk(
    patient_id: int,
    seq: int,
    fs: float,
    samples: np.ndarray,
    dtype: np.dtype | str | None = None,
) -> bytes:
    """Frame one ECG chunk for the wire.

    Parameters
    ----------
    patient_id, seq:
        Routing metadata; both must fit an unsigned 32-bit field.  Sequence
        numbers are per patient and start at 0.
    fs:
        Sampling frequency of the payload (Hz).
    samples:
        1-D array of raw ECG samples.  Empty chunks are legal (a node may
        frame a pure keep-alive).
    dtype:
        Payload dtype; defaults to the dtype of ``samples`` when that is one
        of :data:`DTYPE_CODES`, else ``float64``.  Casting to an integer
        payload dtype is the caller's responsibility to scale sensibly.
    """
    patient_id = int(patient_id)
    seq = int(seq)
    if not 0 <= patient_id < 2**32:
        raise ValueError("patient_id %d does not fit the u32 header field" % patient_id)
    if not 0 <= seq < 2**32:
        raise ValueError("seq %d does not fit the u32 header field" % seq)
    fs = float(fs)
    if not (fs > 0.0 and np.isfinite(fs)):
        raise ValueError("fs must be positive and finite")
    samples = np.asarray(samples).ravel()
    if dtype is None:
        wire_dtype = samples.dtype.newbyteorder("<")
        if wire_dtype not in _CODE_OF_DTYPE:
            wire_dtype = np.dtype("<f8")
    else:
        wire_dtype = np.dtype(dtype).newbyteorder("<")
        if wire_dtype not in _CODE_OF_DTYPE:
            raise ValueError("unsupported wire dtype %r" % (dtype,))
    payload = np.ascontiguousarray(samples, dtype=wire_dtype).tobytes()
    bare_header = HEADER.pack(
        WIRE_MAGIC,
        WIRE_VERSION,
        _CODE_OF_DTYPE[wire_dtype],
        0,
        patient_id,
        seq,
        samples.size,
        fs,
        0,
    )
    crc = zlib.crc32(payload, zlib.crc32(bare_header))
    return bare_header[:-4] + struct.pack("<I", crc) + payload


def _parse_header(buf: bytes, offset: int) -> tuple[int, int, int, float, np.dtype, int]:
    """Validate the header at ``offset``; return its decoded fields.

    Requires ``HEADER.size`` bytes to be available.  Every check that does
    not need the payload happens here, so an incremental decoder can reject
    a corrupt frame as soon as its header has arrived.
    """
    magic, version, dtype_code, reserved, patient_id, seq, n_samples, fs, crc = (
        HEADER.unpack_from(buf, offset)
    )
    if magic != WIRE_MAGIC:
        raise WireFormatError("bad magic %r (expected %r)" % (magic, WIRE_MAGIC))
    if version != WIRE_VERSION:
        raise WireFormatError("unsupported wire version %d" % version)
    if reserved != 0:
        raise WireFormatError("reserved header bits set (%#06x)" % reserved)
    if dtype_code not in DTYPE_CODES:
        raise WireFormatError("unknown payload dtype code %d" % dtype_code)
    if not fs > 0.0 or not np.isfinite(fs):
        raise WireFormatError("invalid sampling frequency %r" % fs)
    return patient_id, seq, n_samples, fs, DTYPE_CODES[dtype_code], crc


def _decode_at(
    buf: bytes,
    offset: int,
    header: tuple[int, int, int, float, np.dtype, int] | None = None,
) -> tuple[EcgChunk, int]:
    """Decode the frame starting at ``offset``; return (chunk, next offset).

    ``header`` accepts the fields a caller already obtained from
    :func:`_parse_header` for this offset, so an incremental decoder does
    not validate every header twice.
    """
    if len(buf) - offset < HEADER.size:
        raise WireFormatError(
            "truncated header: %d bytes, need %d" % (len(buf) - offset, HEADER.size)
        )
    if header is None:
        header = _parse_header(buf, offset)
    patient_id, seq, n_samples, fs, dtype, crc = header
    start = offset + HEADER.size
    end = start + n_samples * dtype.itemsize
    if len(buf) < end:
        raise WireFormatError(
            "truncated payload: %d bytes, header declares %d samples (%d bytes)"
            % (len(buf) - start, n_samples, n_samples * dtype.itemsize)
        )
    payload = bytes(buf[start:end])
    bare_header = bytes(buf[offset : start - 4]) + b"\x00\x00\x00\x00"
    if zlib.crc32(payload, zlib.crc32(bare_header)) != crc:
        raise WireFormatError("frame CRC mismatch")
    samples = np.frombuffer(payload, dtype=dtype)
    return EcgChunk(patient_id=patient_id, seq=seq, fs=float(fs), samples=samples), end


def decode_chunk(buf: bytes) -> EcgChunk:
    """Decode exactly one frame; trailing bytes are an error.

    Raises :class:`WireFormatError` on any corruption (see the module
    docstring for the full rejection list).
    """
    chunk, end = _decode_at(buf, 0)
    if end != len(buf):
        raise WireFormatError("%d trailing bytes after the payload" % (len(buf) - end))
    return chunk


def decode_chunk_checked(buf: bytes, fs: float) -> EcgChunk:
    """Decode one frame and require its sampling frequency to be ``fs``.

    The shared ingestion path of the fleet classes: a frame whose payload was
    sampled at a different rate than the fleet's monitors would silently
    corrupt every DSP stage, so an fs mismatch is a :class:`WireFormatError`.
    """
    chunk = decode_chunk(buf)
    if chunk.fs != float(fs):
        raise WireFormatError(
            "chunk fs %g Hz does not match the fleet's %g Hz" % (chunk.fs, fs)
        )
    return chunk


def iter_chunks(buf: bytes) -> Iterator[EcgChunk]:
    """Split a concatenation of frames back into :class:`EcgChunk` objects."""
    offset = 0
    while offset < len(buf):
        chunk, offset = _decode_at(buf, offset)
        yield chunk


class StreamDecoder:
    """Incremental frame reassembly for live byte streams.

    :meth:`feed` accepts bytes exactly as they came off a socket — any
    split, down to one byte at a time — and returns the frames completed by
    that feed, buffering the partial tail internally.  The chunk sequence is
    invariant under the read chunking: for any partition of a byte stream,
    the concatenation of the ``feed`` results equals ``iter_chunks`` over
    the whole stream (property-tested in ``tests/test_serving_ingest.py``).

    Validation is as strict as :func:`decode_chunk` and as *early* as
    possible: a bad magic is rejected once four bytes arrived, any other
    header corruption once the 32-byte header arrived, and a CRC mismatch
    once the payload completed.  After a :class:`WireFormatError` the stream
    has lost framing and the decoder refuses further input — a transport
    should drop the connection, not resynchronise on guesswork.

    Corruption never costs the frames decoded *before* it: when a read
    completes valid frames and then hits garbage, :meth:`feed` returns the
    valid frames and defers the :class:`WireFormatError` to the next
    :meth:`feed` / :meth:`finish` call.  Delivered-frame counts therefore do
    not depend on where the socket happened to split the bytes — the same
    invariance the happy path guarantees.

    :meth:`finish` asserts clean end-of-stream: EOF in the middle of a
    buffered frame is a truncation, not a quiet success.

    ``max_frame_bytes`` bounds the payload a single header may declare
    (default 64 MiB — hours of ECG, orders of magnitude above any real
    chunk).  Without a bound, one flipped bit in the u32 sample-count field
    of an otherwise-valid header would make the decoder buffer gigabytes
    waiting for a payload that never completes; with it, the oversized
    declaration is itself corruption, rejected the moment the header
    arrives.
    """

    def __init__(self, max_frame_bytes: int = 1 << 26) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = int(max_frame_bytes)
        self._buf = bytearray()
        self._frames_decoded = 0
        self._corrupt = False
        self._deferred: WireFormatError | None = None

    def _raise_if_poisoned(self) -> None:
        if self._deferred is not None:
            exc, self._deferred = self._deferred, None
            raise exc
        if self._corrupt:
            raise WireFormatError("stream already failed to decode; drop the connection")

    @property
    def buffered_bytes(self) -> int:
        """Bytes of the partial frame waiting for more input."""
        return len(self._buf)

    @property
    def frames_decoded(self) -> int:
        """Total frames returned by :meth:`feed` so far."""
        return self._frames_decoded

    @property
    def at_frame_boundary(self) -> bool:
        """``True`` when no partial frame is buffered (EOF would be clean)."""
        return not self._buf and not self._corrupt

    def feed(self, data) -> list[EcgChunk]:
        """Consume one read's worth of bytes; return the frames it completed."""
        self._raise_if_poisoned()
        self._buf += data
        chunks: list[EcgChunk] = []
        offset = 0
        try:
            while True:
                available = len(self._buf) - offset
                if available == 0:
                    break
                if available < HEADER.size:
                    # Fail fast: a prefix that cannot open a valid header will
                    # never become one, however many bytes follow.
                    prefix = bytes(self._buf[offset : offset + min(available, 4)])
                    if prefix != WIRE_MAGIC[: len(prefix)]:
                        raise WireFormatError(
                            "bad magic %r (expected %r)" % (prefix, WIRE_MAGIC)
                        )
                    break
                header = _parse_header(self._buf, offset)
                payload_bytes = header[2] * header[4].itemsize  # n_samples * width
                if payload_bytes > self.max_frame_bytes:
                    raise WireFormatError(
                        "header declares a %d-byte payload, above the stream's"
                        " %d-byte frame bound" % (payload_bytes, self.max_frame_bytes)
                    )
                if available < HEADER.size + payload_bytes:
                    break
                chunk, offset = _decode_at(self._buf, offset, header=header)
                chunks.append(chunk)
        except WireFormatError as exc:
            self._corrupt = True
            if not chunks:
                raise
            # This read completed valid frames before the corruption: hand
            # them over and re-raise the error on the next feed()/finish(),
            # so what got delivered never depends on the read chunking.
            self._deferred = exc
        if offset:
            del self._buf[:offset]
        self._frames_decoded += len(chunks)
        return chunks

    def finish(self) -> None:
        """Declare end-of-stream; raise if a partial frame was left behind."""
        self._raise_if_poisoned()
        if self._buf:
            raise WireFormatError(
                "stream ended mid-frame (%d buffered bytes)" % len(self._buf)
            )


class SequenceTracker:
    """Per-stream sequence-number policing: exactly-once, in-order delivery.

    The tracker accepts only the next expected sequence number (starting at
    ``first_seq``).  Anything below it is a duplicate / stale retransmission
    (:class:`DuplicateChunkError`); anything above it is a gap or reordering
    (:class:`OutOfOrderChunkError`).  Chunks carry DSP state across their
    boundaries, so a skipped or repeated chunk would silently corrupt every
    later window — rejecting at ingestion is the only safe behaviour.

    **Recovery contract**: a rejection never moves the tracker.  However many
    duplicates or out-of-order chunks were refused, :attr:`expected` is
    exactly where the last *accepted* chunk left it, so the moment the
    transport retransmits the expected chunk the stream re-synchronises as
    if the rejected chunks had never arrived (``tests/test_serving_wire.py``
    pins this).
    """

    def __init__(self, first_seq: int = 0) -> None:
        self._first = int(first_seq)
        self._expected = int(first_seq)

    @property
    def expected(self) -> int:
        """The only sequence number :meth:`validate` will currently accept."""
        return self._expected

    @property
    def last_seq(self) -> int | None:
        """The last accepted sequence number (``None`` before the first)."""
        return self._expected - 1 if self._expected > self._first else None

    def snapshot(self) -> tuple[int, int]:
        """The tracker's position as a picklable ``(first_seq, expected)`` pair.

        Part of a patient's migratable monitor state: a tracker revived with
        :meth:`from_snapshot` enforces exactly the same next-expected chunk,
        so a live reshard can never open a duplicate/gap window in a stream.
        """
        return (self._first, self._expected)

    @classmethod
    def from_snapshot(cls, state: tuple[int, int]) -> "SequenceTracker":
        """Revive a tracker at a snapshotted position."""
        first, expected = state
        tracker = cls(first)
        if expected < first:
            raise ValueError(
                "expected seq %d precedes first seq %d" % (expected, first)
            )
        tracker._expected = int(expected)
        return tracker

    def validate(self, seq: int) -> int:
        """Accept ``seq`` or raise; returns the accepted sequence number."""
        seq = int(seq)
        if seq < self._expected:
            raise DuplicateChunkError(
                "duplicate chunk seq %d (next expected %d)" % (seq, self._expected),
                seq=seq,
                expected=self._expected,
            )
        if seq > self._expected:
            raise OutOfOrderChunkError(
                "out-of-order chunk seq %d (next expected %d)" % (seq, self._expected),
                seq=seq,
                expected=self._expected,
            )
        self._expected += 1
        return seq
