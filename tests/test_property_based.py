"""Property-based tests (hypothesis) on the core data structures and invariants."""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import ClassificationMetrics, geometric_mean
from repro.dsp.ar import ar_burg
from repro.dsp.psd import welch_psd
from repro.quant.fixed_point import int_bounds, quantize_to_int, scale_for_exponent, truncate_lsbs
from repro.quant.ranges import feature_range_exponents, global_range_exponent
from repro.serving import StreamingMonitor
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.signals.windows import WindowingParams
from repro.svm.kernels import GaussianKernel, LinearKernel, PolynomialKernel
from repro.svm.scaling import PowerOfTwoScaler, StandardScaler
from repro.svm.smo import SMOParams, smo_solve


# --------------------------------------------------------------------------
# Fixed-point helpers
# --------------------------------------------------------------------------

@given(
    values=hnp.arrays(np.float64, st.integers(1, 50), elements=st.floats(-1e6, 1e6)),
    exponent=st.integers(-8, 12),
    bits=st.integers(3, 24),
)
@settings(max_examples=60, deadline=None)
def test_quantized_values_fit_word_and_error_bounded(values, exponent, bits):
    scale = scale_for_exponent(exponent, bits)
    q = quantize_to_int(values, scale, bits)
    lo, hi = int_bounds(bits)
    assert np.all(q >= lo) and np.all(q <= hi)
    # Inside the representable range the rounding error is at most half an LSB.
    representable = (values >= lo * scale) & (values <= hi * scale)
    reconstructed = q.astype(float) * scale
    assert np.all(np.abs(reconstructed[representable] - values[representable]) <= scale / 2 + 1e-12)


@given(value=st.integers(-(2**60), 2**60), n_bits=st.integers(0, 20))
@settings(max_examples=80, deadline=None)
def test_truncation_is_floor_division(value, n_bits):
    assert truncate_lsbs(value, n_bits) == value // (1 << n_bits)


@given(
    sv=hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 8)),
        elements=st.floats(-1e3, 1e3, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_global_range_exponent_dominates_per_feature(sv):
    exponents = feature_range_exponents(sv)
    assert global_range_exponent(sv) == exponents.max()
    assert np.all(exponents >= -16) and np.all(exponents <= 15)


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------

@given(
    tp=st.integers(0, 500),
    tn=st.integers(0, 500),
    fp=st.integers(0, 500),
    fn=st.integers(0, 500),
)
@settings(max_examples=100, deadline=None)
def test_metrics_bounded_and_consistent(tp, tn, fp, fn):
    metrics = ClassificationMetrics(tp, tn, fp, fn)
    if metrics.sensitivity is not None:
        assert 0.0 <= metrics.sensitivity <= 1.0
    if metrics.specificity is not None:
        assert 0.0 <= metrics.specificity <= 1.0
    if metrics.gm is not None:
        assert metrics.gm <= max(metrics.sensitivity, metrics.specificity) + 1e-12
        assert metrics.gm >= 0.0
        assert metrics.gm == pytest.approx(geometric_mean(metrics.sensitivity, metrics.specificity))


@given(se=st.floats(0, 1), sp=st.floats(0, 1))
@settings(max_examples=100, deadline=None)
def test_geometric_mean_between_zero_and_max(se, sp):
    gm = geometric_mean(se, sp)
    assert 0.0 <= gm <= max(se, sp) + 1e-12
    assert gm >= min(se, sp) - 1e-12 or gm <= max(se, sp)


# --------------------------------------------------------------------------
# Kernels and scalers
# --------------------------------------------------------------------------

_points = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(1, 6)),
    elements=st.floats(-10, 10, allow_nan=False),
)


@given(a=_points)
@settings(max_examples=40, deadline=None)
def test_kernel_gram_matrices_symmetric_psd(a):
    for kernel in (LinearKernel(), PolynomialKernel(degree=2), GaussianKernel()):
        gram = kernel(a, a)
        assert np.allclose(gram, gram.T, atol=1e-8)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() >= -1e-6 * max(1.0, abs(eigenvalues.max()))


@given(a=_points)
@settings(max_examples=40, deadline=None)
def test_kernel_diagonal_matches_gram(a):
    for kernel in (LinearKernel(), PolynomialKernel(degree=2), GaussianKernel(gamma=0.5)):
        assert np.allclose(kernel.diagonal(a), np.diag(kernel(a, a)), atol=1e-9)


@given(
    X=hnp.arrays(
        np.float64,
        st.tuples(st.integers(3, 40), st.integers(1, 6)),
        elements=st.floats(-1e4, 1e4, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_standard_scaler_roundtrip_and_unit_variance(X):
    scaler = StandardScaler().fit(X)
    scaled = scaler.transform(X)
    assert np.allclose(scaler.inverse_transform(scaled), X, atol=1e-6 * (1 + np.abs(X).max()))
    std = scaled.std(axis=0)
    informative = X.std(axis=0) > 1e-9
    assert np.allclose(std[informative], 1.0, atol=1e-6)


@given(
    X=hnp.arrays(
        np.float64,
        st.tuples(st.integers(3, 40), st.integers(1, 6)),
        elements=st.floats(-1e4, 1e4, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_pow2_scaler_uses_power_of_two_factors(X):
    scaler = PowerOfTwoScaler().fit(X)
    exponents = np.log2(scaler.scale_)
    assert np.allclose(exponents, np.round(exponents))
    assert np.allclose(scaler.mean_, 0.0)


# --------------------------------------------------------------------------
# SMO dual feasibility
# --------------------------------------------------------------------------

@given(
    seed=st.integers(0, 10_000),
    n_per_class=st.integers(4, 20),
    c=st.floats(0.1, 10.0),
    separation=st.floats(0.0, 4.0),
)
@settings(max_examples=25, deadline=None)
def test_smo_solution_always_dual_feasible(seed, n_per_class, c, separation):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [
            rng.normal(loc=separation / 2, scale=1.0, size=(n_per_class, 3)),
            rng.normal(loc=-separation / 2, scale=1.0, size=(n_per_class, 3)),
        ]
    )
    y = np.concatenate([np.ones(n_per_class), -np.ones(n_per_class)])
    result = smo_solve(X @ X.T, y, SMOParams(c_positive=c, c_negative=c, max_iter=20_000))
    assert np.all(result.alpha >= -1e-9)
    assert np.all(result.alpha <= c + 1e-6)
    assert abs(np.dot(result.alpha, y)) < 1e-4 * max(1.0, c)


# --------------------------------------------------------------------------
# DSP invariants
# --------------------------------------------------------------------------

@given(
    seed=st.integers(0, 1000),
    order=st.integers(1, 8),
    n=st.integers(64, 400),
)
@settings(max_examples=30, deadline=None)
def test_burg_noise_variance_non_negative_and_bounded(seed, order, n):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    coeffs, variance = ar_burg(x, order)
    assert coeffs.shape == (order,)
    assert variance >= 0.0
    # The prediction-error variance can never exceed the signal power.
    assert variance <= np.dot(x, x) / n + 1e-9


@given(seed=st.integers(0, 1000), n=st.integers(64, 1024))
@settings(max_examples=30, deadline=None)
def test_welch_psd_non_negative(seed, n):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    freqs, psd = welch_psd(x, fs=4.0, segment_length=min(128, n))
    assert np.all(psd >= 0.0)
    assert freqs[0] == 0.0
    # The last bin sits at (or just below, for odd segment lengths) Nyquist.
    assert 1.8 <= freqs[-1] <= 2.0 + 1e-9


# --------------------------------------------------------------------------
# Streaming-monitor chunk-size invariance
# --------------------------------------------------------------------------

#: Windowing used by the invariance property: short windows so a ~15-minute
#: trace yields several of them, with the beat floor low enough that every
#: window is featurised.
_INVARIANCE_WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


@lru_cache(maxsize=1)
def _invariance_trace():
    """One synthetic single-patient raw-ECG trace, rendered once per session."""
    cohort = generate_cohort(
        CohortParams(
            n_patients=1,
            n_sessions=1,
            session_duration_s=900.0,
            total_seizures=1,
            seed=33,
        )
    )
    recording = cohort.recordings[0]
    ecg = synthesize_ecg(
        recording.beat_times_s,
        recording.duration_s,
        recording.respiration,
        np.random.default_rng(33),
    )
    return ecg.ecg_mv, ecg.fs


def _stream_in_chunks(trace, fs, chunk_sizes):
    """Run the full monitor path over ``trace`` cut at the given sizes."""
    monitor = StreamingMonitor(0, fs, windowing=_INVARIANCE_WINDOWING)
    pending = []
    lo = 0
    for size in chunk_sizes:
        pending.extend(monitor.push(trace[lo : lo + size]))
        lo += size
        if lo >= trace.size:
            break
    while lo < trace.size:
        pending.extend(monitor.push(trace[lo : lo + 16384]))
        lo += 16384
    pending.extend(monitor.finish())
    return pending


@lru_cache(maxsize=1)
def _invariance_reference():
    """The one-shot (single-chunk) run every hypothesis example compares to."""
    trace, fs = _invariance_trace()
    return _stream_in_chunks(trace, fs, [trace.size])


@given(sizes=st.lists(st.integers(0, 20000), min_size=1, max_size=40))
@settings(max_examples=10, deadline=None)
def test_streaming_monitor_chunk_size_invariance(sizes):
    """For ANY partition of a trace into chunks, the emitted PendingWindows —
    boundaries, beat counts and full 53-entry feature vectors — are identical.

    This is the end-to-end extension of the per-stage invariance tests (the
    streaming peak detector's and windower's): it pins down that no carry-over
    state anywhere in the detector → windower → extractor chain depends on
    where the transport happened to cut the signal.
    """
    trace, fs = _invariance_trace()
    reference = _invariance_reference()
    assert len(reference) >= 10
    assert all(window.usable for window in reference)

    chunked = _stream_in_chunks(trace, fs, sizes)
    assert len(chunked) == len(reference)
    for expected, got in zip(reference, chunked):
        assert got.patient_id == expected.patient_id
        assert got.start_s == expected.start_s
        assert got.end_s == expected.end_s
        assert got.n_beats == expected.n_beats
        assert got.usable == expected.usable
        if expected.features is None:
            assert got.features is None
        else:
            assert np.array_equal(got.features, expected.features)
