"""Streaming / batched inference engine for fleets of wearable monitors.

This package turns the one-shot reproduction pipeline into the *online*
monitor of Figure 1 of the paper.  The per-patient signal path mirrors the
figure stage by stage:

    raw ECG chunks
        │  :class:`repro.dsp.peaks.StreamingPeakDetector`
        │  (band-pass → derivative → square → integrate → adaptive threshold,
        │   with carry-over state across chunk boundaries)
        ▼
    R-peak / R-amplitude stream
        │  :class:`repro.signals.windows.StreamingWindower`
        │  (incremental three-minute window assembly)
        ▼
    per-window beat data
        │  :meth:`repro.features.extractor.FeatureExtractor.extract_beats`
        │  (HRV + Lorenz + AR-of-EDR + PSD-of-EDR — the 53 features)
        ▼
    feature vectors
        │  :class:`~repro.svm.model.SVMModel` /
        │  :class:`~repro.quant.quantized_model.QuantizedSVM`
        │  (quadratic-kernel decision, float or bit-accurate fixed point)
        ▼
    per-window alarm decisions

Two entry points:

* :class:`~repro.serving.streaming.StreamingMonitor` — one patient, one
  ECG stream, chunk in / decisions out;
* :class:`~repro.serving.fleet.MonitorFleet` — many concurrent patients;
  pending windows from all monitors are classified in a *single* vectorised
  SVM call per drain, which is what lets one server keep up with a fleet of
  body sensor nodes (see ``benchmarks/test_bench_serving.py``).
"""

from repro.serving.streaming import PendingWindow, StreamingMonitor, WindowDecision, classify_windows
from repro.serving.fleet import MonitorFleet

__all__ = [
    "PendingWindow",
    "WindowDecision",
    "StreamingMonitor",
    "MonitorFleet",
    "classify_windows",
]
