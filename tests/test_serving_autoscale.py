"""Autoscaling control plane: detectors, weighted rings, controller, soak.

Three layers of guarantees:

* **Detector units** — the half-life :class:`~repro.serving.autoscale.Ewma`
  (time-based smoothing, gap-aware reset) and one-sided
  :class:`~repro.serving.autoscale.Cusum` (persistent small drifts alarm,
  zero-mean noise does not) behave as the control law assumes.
* **Decision logic** — with an injectable clock and a real
  :class:`~repro.serving.sharding.ShardedFleet`, the controller scales up
  under sustained pressure, holds inside the hysteresis band and during
  cooldown, scales down only with headroom, prices actions with
  ``preview_reshard`` (cost veto, waived in emergencies), and respects the
  shard-count bounds.  Weighted rings route proportionally and keep the
  minimal-movement property.
* **Convergence soak** — thousands of simulated patients under bursty
  diurnal load: the controller grows the fleet through the peak, shrinks it
  through the trough, never thrashes (bounded action count), and the
  decisions stay bit-identical to a never-autoscaled single fleet — the
  churn-parity guarantee extended to *autonomous* churn.  A hypothesis fuzz
  randomises the load schedule and ring weights; the async gateway soak
  pins the :class:`~repro.serving.ingest.GatewayStats` ledger through every
  autonomous reshard.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    AutoscaleConfig,
    AutoscaleController,
    Cusum,
    Ewma,
    HashRing,
    IngestGateway,
    MonitorFleet,
    PendingWindow,
    ShardedFleet,
    decision_sort_key,
    encode_chunk,
)
from repro.signals.windows import WindowingParams

FS = 64.0
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


class FakeClock:
    """A controllable monotonic clock for deterministic controller tests."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += float(dt)
        return self.now


def _window(patient_id, index, features):
    start = index * 60.0
    return PendingWindow(
        patient_id=patient_id,
        start_s=start,
        end_s=start + 60.0,
        n_beats=80,
        features=features,
    )


class _WindowSource:
    """Deterministic feature-window generator over a patient population."""

    def __init__(self, feature_matrix, n_patients, seed=0):
        self.features = feature_matrix.X
        self.n_patients = int(n_patients)
        self.rng = np.random.default_rng(seed)
        self.counters = {}

    def batch(self, count):
        windows = []
        for _ in range(count):
            pid = int(self.rng.integers(0, self.n_patients))
            index = self.counters.get(pid, 0)
            self.counters[pid] = index + 1
            feats = self.features[(pid + index) % self.features.shape[0]]
            windows.append(_window(pid, index, feats))
        return windows


# ---------------------------------------------------------------------------
# Detector units
# ---------------------------------------------------------------------------


class TestEwma:
    def test_first_sample_seeds(self):
        ewma = Ewma(half_life_s=10.0)
        assert ewma.value is None
        assert ewma.update(42.0, now=0.0) == 42.0

    def test_half_life_is_time_based(self):
        # One half-life later the value has moved exactly half way, whether
        # it took one sample or ten.
        one_step = Ewma(half_life_s=10.0)
        one_step.update(0.0, now=0.0)
        one_step.update(100.0, now=10.0)
        many_steps = Ewma(half_life_s=10.0)
        many_steps.update(0.0, now=0.0)
        for k in range(1, 11):
            many_steps.update(100.0, now=k * 1.0)
        assert one_step.value == pytest.approx(50.0)
        assert many_steps.value == pytest.approx(50.0)

    def test_gap_reset_reseeds(self):
        ewma = Ewma(half_life_s=10.0, gap_reset_s=60.0)
        ewma.update(1000.0, now=0.0)
        # A sample after a long gap must re-seed, not blend with stale state.
        assert ewma.update(5.0, now=1000.0) == 5.0

    def test_reset_and_validation(self):
        ewma = Ewma(half_life_s=1.0)
        ewma.update(3.0, now=0.0)
        ewma.reset()
        assert ewma.value is None
        with pytest.raises(ValueError):
            Ewma(half_life_s=0.0)
        with pytest.raises(ValueError):
            Ewma(half_life_s=1.0, gap_reset_s=0.0)


class TestCusum:
    def test_persistent_small_drift_alarms(self):
        cusum = Cusum(drift=0.5, threshold=5.0)
        # A +0.75 residual is inside what a plain threshold at 1.0 ignores,
        # but it accumulates 0.25 evidence per sample: alarm at sample 20.
        for _ in range(19):
            cusum.update(0.75)
            assert not cusum.alarm_high
        cusum.update(0.75)
        assert cusum.alarm_high
        assert not cusum.alarm_low

    def test_zero_mean_noise_never_alarms(self):
        cusum = Cusum(drift=0.5, threshold=5.0)
        rng = np.random.default_rng(11)
        for residual in rng.normal(0.0, 0.3, size=2000):
            cusum.update(float(residual))
        assert not cusum.alarm_high and not cusum.alarm_low

    def test_saturation_bounds_the_recovery_time(self):
        cusum = Cusum(drift=0.5, threshold=5.0)
        # A huge shift running for a long time must not bank unbounded
        # evidence: the sums saturate at 2x threshold.
        for _ in range(1000):
            cusum.update(50.0)
        assert cusum.pos == 10.0
        assert cusum.alarm_high
        # De-alarm within ~threshold/drift on-target samples, however long
        # (and however hard) the shift ran before it ended.
        for _ in range(11):
            cusum.update(0.0)
        assert not cusum.alarm_high

    def test_low_side_mirrors_high_side(self):
        cusum = Cusum(drift=0.25, threshold=2.0)
        for _ in range(10):
            cusum.update(-1.0)
        assert cusum.alarm_low and not cusum.alarm_high
        cusum.reset()
        assert cusum.pos == cusum.neg == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Cusum(drift=-0.1)
        with pytest.raises(ValueError):
            Cusum(threshold=0.0)


class TestAutoscaleConfig:
    def test_defaults_validate(self):
        AutoscaleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_shards=0),
            dict(max_shards=2, min_shards=4),
            dict(low_pending_per_shard=300.0),  # above high
            dict(low_pending_per_shard=0.0),
            dict(high_age_s=-1.0),
            dict(cooldown_s=-1.0),
            dict(ewma_half_life_s=0.0),
            dict(gap_reset_s=0.0),
            dict(shed_tolerance=-0.5),
            dict(max_move_fraction=0.0),
            dict(max_move_fraction=1.5),
            dict(down_headroom=0.0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kwargs)


# ---------------------------------------------------------------------------
# Weighted rings
# ---------------------------------------------------------------------------


class TestWeightedHashRing:
    def test_weight_one_ring_is_the_unweighted_ring(self):
        ids = range(1000)
        plain, weighted = HashRing(4), HashRing(4, weights=[1.0] * 4)
        assert [plain.shard_of(i) for i in ids] == [weighted.shard_of(i) for i in ids]

    def test_weights_route_proportional_key_ranges(self):
        ring = HashRing(2, weights=[2.0, 1.0])
        counts = np.bincount([ring.shard_of(i) for i in range(3000)], minlength=2)
        # Shard 0 owns ~2/3 of the patients; allow hashing variance.
        assert counts[0] > 1.5 * counts[1]

    def test_growth_of_a_weighted_ring_stays_minimal(self):
        ids = range(2000)
        ring = HashRing(3, weights=[1.0, 2.0, 1.0])
        new_ring, moved = ring.with_n_shards(4, ids, weights=[1.0, 2.0, 1.0, 1.0])
        assert 0 < len(moved) < 0.5 * 2000
        # Survivors' weights are unchanged, so every mover lands on the new
        # shard — never a reshuffle between survivors.
        assert all(new == 3 for _, new in moved.values())
        for pid in ids:
            if pid not in moved:
                assert ring.shard_of(pid) == new_ring.shard_of(pid)

    def test_reweighting_one_shard_moves_patients_one_way(self):
        ids = range(2000)
        ring = HashRing(2)
        _, moved = ring.with_n_shards(2, ids, weights=[1.0, 3.0])
        # Shard 0's points are untouched; only shard 1's key range grew.
        assert moved
        assert all((old, new) == (0, 1) for old, new in moved.values())

    def test_resized_weights_truncates_and_extends(self):
        ring = HashRing(3, weights=[2.0, 1.0, 0.5])
        assert ring.resized_weights(2) == (2.0, 1.0)
        assert ring.resized_weights(5) == (2.0, 1.0, 0.5, 1.0, 1.0)
        assert ring.resized_weights(2, weights=[1.0, 4.0]) == (1.0, 4.0)
        with pytest.raises(ValueError, match="entries"):
            ring.resized_weights(2, weights=[1.0])

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="entries"):
            HashRing(2, weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            HashRing(2, weights=[1.0, 0.0])

    def test_fleet_threads_weights_through(self, quantized_detector):
        fleet = ShardedFleet(
            quantized_detector, FS, n_shards=2, shard_weights=[2.0, 1.0]
        )
        assert fleet.ring.weights == (2.0, 1.0)
        fleet.add_shard(weight=4.0)
        assert fleet.n_shards == 3
        assert fleet.ring.weights == (2.0, 1.0, 4.0)

    def test_same_count_reweight_is_a_real_reshard(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
        for pid in range(32):
            fleet.push(pid, np.zeros(256), seq=0)
        assert fleet.reshard(2) == {}  # same count, same weights: no-op
        preview = fleet.preview_reshard(2, weights=[1.0, 3.0])
        assert preview  # a reweight moves patients without changing count
        assert fleet.reshard(2, weights=[1.0, 3.0]) == preview
        assert fleet.ring.weights == (1.0, 3.0)
        for pid in range(32):
            assert fleet.shard_of(pid) == fleet.ring.shard_of(pid)
            fleet.push(pid, np.zeros(256), seq=1)  # monitors survived


# ---------------------------------------------------------------------------
# Controller decisions
# ---------------------------------------------------------------------------


def _controller(fleet, clock, **overrides):
    defaults = dict(
        min_shards=1,
        max_shards=8,
        high_pending_per_shard=10.0,
        low_pending_per_shard=2.0,
        high_age_s=100.0,
        cooldown_s=0.0,
        ewma_half_life_s=10.0,
        gap_reset_s=10_000.0,
        cusum_threshold=50.0,  # keep unit tests EWMA-driven unless asked
    )
    defaults.update(overrides)
    return AutoscaleController(fleet, AutoscaleConfig(**defaults), clock=clock)


class TestControllerDecisions:
    def _fleet(self, detector, clock, n_shards=2):
        return ShardedFleet(
            detector, FS, n_shards=n_shards, windowing=WINDOWING, clock=clock
        )

    def test_requires_a_reshardable_fleet(self, quantized_detector):
        with pytest.raises(TypeError, match="live resharding"):
            AutoscaleController(MonitorFleet(quantized_detector, FS))

    def test_scales_up_on_sustained_pressure(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock)
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(100))
        decision = controller.step(now=clock.advance(1.0))
        assert decision.action == "up"
        assert decision.reason == "ewma>high"
        assert decision.to_shards == 3 and fleet.n_shards == 3
        assert controller.actions == [decision]
        assert decision.moved > 0  # the cost model priced a real migration

    def test_holds_inside_the_hysteresis_band(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock)
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(10))  # 5 per shard
        decision = controller.step(now=clock.advance(1.0))
        assert decision.action == "hold" and decision.reason == "in-band"
        assert fleet.n_shards == 2 and controller.actions == []

    def test_cooldown_blocks_consecutive_actions(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock, cooldown_s=60.0)
        source = _WindowSource(feature_matrix, 64)
        fleet.enqueue(source.batch(100))
        assert controller.step(now=clock.advance(1.0)).action == "up"
        fleet.enqueue(source.batch(100))
        held = controller.step(now=clock.advance(1.0))
        assert held.action == "hold" and held.reason == "cooldown"
        assert fleet.n_shards == 3
        # Once the cooldown lapses the pressure acts again.
        assert controller.step(now=clock.advance(120.0)).action == "up"

    def test_scales_down_only_with_headroom(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock, n_shards=4)
        for pid in range(16):
            fleet.push(pid, np.zeros(256), seq=0)
        controller = _controller(fleet, clock)
        decision = controller.step(now=clock.advance(1.0))  # queue is empty
        assert decision.action == "down" and decision.reason == "ewma<low"
        assert fleet.n_shards == 3
        # With load just under the low band but no post-shrink headroom the
        # controller holds instead of bouncing back up.
        tight = _controller(
            fleet, clock, low_pending_per_shard=9.0, down_headroom=0.5
        )
        fleet.enqueue(_WindowSource(feature_matrix, 16).batch(24))  # 8 per shard
        held = tight.plan(now=clock.advance(1.0))
        assert held.action == "hold" and held.reason == "no-down-headroom"

    def test_respects_shard_count_bounds(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock, n_shards=2)
        controller = _controller(fleet, clock, min_shards=2, max_shards=2)
        decision = controller.plan(now=clock.advance(1.0))
        assert decision.action == "hold" and decision.reason == "at-min-shards"
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(100))
        decision = controller.plan(now=clock.advance(100.0))  # let the EWMA catch up
        assert decision.action == "hold" and decision.reason == "at-max-shards"

    def test_cost_veto_and_emergency_override(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(
            fleet, clock, max_move_fraction=0.001, high_age_s=30.0
        )
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(100))
        vetoed = controller.plan(now=clock.advance(1.0))
        assert vetoed.action == "hold" and vetoed.reason == "cost-veto"
        assert fleet.n_shards == 2
        # Let the backlog age past the latency bound: relief now outranks
        # migration cost and the veto is waived.
        emergency = controller.step(now=clock.advance(60.0))
        assert emergency.action == "up" and emergency.reason == "age>=high"
        assert fleet.n_shards == 3

    def test_plan_never_mutates_the_fleet(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock)
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(100))
        decision = controller.plan(now=clock.advance(1.0))
        assert decision.action == "up"
        assert fleet.n_shards == 2 and controller.actions == []

    def test_cusum_catches_drift_below_the_band_edge(
        self, quantized_detector, feature_matrix
    ):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        # Pressure parks at 8/shard: under high=10, above the band midpoint
        # of 6 — invisible to the EWMA threshold, cumulative to the CUSUM.
        controller = _controller(fleet, clock, cusum_threshold=4.0, cusum_drift=0.25)
        source = _WindowSource(feature_matrix, 64)
        decision = None
        for _ in range(30):
            fleet.enqueue(source.batch(16))
            decision = controller.step(now=clock.advance(10.0))
            if decision.action != "hold":
                break
            fleet.drain()
        assert decision.action == "up" and decision.reason == "cusum-high"

    def test_gap_reset_drops_stale_cusum_evidence(
        self, quantized_detector, feature_matrix
    ):
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock, gap_reset_s=100.0, cusum_drift=0.25)
        source = _WindowSource(feature_matrix, 64)
        for _ in range(10):
            fleet.enqueue(source.batch(16))
            controller.observe(now=clock.advance(10.0))
            fleet.drain()
        assert controller.cusum.pos > 0.0
        # Nobody sampled for longer than gap_reset_s: the accumulated
        # evidence describes an unwatched regime and must not carry over.
        controller.observe(now=clock.advance(500.0))
        assert controller.cusum.pos <= 1.0  # at most the single fresh sample

    def test_recovers_from_max_shards_after_a_long_burst(
        self, quantized_detector, feature_matrix
    ):
        # Regression: a burst pinning the fleet at max_shards saturates the
        # CUSUM (it alarms, but no further up-action can discharge the
        # evidence).  An unbounded accumulator would then keep want_up
        # latched — and scale-down blocked — for as long after the burst as
        # the burst itself ran.  The 2x-threshold cap bounds the recovery.
        clock = FakeClock()
        fleet = self._fleet(quantized_detector, clock)
        controller = _controller(fleet, clock, max_shards=3, cusum_threshold=4.0)
        fleet.enqueue(_WindowSource(feature_matrix, 64).batch(400))
        controller.step(now=clock.advance(100.0))  # let the EWMA catch up
        assert fleet.n_shards == 3
        # A long overload at max capacity: every tick holds "at-max-shards"
        # while the CUSUM rams its cap.
        for _ in range(30):
            decision = controller.step(now=clock.advance(1.0))
            assert decision.action == "hold" and decision.reason == "at-max-shards"
        assert controller.cusum.pos == 2.0 * controller.cusum.threshold
        # The burst ends.  The controller must shed the stale alarm and walk
        # back down to min_shards within a handful of quiet ticks — not the
        # burst's own duration.
        fleet.drain()
        for _ in range(8):
            controller.step(now=clock.advance(50.0))
            if fleet.n_shards == 1:
                break
        assert fleet.n_shards == 1


# ---------------------------------------------------------------------------
# Gateway integration: autonomous reshards through the quiesce path
# ---------------------------------------------------------------------------


class TestGatewayAutoscale:
    def test_gateway_validates_the_fleet(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=1)
        controller = AutoscaleController(fleet)
        with pytest.raises(TypeError, match="live resharding"):
            IngestGateway(MonitorFleet(quantized_detector, FS), autoscaler=controller)

    def test_pump_loop_autoscales_and_the_ledger_holds(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=1, windowing=WINDOWING)
        controller = AutoscaleController(
            fleet,
            AutoscaleConfig(
                min_shards=1,
                max_shards=4,
                high_pending_per_shard=4.0,
                low_pending_per_shard=1.0,
                cooldown_s=0.0,
                ewma_half_life_s=0.001,  # track the instantaneous queue depth
            ),
        )
        gateway = IngestGateway(
            fleet, autoscaler=controller, poll_interval_s=0.01, queue_depth=64
        )
        n_frames = 48

        async def run():
            await gateway.start()
            for k in range(n_frames):
                pid, seq = k % 8, k // 8
                await gateway.submit(encode_chunk(pid, seq, FS, np.zeros(64)))
            # Let the pump drain the burst (autoscaling as it goes), then
            # idle for a few poll ticks so scale-downs get their chance.
            for _ in range(100):
                await asyncio.sleep(0.01)
                assert gateway.stats().fully_accounted  # ledger holds throughout
                if gateway.stats().frames_delivered == n_frames:
                    break
            await asyncio.sleep(0.05)
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        _, stats = asyncio.run(run())
        assert stats.fully_accounted
        assert stats.frames_delivered == n_frames
        assert stats.frames_errored == 0
        ups = [a for a in controller.actions if a.action == "up"]
        assert ups  # the burst drove at least one autonomous scale-up
        assert fleet.n_shards >= 1
        assert stats.autoscale_actions == len(controller.actions)
        assert stats.reshards == stats.autoscale_actions  # all were autonomous


# ---------------------------------------------------------------------------
# Convergence soak: diurnal load over thousands of patients
# ---------------------------------------------------------------------------


SOAK_CONFIG = AutoscaleConfig(
    min_shards=2,
    max_shards=8,
    high_pending_per_shard=100.0,
    low_pending_per_shard=20.0,
    high_age_s=10_000.0,  # the soak drains every tick; age never binds
    cooldown_s=30.0,
    ewma_half_life_s=20.0,
    gap_reset_s=100_000.0,
    cusum_threshold=1_000.0,  # let the soak exercise the EWMA/hysteresis law
)


def _run_soak(fleet, controller, feature_matrix, schedule, *, n_patients, seed, dt_s=10.0):
    """Drive ``fleet`` (and a never-autoscaled reference) through ``schedule``.

    ``schedule`` is a list of ``(windows_per_tick, n_ticks)`` phases.  Every
    tick enqueues one batch on both fleets, runs one controller step on the
    autoscaled fleet only, then drains both and asserts bit-exact decision
    parity.  Returns the per-tick shard counts (the trajectory).
    """
    clock = controller._clock
    reference = MonitorFleet(fleet.registry, FS, windowing=WINDOWING)
    source = _WindowSource(feature_matrix, n_patients, seed=seed)
    trajectory = []
    for load, ticks in schedule:
        for _ in range(ticks):
            clock.advance(dt_s)
            batch = source.batch(load)
            fleet.enqueue(batch)
            reference.enqueue(batch)
            controller.step(now=clock.now)
            got = sorted(fleet.drain(), key=decision_sort_key)
            expected = sorted(reference.drain(), key=decision_sort_key)
            assert len(got) == len(expected)
            for g, e in zip(got, expected):
                assert g.patient_id == e.patient_id
                assert g.start_s == e.start_s
                assert g.score == e.score  # bit-exact fixed-point parity
                assert g.alarm == e.alarm
            assert all(c >= 0 for c in fleet._pending_by_shard.values())
            trajectory.append(fleet.n_shards)
    return trajectory


class TestSoakConvergence:
    def test_diurnal_soak_converges_with_parity(self, quantized_detector, feature_matrix):
        clock = FakeClock()
        fleet = ShardedFleet(
            quantized_detector, FS, n_shards=2, windowing=WINDOWING, clock=clock
        )
        controller = AutoscaleController(fleet, SOAK_CONFIG, clock=clock)
        day, night = (600, 20), (30, 20)
        trajectory = _run_soak(
            fleet,
            controller,
            feature_matrix,
            [day, night, day, night],
            n_patients=2000,
            seed=97,
        )
        # Grew through the peak, shrank through the trough, both cycles.
        assert max(trajectory[:20]) >= 5
        assert min(trajectory[20:40]) <= 3
        assert max(trajectory[40:60]) >= 5
        assert min(trajectory[60:]) <= 3
        # No thrash: four load transitions, each worth at most the full
        # min↔max traversal; the controller must not exceed that budget.
        assert len(controller.actions) <= 4 * (SOAK_CONFIG.max_shards - SOAK_CONFIG.min_shards)
        # Settled: the second half of each phase is (near) action-free —
        # every action's pressure reading belongs to a transition, so
        # consecutive same-direction runs are bounded by the traversal span.
        directions = [a.action for a in controller.actions]
        assert directions.count("up") <= 2 * (SOAK_CONFIG.max_shards - SOAK_CONFIG.min_shards)
        assert directions.count("down") <= 2 * (SOAK_CONFIG.max_shards - SOAK_CONFIG.min_shards)

    @given(
        phases=st.lists(
            st.tuples(st.sampled_from([20, 120, 400, 700]), st.integers(6, 12)),
            min_size=2,
            max_size=4,
        ),
        weighted=st.booleans(),
    )
    @settings(max_examples=5, deadline=None)
    def test_random_bursty_schedules_never_thrash(
        self, quantized_detector, feature_matrix, phases, weighted
    ):
        clock = FakeClock()
        fleet = ShardedFleet(
            quantized_detector,
            FS,
            n_shards=2,
            windowing=WINDOWING,
            clock=clock,
            shard_weights=[2.0, 1.0] if weighted else None,
        )
        controller = AutoscaleController(fleet, SOAK_CONFIG, clock=clock)
        _run_soak(
            fleet, controller, feature_matrix, phases, n_patients=500, seed=31
        )
        span = SOAK_CONFIG.max_shards - SOAK_CONFIG.min_shards
        assert len(controller.actions) <= len(phases) * span
        # Direction flips bound the oscillation: at most one reversal per
        # load transition (plus the initial ramp).
        flips = sum(
            1
            for a, b in zip(controller.actions, controller.actions[1:])
            if a.action != b.action
        )
        assert flips <= len(phases)
        assert fleet.n_shards >= SOAK_CONFIG.min_shards
        assert fleet.local_stats().pending_windows == 0  # every tick drained clean
