"""``async-safety``: the gateway's event loop and frame ledger stay sound.

:class:`~repro.serving.ingest.IngestGateway` runs every patient's ingestion
on one asyncio event loop, and its :class:`~repro.serving.ingest.GatewayStats`
ledger invariant (received == delivered + queued + shed + rejected + errored)
must hold *at every suspension point* — both are one careless edit away from
breaking.  Three mechanical checks:

1. **No blocking calls in coroutines** — ``time.sleep``, synchronous socket
   construction/IO, ``subprocess`` calls, bare ``open`` and synchronous
   ``queue.Queue`` waits inside an ``async def`` stall every patient at
   once.

2. **No ``await`` between paired ledger writes** — within any statement
   sequence of a coroutine, an ``await``-bearing statement must not sit
   between two statements that write gateway ledger counters: the counters
   around it form one atomic accounting step, and a suspension in the middle
   exposes a half-counted frame to ``stats()`` (the exact bug class
   ``frames_received`` being incremented only at terminal outcomes was
   introduced to prevent).

3. **No lock held across an ``await``** — a synchronous ``with <...lock...>``
   whose body suspends can deadlock the loop (the waiter that would release
   it never runs).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.analysis.framework import Finding, ModuleSource, Rule

__all__ = ["AsyncSafetyRule", "GATEWAY_LEDGER_COUNTERS"]

#: Dotted calls that block the event loop.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "open",
    }
)
#: Method names that block when invoked on synchronous queue/socket objects.
_BLOCKING_METHODS = frozenset({"recv", "recv_into", "sendall", "accept", "connect_ex"})

#: The GatewayStats frame-ledger counters (written on ``self``): one frame's
#: accounting transition must happen with no suspension point in between.
GATEWAY_LEDGER_COUNTERS: Tuple[str, ...] = (
    "_frames_received",
    "_frames_delivered",
    "_frames_shed",
    "_frames_rejected",
    "_frames_errored",
    "_frames_gap_dropped",
    "_queued",
)

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _dotted_name(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _walk_excluding_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function definitions."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _statement_lists(func: _FuncDef) -> Iterator[List[ast.stmt]]:
    """Every statement sequence in ``func`` (bodies, else/finally branches)."""
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(node, field_name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


class AsyncSafetyRule(Rule):
    """Keep coroutines non-blocking and the frame ledger suspension-safe."""

    rule_id = "async-safety"
    description = (
        "no blocking calls in async defs, no await between paired ledger "
        "writes, no sync lock held across an await"
    )
    invariant = (
        "the GatewayStats ledger always balances and the gateway event loop "
        "never stalls (ROADMAP: every frame accounted, backpressure works)"
    )

    def __init__(
        self,
        path_markers: Sequence[str] = ("repro/serving/",),
        ledger_counters: Sequence[str] = GATEWAY_LEDGER_COUNTERS,
    ) -> None:
        self.path_markers = tuple(path_markers)
        self.ledger_counters = frozenset(ledger_counters)

    def applies_to(self, module: ModuleSource) -> bool:
        if not self.path_markers:
            return True
        return any(marker in module.path for marker in self.path_markers)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_blocking(module, node))
                findings.extend(self._check_ledger(module, node))
                findings.extend(self._check_locks(module, node))
        return findings

    # ------------------------------------------------------- blocking calls
    def _check_blocking(
        self, module: ModuleSource, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in _walk_excluding_nested_functions(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in _BLOCKING_CALLS:
                yield self.finding(
                    module,
                    node,
                    "blocking call %s(...) inside async def %s" % (dotted, func.name),
                    "use the asyncio equivalent (asyncio.sleep, streams, "
                    "run_in_executor) — a blocking call stalls every patient "
                    "on the loop",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    "synchronous .%s(...) inside async def %s" % (node.func.attr, func.name),
                    "use asyncio streams / loop.sock_* instead of blocking "
                    "socket methods on the event loop",
                )

    # -------------------------------------------------------- ledger atomicity
    def _touches_ledger(self, stmt: ast.stmt) -> bool:
        for node in _walk_excluding_nested_functions(stmt):
            target = None
            if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = node.target
            elif isinstance(node, ast.Assign) and node.targets:
                target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in self.ledger_counters
            ):
                return True
        return False

    @staticmethod
    def _first_await(stmt: ast.stmt) -> Union[ast.Await, None]:
        for node in _walk_excluding_nested_functions(stmt):
            if isinstance(node, ast.Await):
                return node
        return None

    def _check_ledger(
        self, module: ModuleSource, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for block in _statement_lists(func):
            ledger_indices = [i for i, stmt in enumerate(block) if self._touches_ledger(stmt)]
            if len(ledger_indices) < 2:
                continue
            first, last = ledger_indices[0], ledger_indices[-1]
            for i in range(first + 1, last):
                stmt = block[i]
                if self._touches_ledger(stmt):
                    continue
                await_node = self._first_await(stmt)
                if await_node is not None:
                    yield self.finding(
                        module,
                        await_node,
                        "await between GatewayStats ledger writes in async def %s"
                        % func.name,
                        "complete the frame's accounting transition (all paired "
                        "counter writes) before suspending — stats() must "
                        "balance at every await point",
                    )

    # ----------------------------------------------------------------- locks
    def _check_locks(
        self, module: ModuleSource, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in _walk_excluding_nested_functions(func):
            if not isinstance(node, ast.With):
                continue
            lockish = None
            for item in node.items:
                dotted = _dotted_name(
                    item.context_expr.func
                    if isinstance(item.context_expr, ast.Call)
                    else item.context_expr
                )
                if "lock" in dotted.lower():
                    lockish = dotted
                    break
            if lockish is None:
                continue
            for inner in node.body:
                if self._first_await(inner) is not None:
                    yield self.finding(
                        module,
                        node,
                        "synchronous lock %r held across an await in async def %s"
                        % (lockish, func.name),
                        "use asyncio.Lock with `async with`, or release the "
                        "lock before suspending",
                    )
                    break
