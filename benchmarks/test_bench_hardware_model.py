"""Benchmark: the analytical hardware model itself.

This harness times the accelerator cost evaluation over a large design-space
sweep (every combination of feature count, SV count and word width used by the
paper's figures) and checks the scaling laws that the figures rely on.  It is
the fast, deterministic counterpart of the synthesis runs behind the paper's
energy / area axes.
"""

import itertools

from repro.hardware.accelerator import AcceleratorConfig, evaluate_accelerator

from benchmarks.conftest import run_once

FEATURE_COUNTS = (53, 45, 38, 30, 23, 15, 8)
SV_COUNTS = (120, 100, 80, 68, 50, 35, 20, 10)
WIDTHS = ((64, 64), (32, 32), (16, 16), (9, 15), (7, 13), (11, 17))


def _sweep():
    reports = {}
    for n_feat, n_sv, (d_bits, a_bits) in itertools.product(FEATURE_COUNTS, SV_COUNTS, WIDTHS):
        config = AcceleratorConfig(
            n_features=n_feat,
            n_support_vectors=n_sv,
            feature_bits=d_bits,
            coeff_bits=a_bits,
            per_feature_scaling=d_bits != a_bits,
        )
        reports[(n_feat, n_sv, d_bits, a_bits)] = evaluate_accelerator(config)
    return reports


def test_bench_hardware_design_space(benchmark):
    reports = run_once(benchmark, _sweep)
    assert len(reports) == len(FEATURE_COUNTS) * len(SV_COUNTS) * len(WIDTHS)

    baseline = reports[(53, 120, 64, 64)]
    optimised = reports[(30, 68, 9, 15)]
    print()
    print(
        "baseline  (53 feat, 120 SV, 64b): %.0f nJ, %.3f mm2"
        % (baseline.energy_nj, baseline.area_mm2)
    )
    print(
        "optimised (30 feat,  68 SV, 9/15b): %.0f nJ, %.4f mm2  ->  %.1fx energy, %.1fx area"
        % (
            optimised.energy_nj,
            optimised.area_mm2,
            baseline.energy_nj / optimised.energy_nj,
            baseline.area_mm2 / optimised.area_mm2,
        )
    )

    # The paper's headline factors (12.5× energy, 16× area) should be within
    # reach of the analytical model for the same configuration change.
    assert 8.0 < baseline.energy_nj / optimised.energy_nj < 25.0
    assert 8.0 < baseline.area_mm2 / optimised.area_mm2 < 25.0

    # Monotonicity of the model along every axis the figures sweep.
    for n_sv in SV_COUNTS:
        energies = [reports[(n, n_sv, 64, 64)].energy_nj for n in FEATURE_COUNTS]
        assert all(a >= b for a, b in zip(energies, energies[1:]))
    for n_feat in FEATURE_COUNTS:
        areas = [reports[(n_feat, n, 64, 64)].area_mm2 for n in SV_COUNTS]
        assert all(a >= b for a, b in zip(areas, areas[1:]))
