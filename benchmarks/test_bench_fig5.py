"""Benchmark: regenerate Figure 5 (GM / energy / area vs. SV budget).

Paper reference: classification quality is nearly flat until ~50 support
vectors remain and collapses below; the ~50-SV point saves 76% energy and 45%
area for a 1.5% GM loss, on a 64-bit implementation of the full feature set.
"""

from repro.experiments import fig5_svbudget

from benchmarks.conftest import run_once


def test_bench_fig5_sv_budget_sweep(benchmark, experiment_data, full_axes):
    budgets = fig5_svbudget.DEFAULT_BUDGETS if full_axes else (120, 68, 50, 25, 12)
    selected = 50
    result = run_once(
        benchmark,
        fig5_svbudget.run,
        experiment_data.features,
        budgets=budgets,
        selected_budget=selected,
    )

    print()
    print(fig5_svbudget.format_series(result))
    print("paper reference:", fig5_svbudget.PAPER_REFERENCE)

    points = result.points
    assert len(points) == len(budgets)
    # SV counts respect the budgets.
    for point, budget in zip(points, budgets):
        assert point.n_support_vectors <= budget + 1e-9

    # Costs decrease as the budget tightens.
    energies = [p.energy_nj for p in points]
    areas = [p.area_mm2 for p in points]
    assert energies[0] >= energies[-1]
    assert areas[0] >= areas[-1]

    summary = result.selected_summary()
    assert summary["energy_reduction_pct"] > 0.0
    assert summary["gm_loss_pct"] < 15.0
