"""Single-patient streaming monitor: ECG chunks in, window decisions out.

:class:`StreamingMonitor` chains the incremental R-peak detector, the
incremental windower and the per-window feature extractor.  It deliberately
*separates* feature extraction from classification: :meth:`StreamingMonitor.push`
returns :class:`PendingWindow` objects (feature vectors awaiting a verdict) so
that a :class:`~repro.serving.fleet.MonitorFleet` can pool pending windows from
many patients into one batched SVM call.  For standalone use,
:meth:`StreamingMonitor.process` classifies each batch of pending windows
immediately with the monitor's own classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.peaks import PanTompkinsParams, PeakDetectorState, StreamingPeakDetector
from repro.features.extractor import FeatureExtractor
from repro.serving.wire import SequenceTracker
from repro.signals.windows import StreamingWindower, WindowerState, WindowingParams

__all__ = [
    "MONITOR_STATE_VERSION",
    "GapStats",
    "MonitorState",
    "PendingWindow",
    "WindowDecision",
    "StreamingMonitor",
    "classify_windows",
]

#: Version stamp of :class:`MonitorState`; bumped on any incompatible change
#: to the snapshot layout, so a restore can never silently misread a state
#: produced by a different serving build.  Version 2: the ring-buffer
#: windower added ``WindowerState.base_beat_index``.  Version 3: the lossy
#: transport mode added ``MonitorState.n_gaps`` / ``windows_lost`` and
#: ``PeakDetectorState.seed_from``.
MONITOR_STATE_VERSION = 3


@dataclass(frozen=True)
class GapStats:
    """Aggregated gap accounting of one or more lossy monitors.

    Returned by ``MonitorFleet.gap_stats()`` / ``ShardedFleet.gap_stats()``
    and folded into :class:`~repro.serving.ingest.GatewayStats` when the
    gateway runs in lossy mode.
    """

    #: Sequence gaps detected (each one a ``StreamingMonitor.note_gap``).
    gaps: int = 0
    #: Grid windows abandoned because they would have spanned a gap.
    windows_reset: int = 0

    def __add__(self, other: "GapStats") -> "GapStats":
        return GapStats(
            gaps=self.gaps + other.gaps,
            windows_reset=self.windows_reset + other.windows_reset,
        )


@dataclass(frozen=True)
class PendingWindow:
    """A completed analysis window waiting for a classifier verdict."""

    patient_id: int
    start_s: float
    end_s: float
    n_beats: int
    #: The 53-entry feature vector, or ``None`` when the window was unusable
    #: (too few beats, degenerate EDR segment, non-finite feature).
    features: Optional[np.ndarray]

    @property
    def usable(self) -> bool:
        return self.features is not None


@dataclass(frozen=True)
class WindowDecision:
    """Alarm decision for one analysis window of one patient."""

    patient_id: int
    start_s: float
    end_s: float
    n_beats: int
    usable: bool
    #: Decision-function score (``None`` for unusable windows).
    score: Optional[float]
    #: ``True`` when the window was classified as seizure (+1).
    alarm: bool


def _pending_equal(a: Sequence[PendingWindow], b: Sequence[PendingWindow]) -> bool:
    if len(a) != len(b):
        return False
    for wa, wb in zip(a, b):
        if (
            wa.patient_id != wb.patient_id
            or wa.start_s != wb.start_s
            or wa.end_s != wb.end_s
            or wa.n_beats != wb.n_beats
            or wa.usable != wb.usable
        ):
            return False
        if wa.usable and not np.array_equal(wa.features, wb.features):
            return False
    return True


@dataclass(frozen=True, eq=False)
class MonitorState:
    """Versioned, picklable snapshot of one patient's full serving state.

    This is the unit of live migration: everything that must follow a
    patient when their monitor moves between fleet shards (or hosts) —

    * the :class:`~repro.dsp.peaks.StreamingPeakDetector` carry-over
      (:class:`~repro.dsp.peaks.PeakDetectorState`),
    * the :class:`~repro.signals.windows.StreamingWindower` partial buffers
      (:class:`~repro.signals.windows.WindowerState`),
    * the :class:`~repro.serving.wire.SequenceTracker` position, and
    * the already-featurised :class:`PendingWindow` queue entries awaiting a
      classifier verdict (filled in by
      :meth:`~repro.serving.fleet.MonitorFleet.export_patient`; empty on a
      bare :meth:`StreamingMonitor.snapshot`).

    ``detector`` / ``windower`` / ``sequence`` are ``None`` for a patient
    known only through enqueued windows (no live monitor).  The state is a
    plain pickle-friendly value object, so the process-per-shard executor
    can ship it over its worker pipes unchanged.
    """

    version: int
    patient_id: int
    fs: float
    detector: Optional[PeakDetectorState]
    windower: Optional[WindowerState]
    sequence: Optional[Tuple[int, int]]
    n_windows: int
    n_usable: int
    pending: Tuple[PendingWindow, ...] = ()
    #: Lossy-mode gap accounting (both stay 0 on strict transports): gaps the
    #: monitor absorbed via ``note_gap`` and grid windows those resets
    #: abandoned.  Part of the snapshot so a migrated patient's gap history
    #: follows them.
    n_gaps: int = 0
    windows_lost: int = 0

    @property
    def has_monitor(self) -> bool:
        """Whether the state carries live DSP state (vs pending-only)."""
        return self.detector is not None

    def __eq__(self, other) -> bool:
        if not isinstance(other, MonitorState):
            return NotImplemented
        return (
            self.version == other.version
            and self.patient_id == other.patient_id
            and self.fs == other.fs
            and self.detector == other.detector
            and self.windower == other.windower
            and self.sequence == other.sequence
            and self.n_windows == other.n_windows
            and self.n_usable == other.n_usable
            and _pending_equal(self.pending, other.pending)
            and self.n_gaps == other.n_gaps
            and self.windows_lost == other.windows_lost
        )


def classify_windows(classifier, pending: Sequence[PendingWindow]) -> List[WindowDecision]:
    """Classify a batch of pending windows with one vectorised SVM call.

    ``classifier`` is anything with the ``decision_function`` / ``predict``
    pair of :class:`~repro.svm.model.SVMModel` and
    :class:`~repro.quant.quantized_model.QuantizedSVM`.  All usable windows
    are stacked into a single feature matrix; labels come from one batched
    ``predict`` call, so on the fixed-point model they are bit-identical to a
    per-window loop.  Unusable windows yield ``alarm=False`` decisions.
    """
    usable = [i for i, window in enumerate(pending) if window.usable]
    decisions: List[Optional[WindowDecision]] = [None] * len(pending)
    if usable:
        # One preallocated batch matrix filled row by row (the feature
        # vectors are scattered across PendingWindow objects, so a copy is
        # unavoidable — but np.vstack would build the same copy *plus* a
        # temporary tuple of row views).
        first = np.asarray(pending[usable[0]].features)
        X = np.empty((len(usable), first.shape[0]), dtype=first.dtype)
        for row, i in enumerate(usable):
            X[row] = pending[i].features
        if hasattr(classifier, "scores_and_labels"):
            scores, labels = classifier.scores_and_labels(X)
        else:
            scores = np.asarray(classifier.decision_function(X), dtype=float)
            labels = np.asarray(classifier.predict(X), dtype=int)
        scores = np.asarray(scores, dtype=float)
        labels = np.asarray(labels, dtype=int)
        for row, i in enumerate(usable):
            window = pending[i]
            decisions[i] = WindowDecision(
                patient_id=window.patient_id,
                start_s=window.start_s,
                end_s=window.end_s,
                n_beats=window.n_beats,
                usable=True,
                score=float(scores[row]),
                alarm=bool(labels[row] == 1),
            )
    for i, window in enumerate(pending):
        if decisions[i] is None:
            decisions[i] = WindowDecision(
                patient_id=window.patient_id,
                start_s=window.start_s,
                end_s=window.end_s,
                n_beats=window.n_beats,
                usable=False,
                score=None,
                alarm=False,
            )
    return [d for d in decisions if d is not None]


class StreamingMonitor:
    """Online monitor for one patient's raw ECG stream.

    Parameters
    ----------
    patient_id:
        Identifier attached to every emitted window.
    fs:
        Sampling frequency of the incoming ECG chunks (Hz).
    classifier:
        Optional :class:`~repro.svm.model.SVMModel` or
        :class:`~repro.quant.quantized_model.QuantizedSVM`; only needed for
        the standalone :meth:`process` path (a fleet supplies its own).
    windowing:
        Window grid configuration (three-minute non-overlapping by default).
    detector_params:
        Pan–Tompkins tuning of the streaming R-peak detector.
    feature_cache:
        Enable the overlap-aware per-beat partial cache of the feature
        extractor (bit-identical either way; the flag exists so parity can
        be asserted and the cache disabled in A/B comparisons).
    lossy:
        Datagram-transport mode.  ``seq`` becomes the *absolute sample
        offset* of the chunk's first sample (not a chunk counter): a jump
        ahead of the stream position is read as frame loss and absorbed via
        :meth:`note_gap` instead of raising
        :class:`~repro.serving.wire.OutOfOrderChunkError`; a stale chunk
        still raises :class:`~repro.serving.wire.DuplicateChunkError`.
    """

    #: Not captured by :meth:`snapshot`, and pinned so by the
    #: ``snapshot-completeness`` rule of :mod:`repro.analysis`: the classifier
    #: is fleet-owned (a migrated patient is classified by the *destination*
    #: fleet's registry), the feature extractor (with the ``feature_cache``
    #: flag that configures it) carries pure cache state — a revived monitor
    #: rebuilds an empty cache and reseeds it from the first window it emits,
    #: bit-identically — and ``lossy`` is transport configuration owned by
    #: the fleet (a whole fleet is lossy or strict, never patient by
    #: patient), reapplied by ``from_snapshot``.
    _SNAPSHOT_EXCLUDE = ("classifier", "_extractor", "feature_cache", "lossy")

    def __init__(
        self,
        patient_id: int,
        fs: float,
        classifier=None,
        windowing: WindowingParams | None = None,
        detector_params: PanTompkinsParams | None = None,
        feature_cache: bool = True,
        lossy: bool = False,
    ) -> None:
        self.patient_id = int(patient_id)
        self.fs = float(fs)
        self.classifier = classifier
        self.feature_cache = bool(feature_cache)
        self.lossy = bool(lossy)
        self._detector = StreamingPeakDetector(self.fs, detector_params)
        self._windower = StreamingWindower(windowing)
        self._extractor = FeatureExtractor(feature_cache=self.feature_cache)
        self._sequence = SequenceTracker()
        self._n_windows = 0
        self._n_usable = 0
        self._n_gaps = 0
        self._windows_lost = 0

    @property
    def time_seen_s(self) -> float:
        """Stream time corresponding to the last pushed sample."""
        return self._detector.time_seen_s

    @property
    def n_windows(self) -> int:
        """Number of windows emitted so far (usable or not)."""
        return self._n_windows

    @property
    def n_usable_windows(self) -> int:
        return self._n_usable

    @property
    def last_seq(self) -> Optional[int]:
        """Sequence number of the last chunk accepted with an explicit ``seq``."""
        return self._sequence.last_seq

    @property
    def n_gaps(self) -> int:
        """Sequence gaps absorbed so far (always 0 on a strict transport)."""
        return self._n_gaps

    @property
    def windows_reset_by_gap(self) -> int:
        """Grid windows abandoned because they would have spanned a gap."""
        return self._windows_lost

    def snapshot(self) -> MonitorState:
        """Capture the monitor's complete per-patient state.

        The snapshot is a self-contained, picklable :class:`MonitorState`
        (DSP carry-over, partial windows, sequence position, window
        counters) that owns copies of every mutable buffer — the monitor
        keeps streaming without invalidating it.  ``pending`` is empty here:
        completed windows live on the owning fleet's queue and are attached
        by :meth:`MonitorFleet.export_patient
        <repro.serving.fleet.MonitorFleet.export_patient>`.
        """
        return MonitorState(
            version=MONITOR_STATE_VERSION,
            patient_id=self.patient_id,
            fs=self.fs,
            detector=self._detector.snapshot(),
            windower=self._windower.snapshot(),
            sequence=self._sequence.snapshot(),
            n_windows=self._n_windows,
            n_usable=self._n_usable,
            n_gaps=self._n_gaps,
            windows_lost=self._windows_lost,
        )

    @classmethod
    def from_snapshot(
        cls,
        state: MonitorState,
        classifier=None,
        feature_cache: bool = True,
        lossy: bool = False,
    ) -> "StreamingMonitor":
        """Revive a monitor from a :class:`MonitorState`, mid-stream.

        The revived monitor is behaviourally indistinguishable from the one
        that was snapshotted: for any continuation of the chunk stream it
        emits bit-identical windows and enforces the same next-expected
        sequence number.  Raises :class:`ValueError` on a version mismatch
        or a pending-only state (no DSP state to revive).
        """
        if state.version != MONITOR_STATE_VERSION:
            raise ValueError(
                "monitor state version %d is not the supported version %d"
                % (state.version, MONITOR_STATE_VERSION)
            )
        if state.detector is None or state.windower is None or state.sequence is None:
            raise ValueError(
                "state of patient %d carries no monitor DSP state" % state.patient_id
            )
        monitor = cls(
            state.patient_id,
            state.fs,
            classifier=classifier,
            windowing=state.windower.params,
            detector_params=state.detector.params,
            feature_cache=feature_cache,
            lossy=lossy,
        )
        monitor._detector = StreamingPeakDetector.from_snapshot(state.detector)
        monitor._windower = StreamingWindower.from_snapshot(state.windower)
        monitor._sequence = SequenceTracker.from_snapshot(state.sequence)
        monitor._n_windows = int(state.n_windows)
        monitor._n_usable = int(state.n_usable)
        monitor._n_gaps = int(state.n_gaps)
        monitor._windows_lost = int(state.windows_lost)
        return monitor

    def push(self, chunk: np.ndarray, seq: int | None = None) -> List[PendingWindow]:
        """Consume one chunk of raw ECG; return newly completed windows.

        When ``seq`` is given, delivery order is policed *before* any sample
        touches the DSP state, but the tracker advances only once the chunk's
        samples are absorbed (commit-on-success): a push that failed before
        absorbing anything can simply be retried with the same ``seq``
        without being misread as a duplicate.

        On a strict transport ``seq`` is a per-patient chunk counter starting
        at 0 (see :mod:`repro.serving.wire`): a repeated sequence number
        raises :class:`~repro.serving.wire.DuplicateChunkError` and a skipped
        or reordered one raises
        :class:`~repro.serving.wire.OutOfOrderChunkError`, leaving the
        monitor's carry-over state untouched.

        In ``lossy`` mode ``seq`` is the absolute sample offset of
        ``chunk[0]``: a stale chunk still raises
        :class:`~repro.serving.wire.DuplicateChunkError`, but a jump ahead is
        frame loss — the gap is absorbed via :meth:`note_gap` (DSP reset, no
        emitted window ever spans the missing samples) and the chunk is then
        processed normally.  Every lossy push must carry a ``seq``; the gap
        arithmetic is what keeps the monitor's clock aligned with the true
        stream.
        """
        span = 0
        if seq is not None:
            seq = int(seq)
            if self.lossy:
                span = int(np.asarray(chunk).size)
                if self._sequence.check_datagram(seq):
                    self.note_gap(seq)
            else:
                self._sequence.check(seq)
        indices, times, amplitudes = self._detector.process(chunk)
        # The absorption point: only now may the tracker move (by the
        # chunk's sample span in datagram mode, by one chunk otherwise).
        if seq is not None:
            self._sequence.validate(seq, span=span if self.lossy else 1)
        completed = self._windower.push(times, amplitudes)
        completed += self._windower.advance(self._detector.finalized_time_s)
        return self._featurize(completed)

    def note_gap(self, resume_sample: int) -> int:
        """Absorb a sequence gap: samples up to ``resume_sample`` are lost.

        Declares everything between the stream position and the absolute
        sample index ``resume_sample`` missing, then resets every piece of
        state that could otherwise leak across the gap:

        * the sequence tracker skips forward (:meth:`SequenceTracker.skip_to
          <repro.serving.wire.SequenceTracker.skip_to>`),
        * the peak detector drops its carry-over buffer, unfinalised tail and
          adaptive level and resumes segment-fresh at ``resume_sample``
          (absolute beat indices stay monotone),
        * the windower abandons its partial windows and restarts the window
          grid at the first *original-grid* start past the resume point plus
          the detector's warm-up guard — so the first post-gap window only
          covers samples whose detection no longer depends on the gap, and
          its start lands exactly where a lossless run would have put a
          window.  The absolute beat index keeps counting past the dropped
          beats, so the downstream ``BeatPartialCache`` reseeds instead of
          aliasing pre-gap beats with post-gap ones.

        Returns the number of grid windows abandoned (also accumulated in
        :attr:`windows_reset_by_gap`).  Raises ``ValueError`` when
        ``resume_sample`` is behind the stream, and ``RuntimeError`` on a
        strict-transport monitor, where seqs do not measure samples.
        """
        if not self.lossy:
            raise RuntimeError(
                "note_gap is only meaningful in lossy mode, where seq numbers"
                " are sample offsets"
            )
        resume = int(resume_sample)
        self._sequence.skip_to(resume)
        self._detector.resume_at(resume)
        target = resume / self.fs + self._detector.warmup_s
        step = self._windower.params.step_s
        # Walk the grid forward by repeated addition — the same accumulation
        # the windower performs on emission — so post-gap window starts are
        # bit-identical to the lossless run's grid.
        new_start = self._windower.window_start_s
        while new_start < target:
            new_start += step
        lost = self._windower.reset(new_start)
        self._n_gaps += 1
        self._windows_lost += lost
        return lost

    def finish(self) -> List[PendingWindow]:
        """Flush the detector and windower at end of stream."""
        indices, times, amplitudes = self._detector.flush()
        completed = self._windower.push(times, amplitudes, now_s=self._detector.time_seen_s)
        completed += self._windower.flush()
        return self._featurize(completed)

    def process(self, chunk: np.ndarray) -> List[WindowDecision]:
        """Push a chunk and classify the completed windows immediately."""
        if self.classifier is None:
            raise ValueError("this monitor has no classifier; use push() with a fleet")
        return classify_windows(self.classifier, self.push(chunk))

    def finish_and_classify(self) -> List[WindowDecision]:
        """Flush the stream and classify the remaining windows."""
        if self.classifier is None:
            raise ValueError("this monitor has no classifier; use finish() with a fleet")
        return classify_windows(self.classifier, self.finish())

    # ------------------------------------------------------------- internals
    def _featurize(self, windows) -> List[PendingWindow]:
        min_beats = self._windower.params.min_beats
        pending: List[PendingWindow] = []
        for window in windows:
            features: Optional[np.ndarray] = None
            if window.n_beats >= min_beats:
                try:
                    features = self._extractor.extract_beat_window(window)
                except ValueError:
                    features = None
            self._n_windows += 1
            if features is not None:
                self._n_usable += 1
            pending.append(
                PendingWindow(
                    patient_id=self.patient_id,
                    start_s=window.start_s,
                    end_s=window.end_s,
                    n_beats=window.n_beats,
                    features=features,
                )
            )
        return pending
