"""The project-specific rule set of the invariant linter.

Each rule mechanises one pinned serving-stack guarantee (see the module
docstrings for the mapping to ROADMAP invariants):

========================  ====================================================
rule id                   protects
========================  ====================================================
``int-purity``            bit-exact integer-only quantized hot path
``snapshot-completeness``  zero-loss MonitorState migration + version guard
``async-safety``          gateway event-loop liveness + ledger atomicity
``wire-version``          frame layout pinned to its WIRE_VERSION byte
``determinism``           replayability (no ambient RNG / wall clock)
========================  ====================================================

:func:`default_rules` builds one fresh instance of each — rules may carry
cross-file state, so instances are never shared between runs.
"""

from __future__ import annotations

from typing import List

from repro.analysis.framework import Rule
from repro.analysis.rules.async_safety import GATEWAY_LEDGER_COUNTERS, AsyncSafetyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.int_purity import IntPurityRule
from repro.analysis.rules.snapshots import (
    DEFAULT_SNAPSHOT_REGISTRY,
    SnapshotCompletenessRule,
    SnapshotSpec,
)
from repro.analysis.rules.wire_version import WIRE_REGISTRY, WireSpec, WireVersionRule

__all__ = [
    "AsyncSafetyRule",
    "DeterminismRule",
    "IntPurityRule",
    "SnapshotCompletenessRule",
    "WireVersionRule",
    "SnapshotSpec",
    "WireSpec",
    "DEFAULT_SNAPSHOT_REGISTRY",
    "WIRE_REGISTRY",
    "GATEWAY_LEDGER_COUNTERS",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """One fresh instance of every project rule (the CLI/CI/pytest set)."""
    return [
        IntPurityRule(),
        SnapshotCompletenessRule(),
        AsyncSafetyRule(),
        WireVersionRule(),
        DeterminismRule(),
    ]
