"""Figure 4 — GM / energy / area when varying the number of features.

The paper sweeps the feature-set size from 53 down to a handful of features
using the correlation-driven removal heuristic, retraining the (64-bit) SVM at
every size.  GM degrades slowly above ~15 features and collapses below;
energy and area drop roughly linearly with the feature count (fewer MAC1
operations and a smaller SV memory), with a counter-intuitive bump below ~15
features where the harder learning problem recruits more support vectors.
The paper picks 23 features: −65% energy, −42% area, −1.2% GM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.design_point import DesignPoint
from repro.core.feature_selection import feature_reduction_sweep
from repro.features.extractor import FeatureMatrix
from repro.svm.model import SVMTrainParams

__all__ = ["PAPER_REFERENCE", "DEFAULT_FEATURE_COUNTS", "Fig4Result", "run", "format_series"]

#: Reference behaviour reported by the paper for its selected design point.
PAPER_REFERENCE: Dict[str, float] = {
    "selected_feature_count": 23,
    "energy_reduction_pct": 65.0,
    "area_reduction_pct": 42.0,
    "gm_loss_pct": 1.2,
}

#: Feature-set sizes swept by default (53 → 5).
DEFAULT_FEATURE_COUNTS: Sequence[int] = (53, 45, 38, 30, 23, 15, 10, 8, 5)


@dataclass
class Fig4Result:
    """The Figure 4 series plus the derived selected-point statistics."""

    points: List[DesignPoint]
    selected_count: int

    @property
    def baseline(self) -> DesignPoint:
        return self.points[0]

    @property
    def selected(self) -> DesignPoint:
        for point in self.points:
            if point.n_features == self.selected_count:
                return point
        raise KeyError("selected feature count %d not in sweep" % self.selected_count)

    def selected_summary(self) -> Dict[str, float]:
        """Energy/area reduction and GM loss of the selected point vs. 53 features."""
        baseline, selected = self.baseline, self.selected
        return {
            "selected_feature_count": float(self.selected_count),
            "energy_reduction_pct": 100.0 * (1.0 - selected.energy_nj / baseline.energy_nj),
            "area_reduction_pct": 100.0 * (1.0 - selected.area_mm2 / baseline.area_mm2),
            "gm_loss_pct": 100.0 * (baseline.gm - selected.gm),
        }


def run(
    features: FeatureMatrix,
    feature_counts: Sequence[int] = DEFAULT_FEATURE_COUNTS,
    selected_count: int = 23,
    train_params: Optional[SVMTrainParams] = None,
) -> Fig4Result:
    """Run the Figure 4 sweep (64-bit hardware, quadratic kernel)."""
    counts = [c for c in feature_counts if c <= features.n_features]
    points = feature_reduction_sweep(
        features,
        counts,
        train_params=train_params,
        feature_bits=64,
        coeff_bits=64,
    )
    if selected_count in counts:
        selected = selected_count
    else:
        selected = counts[min(len(counts) // 2, len(counts) - 1)]
    return Fig4Result(points=points, selected_count=selected)


def format_series(result: Fig4Result) -> str:
    """Text rendering of the Figure 4 series."""
    lines = [
        "Figure 4: classification performance and resources vs. number of features",
        "%10s %8s %8s %12s %10s" % ("#features", "GM %", "avg #SV", "energy [nJ]", "area [mm2]"),
    ]
    for point in result.points:
        lines.append(
            "%10d %8.1f %8.1f %12.1f %10.4f"
            % (
                point.n_features,
                100.0 * point.gm,
                point.n_support_vectors,
                point.energy_nj,
                point.area_mm2,
            )
        )
    summary = result.selected_summary()
    lines.append(
        "selected point: %d features -> energy -%.0f%%, area -%.0f%%, GM loss %.1f%% "
        "(paper: -65%%, -42%%, 1.2%%)"
        % (
            result.selected_count,
            summary["energy_reduction_pct"],
            summary["area_reduction_pct"],
            summary["gm_loss_pct"],
        )
    )
    return "\n".join(lines)
