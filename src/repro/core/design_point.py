"""Design points: classification quality + hardware cost of one configuration.

Every exploration in the paper (Figures 4–7) reports, for each configuration,
the classification GM together with the energy-per-classification and the area
of the corresponding accelerator.  :class:`DesignPoint` is the record used by
all sweeps, and :func:`hardware_cost` maps a configuration (feature count, SV
count, bit widths, scaling scheme) to its hardware cost through the analytical
models of :mod:`repro.hardware`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from repro.core.evaluation import CrossValidationResult
from repro.hardware.accelerator import AcceleratorConfig, AcceleratorReport, evaluate_accelerator
from repro.hardware.technology import TECH_40NM, TechnologyParams

__all__ = ["DesignPoint", "hardware_cost"]


def hardware_cost(
    n_features: int,
    n_support_vectors: int,
    feature_bits: int = 64,
    coeff_bits: int = 64,
    per_feature_scaling: bool = True,
    datapath_cap_bits: Optional[int] = None,
    truncate_after_dot: int = 10,
    truncate_after_square: int = 10,
    tech: TechnologyParams = TECH_40NM,
) -> AcceleratorReport:
    """Hardware cost of one accelerator configuration.

    ``n_support_vectors`` may be fractional (the average across folds); it is
    rounded to the nearest integer because the memory must host whole vectors.
    """
    config = AcceleratorConfig(
        n_features=int(round(n_features)),
        n_support_vectors=max(int(round(n_support_vectors)), 1),
        feature_bits=int(feature_bits),
        coeff_bits=int(coeff_bits),
        truncate_after_dot=truncate_after_dot,
        truncate_after_square=truncate_after_square,
        per_feature_scaling=per_feature_scaling,
        datapath_cap_bits=datapath_cap_bits,
    )
    return evaluate_accelerator(config, tech)


@dataclass
class DesignPoint:
    """One point of a quality / cost trade-off curve."""

    name: str
    n_features: int
    n_support_vectors: float
    feature_bits: int
    coeff_bits: int
    sensitivity: float
    specificity: float
    gm: float
    energy_nj: float
    area_mm2: float
    extras: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_evaluation(
        cls,
        name: str,
        cv_result: CrossValidationResult,
        hardware: AcceleratorReport,
        extras: Optional[Dict[str, float]] = None,
    ) -> "DesignPoint":
        """Combine a cross-validation result with its hardware report."""
        return cls(
            name=name,
            n_features=hardware.config.n_features,
            n_support_vectors=cv_result.mean_support_vectors,
            feature_bits=hardware.config.feature_bits,
            coeff_bits=hardware.config.coeff_bits,
            sensitivity=cv_result.sensitivity,
            specificity=cv_result.specificity,
            gm=cv_result.gm,
            energy_nj=hardware.energy_nj,
            area_mm2=hardware.area_mm2,
            extras=dict(extras or {}),
        )

    # ------------------------------------------------------------ persistence
    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the design point as a strict (RFC 8259) JSON string.

        The payload is exactly the dataclass fields (``extras`` included), so
        a sweep's chosen points can be persisted next to its figures and later
        loaded into a serving :class:`~repro.serving.registry.ModelRegistry`
        via :meth:`from_json` — see the round-trip test in
        ``tests/test_serving_registry.py``.  Non-finite metric values (a point
        built before evaluation has NaN quality figures) are emitted as JSON
        ``null`` — never as the ``NaN`` literal non-Python parsers reject —
        and read back as ``nan``.
        """
        def encode(value):
            if isinstance(value, float) and not math.isfinite(value):
                return None
            return value

        payload = {f.name: encode(getattr(self, f.name)) for f in fields(self)}
        payload["extras"] = {key: encode(value) for key, value in self.extras.items()}
        return json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, payload: str) -> "DesignPoint":
        """Reconstruct a design point serialised by :meth:`to_json`."""
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError("design-point JSON must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown design-point fields: %s" % ", ".join(sorted(unknown))
            )
        missing = known - set(data) - {"extras"}
        if missing:
            raise ValueError(
                "missing design-point fields: %s" % ", ".join(sorted(missing))
            )
        decoded = {
            name: float("nan") if value is None and name != "extras" else value
            for name, value in data.items()
        }
        extras = decoded.get("extras")
        if extras is not None:
            decoded["extras"] = {
                key: float("nan") if value is None else value
                for key, value in extras.items()
            }
        return cls(**decoded)

    # -------------------------------------------------------------- ratios
    def energy_gain_over(self, baseline: "DesignPoint") -> float:
        """Baseline energy divided by this point's energy (×-factor)."""
        return baseline.energy_nj / self.energy_nj if self.energy_nj > 0 else float("inf")

    def area_gain_over(self, baseline: "DesignPoint") -> float:
        """Baseline area divided by this point's area (×-factor)."""
        return baseline.area_mm2 / self.area_mm2 if self.area_mm2 > 0 else float("inf")

    def gm_loss_vs(self, baseline: "DesignPoint") -> float:
        """Absolute GM loss (percentage points when GM is in percent units)."""
        return baseline.gm - self.gm

    def normalised_to(self, baseline: "DesignPoint") -> Dict[str, float]:
        """GM / energy / area normalised to a baseline point (Figure 7 style)."""
        return {
            "gm": self.gm / baseline.gm if baseline.gm else float("nan"),
            "energy": self.energy_nj / baseline.energy_nj if baseline.energy_nj else float("nan"),
            "area": self.area_mm2 / baseline.area_mm2 if baseline.area_mm2 else float("nan"),
        }

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary used by the experiment tables and benches."""
        row = {
            "name": self.name,
            "n_features": self.n_features,
            "n_support_vectors": self.n_support_vectors,
            "feature_bits": self.feature_bits,
            "coeff_bits": self.coeff_bits,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "gm": self.gm,
            "energy_nj": self.energy_nj,
            "area_mm2": self.area_mm2,
        }
        row.update(self.extras)
        return row
