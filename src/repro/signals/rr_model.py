"""RR-interval (heart beat) generator with seizure-driven autonomic response.

The detector studied in the paper works on features derived from the heart
rate (HRV statistics, Lorenz-plot descriptors) and from the ECG-derived
respiration signal.  The physiological signatures it relies on are:

* **ictal tachycardia** — heart rate rises sharply around seizure onset,
* **reduced short-term variability** — vagally mediated beat-to-beat
  variability (RMSSD, the HF band, the Poincaré SD1 axis) collapses during
  the ictal phase,
* **shifted sympatho-vagal balance** — the LF/HF ratio increases,
* **altered respiratory coupling** — respiratory sinus arrhythmia weakens
  while the breathing rate rises.

The generator implements an Integral Pulse Frequency Modulation (IPFM) model:
an instantaneous heart-rate signal is built on a uniform grid from baseline
dynamics (Mayer waves, respiratory sinus arrhythmia, fractal drift) modulated
by the seizure envelope, and beats are emitted whenever its running integral
crosses an integer.  The result is a physiologically plausible, irregularly
sampled sequence of beat times and RR intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.signals.respiration import RespirationSignal, seizure_envelope
from repro.signals.seizures import Seizure

__all__ = ["RRModelParams", "RRSeries", "generate_rr_series"]


@dataclass
class RRModelParams:
    """Parameters of the autonomic RR-interval model."""

    #: Baseline heart rate in beats per minute.
    base_hr_bpm: float = 72.0
    #: Patient-to-patient spread of the baseline heart rate (bpm).  A large
    #: spread means an absolute heart-rate threshold cannot separate seizures
    #: across patients, as in the clinical cohort.
    hr_between_patient_sd: float = 10.0
    #: Amplitude of the low-frequency (Mayer wave, ~0.1 Hz) oscillation as a
    #: fraction of the mean heart rate.
    lf_amplitude: float = 0.03
    #: Centre frequency of the LF oscillation (Hz).
    lf_frequency_hz: float = 0.095
    #: Amplitude of respiratory sinus arrhythmia as a fraction of the mean
    #: heart rate (this is the HF band of HRV).
    rsa_amplitude: float = 0.045
    #: Standard deviation of the slow fractal/OU drift of the heart rate,
    #: as a fraction of the mean heart rate.
    drift_amplitude: float = 0.05
    #: Correlation time of the drift (seconds).
    drift_tau_s: float = 300.0
    #: White beat-scale jitter as a fraction of the mean heart rate.
    jitter_amplitude: float = 0.01
    #: Multiplicative heart-rate increase at the ictal peak (1.30 = +30%) for a
    #: full-intensity seizure in a patient with a rate-dominant autonomic
    #: response; weaker seizures and HRV-dominant patients scale this down.
    ictal_hr_gain: float = 1.30
    #: Residual fraction of RSA amplitude retained at the ictal peak.
    ictal_rsa_suppression: float = 0.30
    #: Residual fraction of the LF amplitude retained at the ictal peak
    #: (sympathetic activation keeps LF comparatively high).
    ictal_lf_suppression: float = 0.8
    #: Multiplicative heart-rate increase at the peak of a non-ictal arousal
    #: episode (movement / exertion).  Comparable to a weak seizure in rate,
    #: but *without* the suppression of beat-to-beat variability.
    arousal_hr_gain: float = 1.28
    #: RSA amplitude multiplier during arousals (deeper breathing slightly
    #: increases respiratory sinus arrhythmia).
    arousal_rsa_gain: float = 1.1
    #: Heart-rate increase at the peak of a stress / vagal-withdrawal episode
    #: (modest compared to seizures and arousals).
    stress_hr_gain: float = 1.08
    #: Residual fraction of RSA retained at the peak of a stress episode
    #: (vagal withdrawal without the full ictal signature).
    stress_rsa_suppression: float = 0.5
    #: Probability that any given beat is an ectopic (premature) beat; the
    #: following beat shows a compensatory pause.  Ectopy corrupts the
    #: short-term variability features of the affected windows, which is a
    #: major noise source for wearable-ECG analytics.
    ectopic_rate: float = 0.004
    #: Fractional prematurity of an ectopic beat (0.35 = 35% early).
    ectopic_prematurity: float = 0.35
    #: Sampling rate of the internal instantaneous heart-rate grid (Hz).
    fs: float = 4.0


@dataclass
class RRSeries:
    """Beat sequence produced by the IPFM model.

    Attributes
    ----------
    beat_times_s:
        Time of each detected beat (R peak), in seconds from session start.
    rr_s:
        RR intervals in seconds; ``rr_s[i] = beat_times_s[i+1] - beat_times_s[i]``
        so it has one element fewer than ``beat_times_s``.
    instantaneous_hr_bpm:
        The underlying instantaneous heart rate on the uniform grid ``t``.
    t:
        Uniform time grid of the instantaneous heart rate.
    """

    beat_times_s: np.ndarray
    rr_s: np.ndarray
    instantaneous_hr_bpm: np.ndarray
    t: np.ndarray

    @property
    def n_beats(self) -> int:
        return int(self.beat_times_s.shape[0])

    def mean_hr_bpm(self) -> float:
        """Average heart rate over the whole session."""
        if self.rr_s.size == 0:
            return float("nan")
        return float(60.0 / np.mean(self.rr_s))


def _ou_drift(
    n: int, dt: float, tau_s: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    x = np.zeros(n)
    if tau_s <= 0 or sigma <= 0:
        return x
    alpha = np.exp(-dt / tau_s)
    scale = sigma * np.sqrt(1.0 - alpha**2)
    for i in range(1, n):
        x[i] = alpha * x[i - 1] + scale * rng.standard_normal()
    return x


def generate_rr_series(
    duration_s: float,
    seizures: Sequence[Seizure],
    respiration: RespirationSignal,
    rng: np.random.Generator,
    params: RRModelParams | None = None,
    base_hr_bpm: float | None = None,
    arousals: Sequence[Seizure] = (),
    stress_episodes: Sequence[Seizure] = (),
    hr_response: float = 1.0,
    rsa_response: float = 1.0,
) -> RRSeries:
    """Generate a beat sequence for one recording session.

    Parameters
    ----------
    duration_s:
        Session length in seconds.
    seizures:
        Annotated seizures; they modulate heart rate and variability through
        the shared seizure envelope.
    respiration:
        The session's respiration process, used to produce respiratory sinus
        arrhythmia coherent with the EDR signal.
    rng:
        NumPy random generator.
    params:
        Model parameters.
    base_hr_bpm:
        Patient-specific baseline heart rate; when omitted the population
        baseline from ``params`` is used.
    arousals:
        Non-ictal arousal episodes (movement, exertion).  They raise the heart
        rate — sometimes as much as a weak seizure — but do *not* suppress
        respiratory sinus arrhythmia, so distinguishing them from seizures
        requires combining rate and variability features.
    stress_episodes:
        Non-ictal vagal-withdrawal episodes; they suppress RSA with only a
        small heart-rate increase, i.e. the complementary confounder to the
        arousals.
    hr_response, rsa_response:
        Patient-specific strengths (0..1) of the ictal heart-rate response and
        of the ictal RSA suppression.  Clinically, some patients express
        seizures mainly through tachycardia and others mainly through loss of
        beat-to-beat variability; the mixture of both phenotypes in one cohort
        is what makes a single linear decision boundary inadequate.

    Returns
    -------
    :class:`RRSeries`
    """
    if params is None:
        params = RRModelParams()
    fs = params.fs
    n = int(np.ceil(duration_s * fs)) + 1
    t = np.arange(n) / fs
    dt = 1.0 / fs

    hr0 = params.base_hr_bpm if base_hr_bpm is None else base_hr_bpm
    # Variability suppression follows the unweighted envelope; the rate
    # response is scaled by each seizure's intensity.
    envelope = seizure_envelope(t, seizures)
    rate_envelope = seizure_envelope(t, seizures, use_intensity=True)
    if len(arousals):
        arousal_env = seizure_envelope(t, arousals, use_intensity=True)
    else:
        arousal_env = np.zeros_like(t)
    stress_env = (
        seizure_envelope(t, stress_episodes, use_intensity=True)
        if len(stress_episodes)
        else np.zeros_like(t)
    )

    # Low-frequency (Mayer wave) oscillation with a slowly wandering phase.
    lf_phase = 2.0 * np.pi * params.lf_frequency_hz * t + 0.5 * np.cumsum(
        _ou_drift(n, dt, 60.0, 0.05, rng)
    )
    lf_gain = 1.0 - (1.0 - params.ictal_lf_suppression) * envelope
    lf = params.lf_amplitude * lf_gain * np.sin(lf_phase)

    # Respiratory sinus arrhythmia: phase-locked to the respiration waveform,
    # suppressed during seizures (scaled by the patient's RSA response) and
    # during stress episodes, slightly enhanced during arousals.
    resp_wave = respiration.value_at(t)
    resp_depth = np.maximum(respiration.depth_at(t), 1e-3)
    rsa_gain = 1.0 - (1.0 - params.ictal_rsa_suppression) * rsa_response * envelope
    rsa_gain *= 1.0 + (params.arousal_rsa_gain - 1.0) * arousal_env
    rsa_gain *= 1.0 - (1.0 - params.stress_rsa_suppression) * stress_env
    rsa = params.rsa_amplitude * rsa_gain * resp_wave / np.maximum(resp_depth.max(), 1e-3)

    # Slow fractal-like drift plus white jitter.
    drift = _ou_drift(n, dt, params.drift_tau_s, params.drift_amplitude, rng)
    jitter = params.jitter_amplitude * rng.standard_normal(n)

    # Ictal tachycardia (scaled by the patient's rate response) plus benign
    # arousal / stress tachycardia.
    hr_gain = 1.0 + (params.ictal_hr_gain - 1.0) * hr_response * rate_envelope
    hr_gain *= 1.0 + (params.arousal_hr_gain - 1.0) * arousal_env
    hr_gain *= 1.0 + (params.stress_hr_gain - 1.0) * stress_env

    hr_bpm = hr0 * hr_gain * (1.0 + lf + rsa + drift + jitter)
    hr_bpm = np.clip(hr_bpm, 35.0, 190.0)

    # IPFM: emit a beat every time the integrated rate crosses an integer.
    rate_hz = hr_bpm / 60.0
    integrated = np.concatenate(([0.0], np.cumsum(rate_hz) * dt))
    t_ext = np.concatenate((t, [t[-1] + dt]))
    n_beats = int(np.floor(integrated[-1]))
    if n_beats < 2:
        raise ValueError("session too short to contain at least two beats")
    beat_indices = np.arange(1, n_beats + 1, dtype=float)
    beat_times = np.interp(beat_indices, integrated, t_ext)
    beat_times = beat_times[beat_times <= duration_s]

    beat_times = _inject_ectopic_beats(beat_times, params, rng)

    rr = np.diff(beat_times)
    return RRSeries(
        beat_times_s=beat_times,
        rr_s=rr,
        instantaneous_hr_bpm=hr_bpm,
        t=t,
    )


def _inject_ectopic_beats(
    beat_times: np.ndarray, params: RRModelParams, rng: np.random.Generator
) -> np.ndarray:
    """Make a small random fraction of beats premature (ectopic).

    A premature beat arrives early by ``ectopic_prematurity`` of the current
    RR interval; the next sinus beat is unchanged, which produces the classic
    short-interval / compensatory-pause pattern that inflates the short-term
    variability statistics of the affected analysis windows.
    """
    if params.ectopic_rate <= 0.0 or beat_times.size < 3:
        return beat_times
    beat_times = beat_times.copy()
    candidates = np.nonzero(rng.random(beat_times.size - 2) < params.ectopic_rate)[0] + 1
    for idx in candidates:
        rr_prev = beat_times[idx] - beat_times[idx - 1]
        beat_times[idx] -= params.ectopic_prematurity * rr_prev
    # Prematurity never reorders beats (shift < RR), but guard anyway.
    return np.sort(beat_times)
