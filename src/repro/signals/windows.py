"""Three-minute analysis windows and their seizure labels.

The paper extracts one 53-dimensional feature vector per three-minute ECG
window; windows overlapping a seizure are labelled ``+1`` and all others
``-1``.  Because seizures are rare, the positive class is heavily
under-represented — exactly the situation in which sensitivity/specificity
and their geometric mean are the appropriate figures of merit.

To give the training folds a workable number of positive examples, windows
around seizures may be generated with a finer stride (``seizure_step_s``)
than background windows (``step_s``); this is a standard practice for rare
event detection and does not change the evaluation protocol (folds are still
split by recording session).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from repro.signals.dataset import Recording
from repro.signals.seizures import Seizure

__all__ = [
    "Window",
    "WindowingParams",
    "WindowerState",
    "extract_windows",
    "window_label",
    "BeatWindow",
    "StreamingWindower",
]


@dataclass
class WindowingParams:
    """Windowing configuration."""

    #: Window length in seconds (the paper uses three-minute windows).
    window_s: float = 180.0
    #: Stride between consecutive background windows.
    step_s: float = 180.0
    #: Stride used inside the neighbourhood of a seizure, to enrich the
    #: positive class.  Set equal to ``step_s`` to disable enrichment.
    seizure_step_s: float = 45.0
    #: Half-width of the neighbourhood around each seizure in which the finer
    #: stride is applied, in seconds.
    seizure_context_s: float = 240.0
    #: Minimum fraction of the window that must be ictal for a positive label.
    min_ictal_fraction: float = 0.05
    #: Windows with fewer beats than this are discarded as unusable.
    min_beats: int = 60


@dataclass(frozen=True)
class Window:
    """A labelled analysis window of one recording."""

    patient_id: int
    session_id: int
    start_s: float
    end_s: float
    label: int
    beat_slice: slice

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def beats_of(self, recording: Recording) -> np.ndarray:
        """Beat times of the recording that fall inside the window."""
        return recording.beat_times_s[self.beat_slice]

    def rr_of(self, recording: Recording) -> np.ndarray:
        """RR intervals whose *starting* beat falls inside the window."""
        start, stop = self.beat_slice.start, self.beat_slice.stop
        stop_rr = min(stop, recording.rr_s.shape[0])
        return recording.rr_s[start:stop_rr]

    def r_amplitudes_of(self, recording: Recording) -> np.ndarray:
        """R-wave amplitudes of the beats inside the window."""
        return recording.r_amplitudes_mv[self.beat_slice]


def window_label(
    start_s: float, end_s: float, seizures: Sequence[Seizure], min_ictal_fraction: float
) -> int:
    """Label of a window: ``+1`` if it overlaps a seizure enough, else ``-1``."""
    for seizure in seizures:
        if seizure.ictal_fraction(start_s, end_s) >= min_ictal_fraction:
            return 1
        # Very short windows fully inside the ictal phase also count.
        if seizure.overlaps(start_s, end_s) and seizure.duration_s >= (end_s - start_s):
            return 1
    return -1


def _candidate_starts(
    duration_s: float, seizures: Sequence[Seizure], params: WindowingParams
) -> np.ndarray:
    """Start times of all candidate windows (background grid + seizure-context grid)."""
    last_start = duration_s - params.window_s
    if last_start < 0:
        return np.empty(0)
    starts = list(np.arange(0.0, last_start + 1e-9, params.step_s))
    if params.seizure_step_s < params.step_s:
        for seizure in seizures:
            lo = max(0.0, seizure.onset_s - params.seizure_context_s - params.window_s)
            hi = min(last_start, seizure.offset_s + params.seizure_context_s)
            if hi >= lo:
                starts.extend(np.arange(lo, hi + 1e-9, params.seizure_step_s))
    starts = np.unique(np.round(np.asarray(starts), 3))
    return starts


@dataclass(frozen=True)
class BeatWindow:
    """A completed streaming analysis window carrying its own beat data.

    Unlike :class:`Window`, which references a full :class:`Recording` by a
    beat slice, a :class:`BeatWindow` is self-contained — exactly what a
    streaming monitor has at hand when a window closes.  ``rr_s`` follows the
    :meth:`Window.rr_of` convention: it contains every RR interval whose
    *starting* beat falls inside the window, so it includes the interval
    spanning the window boundary whenever the first beat after the window has
    already been observed.

    ``first_beat_index`` is the absolute index (counting every beat ever
    pushed into the emitting :class:`StreamingWindower`, across retirements
    and resets) of ``beat_times_s[0]``.  Overlapping windows emitted by one
    windower therefore share absolute beat indices, which is the key of the
    overlap-aware feature cache
    (:class:`repro.features.cache.BeatPartialCache`).  ``-1`` means "unknown
    provenance" (hand-built windows); caches fall back to a full recompute.
    """

    start_s: float
    end_s: float
    beat_times_s: np.ndarray
    rr_s: np.ndarray
    r_amplitudes_mv: np.ndarray
    first_beat_index: int = -1

    @property
    def n_beats(self) -> int:
        return int(self.beat_times_s.shape[0])

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True, eq=False)
class WindowerState:
    """Picklable state of a :class:`StreamingWindower` mid-stream.

    The buffered beats that have not yet closed a window, the start of the
    next window and the stream clock — everything needed to resume windowing
    with no window lost, duplicated or shifted.  Captured by
    :meth:`StreamingWindower.snapshot`, revived by
    :meth:`StreamingWindower.from_snapshot`.
    """

    params: WindowingParams
    beat_times_s: np.ndarray
    r_amplitudes_mv: np.ndarray
    window_start_s: float
    clock_s: float
    #: Absolute index of ``beat_times_s[0]`` in the windower's lifetime beat
    #: stream (see :attr:`BeatWindow.first_beat_index`); preserved across
    #: migration so a revived monitor keeps emitting windows whose beat
    #: indices extend the original stream instead of restarting at zero.
    base_beat_index: int = 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, WindowerState):
            return NotImplemented
        return (
            self.params == other.params
            and np.array_equal(self.beat_times_s, other.beat_times_s)
            and np.array_equal(self.r_amplitudes_mv, other.r_amplitudes_mv)
            and self.window_start_s == other.window_start_s
            and self.clock_s == other.clock_s
            and self.base_beat_index == other.base_beat_index
        )


class StreamingWindower:
    """Incremental assembly of analysis windows from an incoming beat stream.

    Beats (times + R amplitudes) are pushed as they are detected; completed
    windows are emitted as :class:`BeatWindow` objects.  Consecutive windows
    start ``params.step_s`` apart (the default ``step_s == window_s``
    reproduces the non-overlapping three-minute grid of the monitor).

    A window is emitted once either

    * a beat at or past its end has been observed (so the boundary RR
      interval is available), or
    * the stream clock has advanced ``boundary_grace_s`` past its end (no
      boundary beat is coming soon — e.g. a detector dropout).

    The stream clock is advanced implicitly by pushed beats and explicitly by
    :meth:`advance`, which a caller should feed with the *finalised* time of
    its beat detector.

    Internally the buffered beats live in a preallocated power-of-two ring
    (times, amplitudes and the RR interval starting at each beat), so a push
    costs a bounded copy of the *new* beats instead of an
    ``np.concatenate`` reallocation of the whole buffer, and each RR
    interval is computed exactly once per beat pair rather than once per
    overlapping window.  Emitted windows are bit-identical to the previous
    concatenating implementation (pinned by the hot-path property suite).
    """

    #: Extra stream time to wait for a window-boundary beat before closing a
    #: window on the clock alone.
    boundary_grace_s: float = 2.0

    #: Starting ring capacity; grows by doubling when a push outruns it.
    #: Kept small enough that tests can exercise wraparound cheaply.
    _INITIAL_CAPACITY = 1024

    #: Ring geometry and the derived RR ring are not part of the snapshot:
    #: :meth:`snapshot` stores the *linearised* logical arrays, and
    #: :meth:`from_snapshot` rebuilds the ring (and recomputes the RR ring
    #: from the beat times, bit-identically) at whatever capacity fits.
    _SNAPSHOT_EXCLUDE = ("_cap", "_head", "_rr_buf")

    def __init__(self, params: WindowingParams | None = None) -> None:
        self.params = params or WindowingParams()
        if self.params.step_s <= 0:
            raise ValueError("step_s must be positive")
        self._cap = int(self._INITIAL_CAPACITY)
        if self._cap < 2 or (self._cap & (self._cap - 1)) != 0:
            raise ValueError("ring capacity must be a power of two >= 2")
        self._times_buf = np.empty(self._cap)
        self._amps_buf = np.empty(self._cap)
        #: ``_rr_buf[phys(i)] = times[i+1] - times[i]``, valid for logical
        #: ``i`` in ``[0, count-1)``; the difference is computed once when
        #: beat ``i+1`` arrives and reused by every window containing it.
        self._rr_buf = np.empty(self._cap)
        self._head = 0
        self._count = 0
        #: Absolute beat index of logical element 0 (monotone over the
        #: windower's lifetime, including across :meth:`reset`).
        self._base = 0
        self._start = 0.0
        self._clock = 0.0

    @property
    def window_start_s(self) -> float:
        """Start time of the next window to be emitted."""
        return self._start

    @property
    def buffered_beats(self) -> int:
        """Number of beats currently held in the ring."""
        return self._count

    # ------------------------------------------------------- ring primitives
    def _phys(self, logical: int) -> int:
        return (self._head + logical) & (self._cap - 1)

    def _copy_out(self, buf: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Contiguous copy of logical range ``[lo, hi)`` of a ring buffer."""
        n = hi - lo
        if n <= 0:
            return np.empty(0)
        out = np.empty(n)
        p0 = self._phys(lo)
        straight = min(n, self._cap - p0)
        out[:straight] = buf[p0 : p0 + straight]
        if straight < n:
            out[straight:] = buf[: n - straight]
        return out

    def _write(self, buf: np.ndarray, lo: int, values: np.ndarray) -> None:
        """Write ``values`` at logical positions ``[lo, lo + len(values))``."""
        n = values.shape[0]
        if n == 0:
            return
        p0 = self._phys(lo)
        straight = min(n, self._cap - p0)
        buf[p0 : p0 + straight] = values[:straight]
        if straight < n:
            buf[: n - straight] = values[straight:]

    def _search(self, value: float, side: str) -> int:
        """``np.searchsorted`` over the logical (wrapped) beat-time order."""
        straight = min(self._count, self._cap - self._head)
        first_seg = self._times_buf[self._head : self._head + straight]
        idx = int(np.searchsorted(first_seg, value, side=side))
        if idx < straight or straight == self._count:
            return idx
        second_seg = self._times_buf[: self._count - straight]
        return straight + int(np.searchsorted(second_seg, value, side=side))

    def _grow(self, needed: int) -> None:
        """Reallocate to the next power of two >= ``needed``, linearised."""
        cap = self._cap
        while cap < needed:
            cap *= 2
        for name in ("_times_buf", "_amps_buf", "_rr_buf"):
            new_buf = np.empty(cap)
            new_buf[: self._count] = self._copy_out(getattr(self, name), 0, self._count)
            setattr(self, name, new_buf)
        self._cap = cap
        self._head = 0

    # ------------------------------------------------------- snapshot / reset
    def snapshot(self) -> WindowerState:
        """Capture the partial-window state as a picklable value object."""
        return WindowerState(
            params=replace(self.params),
            beat_times_s=self._copy_out(self._times_buf, 0, self._count),
            r_amplitudes_mv=self._copy_out(self._amps_buf, 0, self._count),
            window_start_s=self._start,
            clock_s=self._clock,
            base_beat_index=self._base,
        )

    @classmethod
    def from_snapshot(cls, state: WindowerState) -> "StreamingWindower":
        """Revive a windower mid-stream, emitting exactly the windows the
        original would have emitted for any continuation of the beat stream."""
        windower = cls(replace(state.params))
        times = np.array(state.beat_times_s, dtype=float, copy=True).ravel()
        amps = np.array(state.r_amplitudes_mv, dtype=float, copy=True).ravel()
        if times.shape[0] + 1 > windower._cap:
            windower._grow(times.shape[0] + 1)
        windower._write(windower._times_buf, 0, times)
        windower._write(windower._amps_buf, 0, amps)
        if times.shape[0] > 1:
            windower._write(windower._rr_buf, 0, np.diff(times))
        windower._count = int(times.shape[0])
        windower._base = int(getattr(state, "base_beat_index", 0))
        windower._start = float(state.window_start_s)
        windower._clock = float(state.clock_s)
        return windower

    def reset(self, start_s: float) -> int:
        """Drop every buffered beat and restart the window grid at ``start_s``.

        The recovery primitive for sequence gaps (lossy transport): windows
        spanning the gap are abandoned instead of being emitted with a hole
        in their beat data.  The absolute beat index keeps counting past the
        dropped beats, so downstream per-beat caches can never alias a
        pre-gap beat with a post-gap one.

        Returns the number of grid windows abandoned by the restart — the
        window starts in ``[old_start, start_s)`` that now can never be
        emitted (0 when restarting at or before the current window).
        """
        start_s = float(start_s)
        step = self.params.step_s
        abandoned = max(int(math.ceil((start_s - self._start) / step - 1e-9)), 0)
        self._base += self._count
        self._count = 0
        self._head = 0
        self._start = start_s
        self._clock = max(self._clock, start_s)
        return abandoned

    # ---------------------------------------------------------------- stream
    def push(
        self, beat_times_s: np.ndarray, r_amplitudes: np.ndarray, now_s: float | None = None
    ) -> List[BeatWindow]:
        """Add newly detected beats (sorted, after all previous ones)."""
        beat_times_s = np.asarray(beat_times_s, dtype=float).ravel()
        r_amplitudes = np.asarray(r_amplitudes, dtype=float).ravel()
        if beat_times_s.shape != r_amplitudes.shape:
            raise ValueError("beat times and amplitudes must have the same length")
        if beat_times_s.size:
            last_time = (
                self._times_buf[self._phys(self._count - 1)] if self._count else None
            )
            if last_time is not None and beat_times_s[0] < last_time:
                raise ValueError("beats must be pushed in non-decreasing time order")
            incoming = int(beat_times_s.shape[0])
            if self._count + incoming > self._cap:
                self._grow(self._count + incoming)
            self._write(self._times_buf, self._count, beat_times_s)
            self._write(self._amps_buf, self._count, r_amplitudes)
            # RR intervals: the seam pair (old last beat -> new first beat)
            # plus the pairs inside the pushed block.  Same subtractions a
            # window-time np.diff would perform, done once per pair.
            if last_time is not None:
                self._rr_buf[self._phys(self._count - 1)] = beat_times_s[0] - last_time
            if incoming > 1:
                self._write(self._rr_buf, self._count, np.diff(beat_times_s))
            self._count += incoming
            self._clock = max(self._clock, float(beat_times_s[-1]))
        if now_s is not None:
            self._clock = max(self._clock, float(now_s))
        return self._emit(final=False)

    def advance(self, now_s: float) -> List[BeatWindow]:
        """Advance the stream clock without new beats (detector finalised time)."""
        self._clock = max(self._clock, float(now_s))
        return self._emit(final=False)

    def flush(self) -> List[BeatWindow]:
        """Emit every fully elapsed window; the trailing partial one is dropped."""
        return self._emit(final=True)

    def _emit(self, final: bool) -> List[BeatWindow]:
        out: List[BeatWindow] = []
        while True:
            end = self._start + self.params.window_s
            has_boundary_beat = (
                self._count > 0 and self._times_buf[self._phys(self._count - 1)] >= end
            )
            closed_by_clock = self._clock >= (end if final else end + self.boundary_grace_s)
            if not (has_boundary_beat or closed_by_clock):
                break
            first = self._search(self._start, side="left")
            last = self._search(end, side="left")
            beats = self._copy_out(self._times_buf, first, last)
            if last < self._count:
                rr = self._copy_out(self._rr_buf, first, last)
            else:
                rr = self._copy_out(self._rr_buf, first, max(first, last - 1))
            out.append(
                BeatWindow(
                    start_s=float(self._start),
                    end_s=float(end),
                    beat_times_s=beats,
                    rr_s=rr,
                    r_amplitudes_mv=self._copy_out(self._amps_buf, first, last),
                    first_beat_index=self._base + first,
                )
            )
            self._start += self.params.step_s
            keep = self._search(self._start, side="left")
            if keep > 0:
                self._head = self._phys(keep)
                self._count -= keep
                self._base += keep
        return out


def extract_windows(recording: Recording, params: WindowingParams | None = None) -> List[Window]:
    """Slice a recording into labelled analysis windows.

    Parameters
    ----------
    recording:
        The recording session to window.
    params:
        Windowing configuration; the defaults reproduce the paper's
        three-minute windows with positive-class enrichment around seizures.

    Returns
    -------
    list of :class:`Window`, ordered by start time.
    """
    if params is None:
        params = WindowingParams()
    starts = _candidate_starts(recording.duration_s, recording.seizures, params)
    beat_times = recording.beat_times_s

    windows: List[Window] = []
    for start in starts:
        end = start + params.window_s
        first = int(np.searchsorted(beat_times, start, side="left"))
        last = int(np.searchsorted(beat_times, end, side="right"))
        if last - first < params.min_beats:
            continue
        label = window_label(start, end, recording.seizures, params.min_ictal_fraction)
        windows.append(
            Window(
                patient_id=recording.patient_id,
                session_id=recording.session_id,
                start_s=float(start),
                end_s=float(end),
                label=label,
                beat_slice=slice(first, last),
            )
        )
    return windows
