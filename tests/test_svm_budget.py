"""Unit tests for the support-vector budgeting loop."""

import numpy as np
import pytest

from repro.svm.budget import BudgetParams, budget_training_set, train_budgeted_svm
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import train_svm


class TestBudgetTrainingSet:
    def test_budget_enforced(self, feature_matrix):
        budget = 20
        model = train_budgeted_svm(feature_matrix.X, feature_matrix.y, budget=budget)
        assert model.n_support_vectors <= budget

    def test_no_change_when_budget_not_binding(self, feature_matrix, quadratic_model):
        generous = quadratic_model.n_support_vectors + 50
        model, keep_mask = budget_training_set(
            feature_matrix.X,
            feature_matrix.y,
            budget_params=BudgetParams(budget=generous),
        )
        assert np.all(keep_mask)
        assert model.n_support_vectors == quadratic_model.n_support_vectors

    def test_keep_mask_shrinks_with_budget(self, feature_matrix):
        _, mask_large = budget_training_set(
            feature_matrix.X, feature_matrix.y, budget_params=BudgetParams(budget=40)
        )
        _, mask_small = budget_training_set(
            feature_matrix.X, feature_matrix.y, budget_params=BudgetParams(budget=15)
        )
        assert mask_small.sum() <= mask_large.sum()
        assert mask_small.sum() < feature_matrix.n_samples

    def test_both_classes_survive(self, feature_matrix):
        _, keep_mask = budget_training_set(
            feature_matrix.X, feature_matrix.y, budget_params=BudgetParams(budget=6)
        )
        kept_labels = feature_matrix.y[keep_mask]
        assert np.any(kept_labels == 1) and np.any(kept_labels == -1)

    def test_single_removal_variant(self, feature_matrix):
        budget = max(2, train_svm(feature_matrix.X, feature_matrix.y).n_support_vectors - 3)
        model, _ = budget_training_set(
            feature_matrix.X,
            feature_matrix.y,
            budget_params=BudgetParams(budget=budget, chunk_fraction=0.0),
        )
        assert model.n_support_vectors <= budget

    def test_budget_below_two_rejected(self, feature_matrix):
        with pytest.raises(ValueError):
            budget_training_set(
                feature_matrix.X, feature_matrix.y, budget_params=BudgetParams(budget=1)
            )

    def test_budgeted_model_still_classifies(self, feature_matrix):
        model = train_budgeted_svm(feature_matrix.X, feature_matrix.y, budget=25)
        accuracy = np.mean(model.predict(feature_matrix.X) == feature_matrix.y)
        assert accuracy > 0.7

    def test_removed_vectors_have_low_norm(self, feature_matrix):
        """The vectors dropped first should be low-norm ones of the full model."""
        full = train_svm(feature_matrix.X, feature_matrix.y, kernel=PolynomialKernel(degree=2))
        norms = full.sv_norms()
        budget = full.n_support_vectors - max(3, full.n_support_vectors // 10)
        _, keep_mask = budget_training_set(
            feature_matrix.X,
            feature_matrix.y,
            budget_params=BudgetParams(budget=budget, chunk_fraction=0.25),
        )
        dropped_rows = set(np.nonzero(~keep_mask)[0].tolist())
        # The very first removal round drops the lowest-norm SVs of the full
        # model, so the overall lowest-norm SV must be among the dropped rows
        # (later rounds operate on re-trained models and may drop rows that
        # were not support vectors of the original one).
        lowest_norm_row = int(full.support_indices[int(np.argmin(norms))])
        assert lowest_norm_row in dropped_rows
