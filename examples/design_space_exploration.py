#!/usr/bin/env python3
"""Design-space exploration: reproduce the paper's optimisation flow.

This example mirrors Section III of the paper on the synthetic cohort:

* sweep the feature-set size with correlation-driven selection (Figure 4),
* sweep the support-vector budget (Figure 5),
* explore the (Dbits, Abits) quantisation grid (Figure 6), and
* combine the chosen design points into the final pipeline and compare it
  with the 64/32/16-bit homogeneous-scaling references (Figure 7).

Each stage prints the GM / energy / area trade-off so the knees of the curves
and the combined gains can be compared with the paper.

Run with:  python examples/design_space_exploration.py  [--profile paper]
"""

import argparse

from repro.core.combined import CombinedFlowConfig
from repro.experiments import fig4_features, fig5_svbudget, fig6_bitwidth, fig7_combined
from repro.experiments.data import PROFILES, get_experiment_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    args = parser.parse_args()

    data = get_experiment_data(args.profile)
    features = data.features
    print("Cohort:", data.cohort.summary())

    # ------------------------------------------------- Figure 4: feature count
    fig4 = fig4_features.run(features, feature_counts=(53, 38, 30, 23, 15, 8))
    print()
    print(fig4_features.format_series(fig4))

    # ------------------------------------------------- Figure 5: SV budget
    fig5 = fig5_svbudget.run(features, budgets=(120, 68, 50, 25, 12))
    print()
    print(fig5_svbudget.format_series(fig5))

    # ------------------------------------------------- Figure 6: bit widths
    fig6 = fig6_bitwidth.run(
        features,
        feature_bit_options=(7, 9, 11),
        coeff_bit_options=(13, 15, 17),
        homogeneous_widths=(9, 12, 16, 32),
    )
    print()
    print(fig6_bitwidth.format_grid(fig6))

    # ------------------------------------------------- Figure 7: combination
    fig7 = fig7_combined.run(
        features,
        config=CombinedFlowConfig(n_features=30, sv_budget=50, uniform_reference_widths=(32, 16)),
    )
    print()
    print(fig7_combined.format_bars(fig7))


if __name__ == "__main__":
    main()
