"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run(...)`` function that regenerates the rows or
series of the corresponding paper artefact on the synthetic cohort, and a
``format_*`` helper that renders them as a text table comparable to the paper:

* :mod:`repro.experiments.table1_kernels` — Table I (kernel comparison);
* :mod:`repro.experiments.fig3_correlation` — Figure 3 (correlation matrix);
* :mod:`repro.experiments.fig4_features`    — Figure 4 (feature-count sweep);
* :mod:`repro.experiments.fig5_svbudget`    — Figure 5 (SV-budget sweep);
* :mod:`repro.experiments.fig6_bitwidth`    — Figure 6 (Dbits × Abits grid);
* :mod:`repro.experiments.fig7_combined`    — Figure 7 (combined flow).

:mod:`repro.experiments.data` builds and caches the synthetic cohort and its
feature matrix for two profiles: ``quick`` (small, used by the test-suite and
the default benchmark run) and ``paper`` (7 patients / 24 sessions /
34 seizures, matching the structure of the clinical dataset).
:mod:`repro.experiments.runner` regenerates everything in one call.
"""

from repro.experiments.data import ExperimentData, get_experiment_data
from repro.experiments import (
    table1_kernels,
    fig3_correlation,
    fig4_features,
    fig5_svbudget,
    fig6_bitwidth,
    fig7_combined,
)

__all__ = [
    "ExperimentData",
    "get_experiment_data",
    "table1_kernels",
    "fig3_correlation",
    "fig4_features",
    "fig5_svbudget",
    "fig6_bitwidth",
    "fig7_combined",
]
