"""Core optimisation flows — the paper's contribution.

This package ties the substrates together into the explorations reported in
the paper:

* :mod:`repro.core.metrics` — sensitivity, specificity and their geometric
  mean (Equation 2), the figures of merit used throughout the paper;
* :mod:`repro.core.evaluation` — leave-one-session-out cross-validation
  (24 folds in the paper) over any model factory (float, budgeted or
  fixed-point);
* :mod:`repro.core.design_point` — the record tying classification quality to
  the hardware cost of a configuration;
* :mod:`repro.core.feature_selection` — correlation-driven iterative feature
  removal and the feature-count sweep (Figures 3 and 4);
* :mod:`repro.core.sv_budgeting` — the support-vector budget sweep (Figure 5);
* :mod:`repro.core.bitwidth_search` — the (Dbits, Abits) exploration and the
  homogeneous-scaling baseline (Figure 6);
* :mod:`repro.core.combined` — the sequential combination of all three
  techniques and the 64/32/16-bit reference pipelines (Figure 7).
"""

from repro.core.metrics import ClassificationMetrics, confusion_counts, geometric_mean
from repro.core.evaluation import (
    CrossValidationResult,
    FoldOutcome,
    leave_one_session_out,
    float_svm_factory,
    budgeted_svm_factory,
    quantized_svm_factory,
)
from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.feature_selection import (
    correlation_matrix,
    correlation_removal_order,
    select_features,
    feature_reduction_sweep,
)
from repro.core.sv_budgeting import sv_budget_sweep
from repro.core.bitwidth_search import bitwidth_grid_search, homogeneous_width_search
from repro.core.combined import CombinedFlowConfig, combined_optimisation_flow

__all__ = [
    "ClassificationMetrics",
    "confusion_counts",
    "geometric_mean",
    "CrossValidationResult",
    "FoldOutcome",
    "leave_one_session_out",
    "float_svm_factory",
    "budgeted_svm_factory",
    "quantized_svm_factory",
    "DesignPoint",
    "hardware_cost",
    "correlation_matrix",
    "correlation_removal_order",
    "select_features",
    "feature_reduction_sweep",
    "sv_budget_sweep",
    "bitwidth_grid_search",
    "homogeneous_width_search",
    "CombinedFlowConfig",
    "combined_optimisation_flow",
]
