"""Unit tests for the kernel functions and the feature scalers."""

import numpy as np
import pytest

from repro.svm.kernels import (
    GaussianKernel,
    Kernel,
    LinearKernel,
    PolynomialKernel,
    kernel_from_name,
)
from repro.svm.scaling import PowerOfTwoScaler, StandardScaler, make_scaler


@pytest.fixture()
def random_points():
    rng = np.random.default_rng(0)
    return rng.standard_normal((12, 5)), rng.standard_normal((7, 5))


class TestKernels:
    def test_linear_matches_matmul(self, random_points):
        a, b = random_points
        assert np.allclose(LinearKernel()(a, b), a @ b.T)

    def test_quadratic_matches_equation3(self, random_points):
        a, b = random_points
        expected = (a @ b.T + 1.0) ** 2
        assert np.allclose(PolynomialKernel(degree=2)(a, b), expected)

    def test_cubic_degree(self, random_points):
        a, b = random_points
        expected = (a @ b.T + 1.0) ** 3
        assert np.allclose(PolynomialKernel(degree=3)(a, b), expected)

    def test_gaussian_bounds_and_diagonal(self, random_points):
        a, _ = random_points
        gram = GaussianKernel(gamma=0.3)(a, a)
        assert np.all(gram <= 1.0 + 1e-12) and np.all(gram > 0.0)
        assert np.allclose(np.diag(gram), 1.0)

    def test_gaussian_default_gamma(self, random_points):
        a, b = random_points
        explicit = GaussianKernel(gamma=1.0 / 5)(a, b)
        default = GaussianKernel()(a, b)
        assert np.allclose(explicit, default)

    def test_diagonal_shortcut_matches_gram(self, random_points):
        a, _ = random_points
        for kernel in (LinearKernel(), PolynomialKernel(degree=2), GaussianKernel(gamma=0.2)):
            assert np.allclose(kernel.diagonal(a), np.diag(kernel(a, a)))

    def test_gram_symmetry_and_psd(self, random_points):
        a, _ = random_points
        for kernel in (LinearKernel(), PolynomialKernel(degree=2), GaussianKernel()):
            gram = kernel(a, a)
            assert np.allclose(gram, gram.T)
            eigenvalues = np.linalg.eigvalsh(gram)
            assert eigenvalues.min() > -1e-8

    def test_kernel_from_name(self):
        assert isinstance(kernel_from_name("linear"), LinearKernel)
        assert kernel_from_name("quadratic").degree == 2
        assert kernel_from_name("cubic").degree == 3
        assert isinstance(kernel_from_name("rbf"), GaussianKernel)
        assert kernel_from_name("poly4").degree == 4

    def test_kernel_from_name_unknown(self):
        with pytest.raises(ValueError):
            kernel_from_name("sigmoid")

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)

    def test_kernel_names(self):
        assert PolynomialKernel(degree=2).name == "quadratic"
        assert PolynomialKernel(degree=3).name == "cubic"
        assert PolynomialKernel(degree=5).name == "poly5"

    def test_poly_without_degree_raises_helpful_error(self):
        # 'poly' with no/invalid suffix used to crash with an opaque int('')
        # ValueError; it must now raise the documented unknown-name error.
        for bad in ("poly", "polyx", "poly2.5", "poly-1", "poly0"):
            with pytest.raises(ValueError, match="unknown kernel name"):
                kernel_from_name(bad)

    def test_base_diagonal_default_matches_gram(self, random_points):
        class OffsetKernel(Kernel):
            """Override __call__ only; diagonal() must fall back correctly."""

            def __call__(self, a, b):
                a = np.atleast_2d(np.asarray(a, dtype=float))
                b = np.atleast_2d(np.asarray(b, dtype=float))
                return a @ b.T + 0.5

        a, _ = random_points
        kernel = OffsetKernel()
        # Force several row blocks so the blocked path is exercised.
        kernel._DIAGONAL_BLOCK = 5
        assert np.allclose(kernel.diagonal(a), np.diag(kernel(a, a)))

    def test_base_diagonal_empty_input(self):
        class OffsetKernel(Kernel):
            def __call__(self, a, b):
                return np.atleast_2d(a) @ np.atleast_2d(b).T

        assert OffsetKernel().diagonal(np.empty((0, 4))).size == 0


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_scaled(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3)) * 7 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 3)))

    def test_select_features(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 5)) * np.array([1, 2, 3, 4, 5])
        scaler = StandardScaler().fit(X)
        reduced = scaler.select_features([1, 3])
        assert np.allclose(reduced.transform(X[:, [1, 3]]), scaler.transform(X)[:, [1, 3]])


class TestPowerOfTwoScaler:
    def test_scales_are_powers_of_two(self):
        rng = np.random.default_rng(4)
        X = rng.normal(scale=[0.01, 1.0, 50.0], size=(300, 3))
        scaler = PowerOfTwoScaler().fit(X)
        exponents = np.log2(scaler.scale_)
        assert np.allclose(exponents, np.round(exponents))

    def test_mean_is_not_removed(self):
        X = np.random.default_rng(5).normal(loc=10.0, scale=1.0, size=(200, 1))
        scaled = PowerOfTwoScaler().fit(X).transform(X)
        assert scaled.mean() > 5.0

    def test_scaled_std_near_one(self):
        rng = np.random.default_rng(6)
        X = rng.normal(scale=[0.02, 3.0, 400.0], size=(500, 3))
        scaled = PowerOfTwoScaler().fit(X).transform(X)
        assert np.all(scaled.std(axis=0) > 0.6)
        assert np.all(scaled.std(axis=0) < 1.5)

    def test_scale_exponents_accessor(self):
        X = np.random.default_rng(7).normal(scale=4.0, size=(500, 1))
        scaler = PowerOfTwoScaler().fit(X)
        assert scaler.scale_exponents()[0] == 2

    def test_make_scaler_factory(self):
        assert isinstance(make_scaler("standard"), StandardScaler)
        assert isinstance(make_scaler("pow2"), PowerOfTwoScaler)
        assert make_scaler("none") is None
        with pytest.raises(ValueError):
            make_scaler("quantile")
