#!/usr/bin/env python3
"""Wearable-monitor walkthrough: a heterogeneous, sharded monitoring fleet.

The two other examples start from pre-extracted feature matrices.  This one
exercises the *full* online signal path of Figure 1 of the paper at fleet
scale — and the paper's actual premise: every patient runs their own
*tailored* SVM design point.  On top of the :mod:`repro.serving` engine:

1. synthesise raw single-lead ECG traces for one monitored session per
   patient (the remaining sessions form the training data),
2. pick four design points of the combined optimisation flow (the 64-bit
   float reference, the paper's 9/15-bit point, an SV-budgeted 12/18-bit
   point and a feature-reduced 8/12-bit point) and build a
   :class:`~repro.serving.registry.ModelRegistry` straight from them —
   one trained/quantised backend per distinct configuration, each patient
   mapped to their point,
3. frame every ~30-second ECG chunk in the versioned binary wire format
   (float32 payload, CRC-protected, per-patient sequence numbers — see
   :mod:`repro.serving.wire`),
4. *push* the frames the way real nodes do: every patient opens its own TCP
   connection to an :class:`~repro.serving.ingest.IngestGateway`; the
   gateway's pump feeds a deliberately under-provisioned 2-shard
   :class:`~repro.serving.sharding.ShardedFleet` whose drains classify the
   pending windows of all patients in one vectorised call *per model group*
   (the registry is routing-invariant: a patient's model follows them to
   whichever shard the hash ring picks),
5. let the fleet scale **itself**: an
   :class:`~repro.serving.autoscale.AutoscaleController` wired into the
   gateway watches queue pressure, and when the sixteen concurrent nodes
   overwhelm two shards it reshards live — quiescing exactly the patients
   the hash ring reassigns, migrating their full monitor state and resuming
   delivery — zero frames or decisions lost, nodes never reconnect,
6. federate: replay four of the patients through a two-node
   :class:`~repro.serving.cluster.GatewayCluster` — producers connect to
   either node, a patient migrates live over the HANDOFF/STATE/ACK control
   frames mid-stream, a node is crash-killed and its patients revive from
   checkpoint + frame replay on the survivor — and the decisions come out
   identical to the single-host run, with the cluster-wide ledger balanced,
7. print the per-patient alarm summaries next to the expert annotations,
   plus the gateway's per-model drain ledger, and
8. report the energy each *design point* bills its wearers' accelerators —
   heterogeneous tailoring is exactly what makes this number per-patient.

Run with:  python examples/wearable_monitor.py
"""

import asyncio
import math

import numpy as np

from repro.core import DesignPoint, hardware_cost
from repro.features.extractor import FeatureMatrix, extract_cohort_features
from repro.hardware.accelerator import evaluate_accelerator
from repro.hardware.technology import TECH_40NM
from repro.quant import QuantizedSVMBackend
from repro.serving import (
    AnyOf,
    AutoscaleConfig,
    AutoscaleController,
    ChunkCountPolicy,
    GatewayCluster,
    IngestGateway,
    ModelRegistry,
    PendingWindowPolicy,
    ShardedFleet,
    decision_sort_key,
    encode_chunk,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import synthesize_ecg
from repro.signals.windows import WindowingParams, window_label

#: Monitored fleet size (one wireless node per patient) and the deliberately
#: under-provisioned starting shard count — the autoscaler grows it.
N_PATIENTS = 16
N_SHARDS = 2
#: Closed-loop autoscaling: the controller samples fleet + gateway queue
#: pressure after every delivered frame and reshards live when the smoothed
#: per-shard load leaves the hysteresis band.  Sixteen concurrent nodes
#: against two shards is an immediate overload, so the thresholds are tuned
#: for this burst (a real deployment would use seconds-scale half-lives and
#: cooldowns; the signals and machinery are identical).  Every autonomous
#: reshard quiesces exactly the patients the hash ring reassigns, migrates
#: their monitor state (DSP carry-over, partial windows, sequence positions,
#: queued windows) and resumes — with zero decision loss, pinned by the
#: ledger assertions below.
AUTOSCALE = AutoscaleConfig(
    min_shards=N_SHARDS,
    max_shards=8,
    high_pending_per_shard=4.0,
    low_pending_per_shard=0.25,
    cooldown_s=0.0,
    ewma_half_life_s=0.05,
)
#: Seconds of ECG per transmitted chunk (~30 s at 128 Hz).
CHUNK_SAMPLES = 3840
#: Drain whenever 32 windows are pending, or every 64 received frames,
#: whichever comes first.
DRAIN_POLICY = AnyOf([PendingWindowPolicy(32), ChunkCountPolicy(64)])
#: Per-patient gateway queue bound; "block" backpressure propagates to the
#: nodes through TCP flow control, so no frame is ever lost.
QUEUE_DEPTH = 8


def _point(name, n_features, n_sv, feature_bits, coeff_bits, per_feature=True):
    """A design point: configuration + the accelerator cost it implies."""
    report = hardware_cost(
        n_features=n_features,
        n_support_vectors=n_sv,
        feature_bits=feature_bits,
        coeff_bits=coeff_bits,
        per_feature_scaling=per_feature,
        datapath_cap_bits=None if per_feature else max(feature_bits, coeff_bits),
    )
    return DesignPoint(
        name=name,
        n_features=n_features,
        n_support_vectors=n_sv,
        feature_bits=feature_bits,
        coeff_bits=coeff_bits,
        sensitivity=float("nan"),
        specificity=float("nan"),
        gm=float("nan"),
        energy_nj=report.energy_nj,
        area_mm2=report.area_mm2,
    )


#: The four tailored configurations the fleet mixes (patients get point
#: ``pid % 4``): the float reference, the paper's 9/15-bit point, an
#: SV-budgeted mid-width point and a feature-reduced aggressive point.
DESIGN_POINTS = [
    _point("float64-reference", 53, 48, 64, 64, per_feature=False),
    _point("paper-9/15", 53, 48, 9, 15),
    _point("budget24-12/18", 53, 24, 12, 18),
    _point("lean30f-8/12", 30, 24, 8, 12),
]


async def stream_through_gateway(fleet, frames, autoscaler=None):
    """Push every node's frames through a real localhost TCP socket.

    One connection per wireless node, all sixteen concurrent — the gateway
    multiplexes them, applies per-patient backpressure and drives the
    sharded fleet's drain policy.  With an ``autoscaler``, the gateway also
    re-plans capacity after every delivered frame: when the controller's
    smoothed per-shard pressure crosses its high-water mark the fleet
    reshards *live*, mid-stream (every monitor holds partial-window DSP
    state at that moment) — no node ever reconnects or retransmits.
    Returns the canonically ordered decisions and the gateway's ledger.
    """
    gateway = IngestGateway(
        fleet, queue_depth=QUEUE_DEPTH, backpressure="block", autoscaler=autoscaler
    )
    host, port = await gateway.serve()

    async def node(patient_id, node_frames):
        _, writer = await asyncio.open_connection(host, port)
        for frame in node_frames:
            writer.write(frame)
            await writer.drain()
        writer.close()
        await writer.wait_closed()

    await asyncio.gather(*[node(pid, f) for pid, f in sorted(frames.items())])
    decisions = await gateway.stop()
    return decisions, gateway.stats()


async def federate_subset(registry, fs, frames):
    """Replay a patient subset through a two-node federated cluster.

    The full cross-host story in one pass: producers connect to *either*
    node's data-plane port (frames route to the owner cluster-wide), one
    patient migrates live over the HANDOFF/STATE/ACK control sockets while
    its producer keeps pushing, then one node is crash-killed and its
    patients revive on the survivor from their last drain checkpoint plus
    frame replay.  Returns the cluster's decisions and its ledger.
    """
    cluster = GatewayCluster(registry, fs, n_nodes=2, queue_depth=QUEUE_DEPTH)
    addresses = await cluster.serve()
    entries = [addresses[name] for name in sorted(addresses)]
    total = sum(len(chunks) for chunks in frames.values())

    async def push(patient_id, node_frames, entry):
        _, writer = await asyncio.open_connection(*entry)
        for frame in node_frames:
            writer.write(frame)
            await writer.drain()
        writer.close()
        await writer.wait_closed()

    async def settle(n):
        while cluster.stats().frames_routed < n:
            await asyncio.sleep(0.001)

    # First half of every stream, producers spread over both entry points.
    halves = {pid: len(chunks) // 2 for pid, chunks in frames.items()}
    await asyncio.gather(
        *[
            push(pid, frames[pid][: halves[pid]], entries[i % len(entries)])
            for i, pid in enumerate(sorted(frames))
        ]
    )
    await settle(sum(halves.values()))
    cluster.drain()  # classify + checkpoint every patient (kept by the cluster)

    # Live migration mid-stream: the patient's full DSP/window state ships
    # over the control socket, its producer keeps pushing afterwards.
    mover = sorted(frames)[0]
    source = cluster.node_of(mover)
    await cluster.handoff(mover, next(s for s in cluster.live_nodes if s != source))

    # Another quarter of every stream lands *after* the checkpoint...
    marks = {pid: halves[pid] + (len(frames[pid]) - halves[pid]) // 2 for pid in frames}
    await asyncio.gather(
        *[
            push(pid, frames[pid][halves[pid] : marks[pid]], entries[i % len(entries)])
            for i, pid in enumerate(sorted(frames))
        ]
    )
    await settle(sum(marks.values()))

    # ...then a node crash-stops: its patients revive on the survivor from
    # their last checkpoint, and the post-checkpoint frames replay from the
    # per-patient frame log — no state, frame or decision lost.
    victim = cluster.live_nodes[0]
    await cluster.kill_node(victim)

    survivor_entry = addresses["g%d" % cluster.live_nodes[0]]
    await asyncio.gather(
        *[push(pid, frames[pid][marks[pid] :], survivor_entry) for pid in sorted(frames)]
    )
    await settle(total)
    decisions = await cluster.stop()  # includes the mid-run drain's decisions
    return decisions, cluster.stats()


def main() -> None:
    # --------------------------------------------------------------- cohort
    params = CohortParams(
        n_patients=N_PATIENTS,
        n_sessions=2 * N_PATIENTS,
        session_duration_s=900.0,
        total_seizures=20,
        seed=42,
        render_ecg=False,
    )
    cohort = generate_cohort(params)

    # Monitor one session per patient (preferring sessions with a seizure);
    # every other session contributes to the training data.
    monitored = {}
    for patient in cohort.patients:
        sessions = sorted(patient.recordings, key=lambda r: -r.n_seizures)
        monitored[patient.patient_id] = sessions[0]
    monitored_sessions = {r.session_id for r in monitored.values()}

    features = extract_cohort_features(cohort)
    train_mask = ~np.isin(features.session_ids, sorted(monitored_sessions))
    train_features = FeatureMatrix(
        X=features.X[train_mask],
        y=features.y[train_mask],
        session_ids=features.session_ids[train_mask],
        patient_ids=features.patient_ids[train_mask],
        feature_names=features.feature_names,
    )

    print("Monitored fleet (%d patients):" % len(monitored))
    for patient_id, recording in sorted(monitored.items()):
        annotations = ", ".join(
            "onset %.0f s / %.0f s" % (s.onset_s, s.duration_s) for s in recording.seizures
        )
        print(
            "  patient %2d, session %2d: %d seizure(s)%s"
            % (
                patient_id,
                recording.session_id,
                recording.n_seizures,
                "  [%s]" % annotations if annotations else "",
            )
        )

    # ------------------------------------------- per-patient design points
    # Each patient runs their own tailored configuration; the registry trains
    # one backend per distinct design point (feature selection, SV budgeting,
    # quantisation — the combined flow's stages) and shares it between the
    # patients assigned to it.
    assignments = {pid: DESIGN_POINTS[pid % len(DESIGN_POINTS)] for pid in monitored}
    registry = ModelRegistry.from_design_points(assignments, train_features)
    print(
        "\nPer-patient model registry (%d backends, epoch %d):"
        % (len(registry.backends()), registry.epoch)
    )
    for point in DESIGN_POINTS:
        wearers = sorted(pid for pid, p in assignments.items() if p is point)
        backend = registry.backend_for(wearers[0])
        print("  %-18s -> %-22s  patients %s" % (point.name, _signature(backend), wearers))

    # --------------------------------------- raw ECG -> wire-format frames
    rng = np.random.default_rng(7)
    frames = {}
    for patient_id, recording in sorted(monitored.items()):
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        fs = ecg.fs
        frames[patient_id] = [
            encode_chunk(
                patient_id,
                seq,
                fs,
                ecg.ecg_mv[lo : lo + CHUNK_SAMPLES],
                dtype=np.float32,
            )
            for seq, lo in enumerate(range(0, ecg.ecg_mv.size, CHUNK_SAMPLES))
        ]
    n_frames = sum(len(chunks) for chunks in frames.values())
    n_bytes = sum(len(frame) for chunks in frames.values() for frame in chunks)
    print(
        "Encoded %d wire frames (%.1f MiB, float32 payload, ~%.0f s of ECG each)"
        % (n_frames, n_bytes / 2**20, CHUNK_SAMPLES / fs)
    )

    # -------------------- TCP gateway -> sharded streaming + inference
    fleet = ShardedFleet(registry, fs, n_shards=N_SHARDS, drain_policy=DRAIN_POLICY)
    by_shard = {}
    for patient_id in sorted(monitored):
        by_shard.setdefault(fleet.shard_of(patient_id), []).append(patient_id)
    print("Consistent-hash shard assignment (models follow their patients):")
    for shard in sorted(by_shard):
        print("  shard %d <- patients %s" % (shard, by_shard[shard]))
    print("Drain policy: %r" % DRAIN_POLICY)

    # Every node pushes its frames over its own TCP connection; the gateway
    # reassembles, queues and delivers them, polling the drain policy.  Every
    # drain classifies the pending windows in one vectorised call per model
    # group, whatever mix of design points is pending.  The autoscale
    # controller rides the same pump loop and grows the fleet live as the
    # burst overwhelms the two starting shards.
    controller = AutoscaleController(fleet, AUTOSCALE)
    decisions, gateway_stats = asyncio.run(
        stream_through_gateway(fleet, frames, autoscaler=controller)
    )
    print(
        "Closed-loop autoscaling: %d autonomous reshard(s), %d -> %d shards"
        " (monitor state, partial windows and queued frames migrated live):"
        % (len(controller.actions), N_SHARDS, fleet.n_shards)
    )
    for decision in controller.actions:
        print(
            "  %-4s -> %d shards  (%s, pressure %.1f windows/shard,"
            " %d patients migrated)"
            % (
                decision.action,
                decision.to_shards,
                decision.reason,
                decision.pressure,
                decision.moved,
            )
        )
    assert gateway_stats.reshards >= 1
    assert gateway_stats.autoscale_actions == len(controller.actions)
    assert max(d.to_shards for d in controller.actions) > N_SHARDS
    print(
        "Streamed %d frames over %d TCP connections through %d shards;"
        % (gateway_stats.frames_delivered, gateway_stats.connections, fleet.n_shards)
    )
    print(
        "  %d batched drains (final flush included), %.0f frames/s through the"
        " gateway, peak queue depth %d"
        % (
            gateway_stats.drains,
            gateway_stats.frames_per_s,
            gateway_stats.max_queue_depth,
        )
    )
    print("  windows classified per model:")
    for label in sorted(gateway_stats.drained_by_model):
        print("    %-24s %4d" % (label, gateway_stats.drained_by_model[label]))
    assert gateway_stats.fully_accounted and gateway_stats.frames_delivered == n_frames

    # --------------------------------------------- cross-host federation
    # Four of the patients again, this time across a two-node federated
    # cluster with live migration and a node crash mid-stream.  Federation
    # is invisible: the decisions match the single-host run bit for bit.
    subset = sorted(monitored)[:4]
    subset_frames = {pid: frames[pid] for pid in subset}
    cluster_decisions, cluster_stats = asyncio.run(federate_subset(registry, fs, subset_frames))
    print(
        "\nFederated replay of patients %s across 2 gateway nodes:"
        "\n  %d frames routed, %d handoff(s) over HANDOFF/STATE/ACK,"
        " %d node crash (%d frames replayed from checkpoint + log)"
        % (
            subset,
            cluster_stats.frames_routed,
            cluster_stats.handoffs,
            cluster_stats.node_deaths,
            cluster_stats.frames_replayed,
        )
    )
    assert cluster_stats.fully_accounted and cluster_stats.node_deaths == 1
    assert cluster_stats.handoffs == 1 and cluster_stats.frames_replayed > 0
    reference = sorted((d for d in decisions if d.patient_id in set(subset)), key=decision_sort_key)
    assert [
        (d.patient_id, d.start_s, d.end_s, d.usable, d.alarm)
        for d in cluster_decisions
    ] == [(d.patient_id, d.start_s, d.end_s, d.usable, d.alarm) for d in reference]
    for got, want in zip(cluster_decisions, reference):
        if got.score is None:
            assert want.score is None
        elif isinstance(registry.backend_for(got.patient_id), QuantizedSVMBackend):
            # Fixed-point design points are bit-exact across any batch
            # composition — federation cannot perturb them even one ULP.
            assert got.score == want.score
        else:
            # The float64 reference point is BLAS-batched: reduction order
            # (and so the last ULP) depends on batch composition.
            assert math.isclose(got.score, want.score, rel_tol=1e-9, abs_tol=1e-12)
    print(
        "  decisions identical to the single-host run (%d windows, bit-exact"
        " fixed-point scores); cluster ledger fully accounted"
        % len(cluster_decisions)
    )

    # ------------------------------------------------- per-patient timelines
    windowing = WindowingParams()
    print("\nPer-patient window summaries (three-minute windows):")
    n_windows = 0
    n_classified = 0
    n_correct = 0
    n_alarms = 0
    classified_by_patient = {pid: 0 for pid in monitored}
    for patient_id, recording in sorted(monitored.items()):
        events = []
        patient_correct = 0
        patient_classified = 0
        for decision in [d for d in decisions if d.patient_id == patient_id]:
            truth = window_label(
                decision.start_s,
                decision.end_s,
                recording.seizures,
                windowing.min_ictal_fraction,
            )
            predicted = 1 if decision.alarm else -1
            n_windows += 1
            n_classified += int(decision.usable)
            n_alarms += int(decision.alarm)
            correct = decision.usable and predicted == truth
            n_correct += int(correct)
            patient_classified += int(decision.usable)
            patient_correct += int(correct)
            if decision.alarm or truth == 1:
                status = (
                    "ALARM, seizure annotated"
                    if decision.alarm and truth == 1
                    else ("FALSE ALARM" if decision.alarm else "MISSED seizure")
                )
                events.append(
                    "    %5.0f - %5.0f s   %s" % (decision.start_s, decision.end_s, status)
                )
        classified_by_patient[patient_id] = patient_classified
        print(
            "  patient %2d [%s]: %d/%d windows correct%s"
            % (
                patient_id,
                assignments[patient_id].name,
                patient_correct,
                patient_classified,
                "" if events else ", quiet session",
            )
        )
        for line in events:
            print(line)
    print(
        "\nFleet window accuracy: %d / %d classified (%d unusable), %d alarm(s) raised"
        % (n_correct, n_classified, n_windows - n_classified, n_alarms)
    )

    # ----------------------------------------------------------- energy bill
    # Tailoring is what makes the energy bill per-patient: each wearer's
    # accelerator is sized by their own design point, so the fleet's budget
    # is the sum of heterogeneous per-window costs.
    print(
        "\nAccelerator model (%s), as-built per design point:" % TECH_40NM.name
    )
    fleet_energy_uj = 0.0
    for point in DESIGN_POINTS:
        wearers = sorted(pid for pid, p in assignments.items() if p is point)
        report = _as_built_cost(registry.backend_for(wearers[0]))
        point_windows = sum(classified_by_patient[pid] for pid in wearers)
        point_energy_uj = report.energy_nj * point_windows / 1000.0
        fleet_energy_uj += point_energy_uj
        print(
            "  %-18s %7.0f nJ/classification, %6.4f mm2, %3d windows -> %7.2f uJ"
            % (point.name, report.energy_nj, report.area_mm2, point_windows, point_energy_uj)
        )
    monitored_minutes = sum(r.duration_s for r in monitored.values()) / 60.0
    print(
        "Inference energy for %.0f monitored minutes: %.2f uJ (%d classified windows)"
        % (monitored_minutes, fleet_energy_uj, n_classified)
    )


def _signature(backend) -> str:
    """As-built signature of a backend, e.g. ``q9/15[f=53,sv=41]``.

    The registry labels backends with their design point's *name*; this is
    the complementary view — what training and quantisation actually built.
    """
    if isinstance(backend, QuantizedSVMBackend):
        config = backend.config
        return "q%d/%d[f=%d,sv=%d]" % (
            config.feature_bits,
            config.coeff_bits,
            backend.n_features,
            backend.n_support_vectors,
        )
    return "float64[f=%d,sv=%d]" % (backend.n_features, backend.n_support_vectors)


def _as_built_cost(backend):
    """Hardware cost of the accelerator realising a *trained* backend.

    The design points above carry the cost of their nominal configuration;
    this recomputes it from the backend actually built (the SV budget is an
    upper bound — training may converge below it).
    """
    if isinstance(backend, QuantizedSVMBackend):
        return evaluate_accelerator(backend.quantized.accelerator_config(), TECH_40NM)
    return hardware_cost(
        n_features=backend.n_features,
        n_support_vectors=backend.n_support_vectors,
        feature_bits=64,
        coeff_bits=64,
        per_feature_scaling=False,
        datapath_cap_bits=64,
    )


if __name__ == "__main__":
    main()
