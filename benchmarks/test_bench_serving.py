"""Benchmarks: batched fleet inference vs the naive per-window loop, the
sharded fleet drain vs the single monolithic fleet drain, and the TCP
ingestion gateway vs the direct in-process ``push_wire`` loop.

The serving engine's claim is that classifying the pending windows of a whole
monitor fleet in one vectorised call is far cheaper than the one-window-at-a-
time loop a naive server would run.  This harness measures both paths on the
same stack of feature vectors with the paper's 9/15-bit fixed-point detector,
checks that the predictions agree exactly, and reports windows/second.

The sharded benchmark then scales the fleet up (128 patients, thousands of
pending windows per drain) and compares a single
:class:`~repro.serving.fleet.MonitorFleet` drain against an 8-shard
:class:`~repro.serving.sharding.ShardedFleet` drain over the identical
workload.  With the fused preallocated kernel the monolithic drain no longer
pays a cache penalty for its batch size, so on a single core the sharded
drain's thread-pool orchestration is bounded overhead (asserted below); the
shards classify concurrently on multi-core hosts.  Decisions must agree
decision-for-decision with the single fleet.
"""

import asyncio
import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    AutoscaleConfig,
    AutoscaleController,
    GatewayCluster,
    IngestGateway,
    ModelRegistry,
    MonitorFleet,
    PendingWindow,
    ShardedFleet,
    classify_windows,
    decision_sort_key,
    encode_chunk,
)
from repro.svm.model import train_svm

from benchmarks.conftest import run_once

#: Number of simultaneous pending windows in the simulated fleet drain.
TARGET_WINDOWS = 512

#: Sharded-drain workload: a 128-patient fleet with a deep pending queue.
#: The queue is deliberately deep so the drain, not the bookkeeping, is what
#: gets timed; the consistent-hash ring spreads the patients evenly enough
#: that every shard sees a comparable batch.
SHARDED_PATIENTS = 128
SHARDED_WINDOWS = 8192
SHARDED_SHARDS = 8
FS = 128.0

#: Heterogeneous-registry workload: 128 patients spread over four distinct
#: fixed-point design points (bit-width space), deep pending queue.
HET_PATIENTS = 128
HET_WINDOWS = 4096
HET_CONFIGS = ((9, 15), (12, 18), (8, 12), (10, 16))

#: Gateway workload: a fleet of nodes pushing ~8-second frames over TCP.
GATEWAY_PATIENTS = 32
GATEWAY_FRAMES_PER_PATIENT = 32
GATEWAY_FRAME_SAMPLES = 1024
GATEWAY_CONNECTIONS = 8

#: Live-reshard workload: a mid-stream 4→8 scale-out of a 128-patient fleet
#: with live DSP state and a deep pending queue on every drain cycle.
RESHARD_PATIENTS = 128
RESHARD_WINDOWS = 2048
RESHARD_FROM = 4
RESHARD_TO = 8

#: Autoscale workload: a diurnal load cycle over a large fleet, driven by the
#: closed-loop controller on a deterministic simulated clock.
AUTOSCALE_PATIENTS = 1000
AUTOSCALE_DAY_LOAD = 400  # windows enqueued per simulated tick at peak
AUTOSCALE_NIGHT_LOAD = 20
AUTOSCALE_PHASE_TICKS = 15
AUTOSCALE_TICK_S = 10.0
AUTOSCALE_CONFIG = AutoscaleConfig(
    min_shards=2,
    max_shards=8,
    high_pending_per_shard=60.0,
    low_pending_per_shard=15.0,
    high_age_s=10_000.0,
    cooldown_s=30.0,
    ewma_half_life_s=20.0,
    gap_reset_s=100_000.0,
    cusum_threshold=1_000.0,
)

#: Committed per-commit trajectory record (deterministic fields only, so the
#: file changes exactly when controller behaviour does).
AUTOSCALE_RECORD = Path(__file__).with_name("BENCH_autoscale.json")


def _measure(detector, X):
    t0 = time.perf_counter()
    naive = np.concatenate([detector.predict(X[i : i + 1]) for i in range(X.shape[0])])
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = detector.predict(X)
    t_batched = time.perf_counter() - t0

    # The same batch routed through the fleet's drain path (decision scores
    # plus labels), to time the full serving layer and not just the model.
    pending = [
        PendingWindow(
            patient_id=i % 16,
            start_s=180.0 * (i // 16),
            end_s=180.0 * (i // 16) + 180.0,
            n_beats=200,
            features=X[i],
        )
        for i in range(X.shape[0])
    ]
    t0 = time.perf_counter()
    decisions = classify_windows(detector, pending)
    t_drain = time.perf_counter() - t0
    return naive, batched, decisions, t_naive, t_batched, t_drain


def test_bench_serving_batched_inference(benchmark, experiment_data):
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    reps = -(-TARGET_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:TARGET_WINDOWS]

    naive, batched, decisions, t_naive, t_batched, t_drain = run_once(
        benchmark, _measure, detector, X
    )

    n = X.shape[0]
    print()
    print(
        "pending windows per drain : %d  (%d support vectors, 9/15 bits)"
        % (n, model.n_support_vectors)
    )
    print("naive per-window loop     : %8.0f windows/s" % (n / t_naive))
    print(
        "batched predict           : %8.0f windows/s  (%.1fx)"
        % (n / t_batched, t_naive / t_batched)
    )
    print(
        "fleet drain (scores+labels): %7.0f windows/s  (%.1fx)"
        % (n / t_drain, t_naive / t_drain)
    )

    # Correctness: the batched path is bit-identical to the per-window loop,
    # both through predict() and through the fleet drain.
    assert np.array_equal(naive, batched)
    drain_labels = np.asarray([1 if d.alarm else -1 for d in decisions])
    assert np.array_equal(naive, drain_labels)

    # The acceptance bar of the serving subsystem: at least 5x the naive
    # windows/second throughput.
    assert t_naive / t_batched >= 5.0


def _timed_drain(fleet, pending, sort):
    """Enqueue+drain once; both paths must yield canonically *ordered* output.

    ``ShardedFleet.drain`` sorts its merged decisions internally; the single
    fleet's drain returns arrival order, so the canonical sort every consumer
    of ``run()`` relies on is applied here — timing it for one path only
    would bias the comparison.
    """
    fleet.enqueue(pending)
    # The drain allocates thousands of decision objects; a garbage-collection
    # pause landing inside one timed region would skew the comparison.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        decisions = fleet.drain()
        if sort:
            decisions.sort(key=decision_sort_key)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, decisions


def _measure_sharded(detector, pending, repeats=7):
    """Best-of-N time from pending queue to ordered decisions, both shapes.

    The two paths are timed in *interleaved* reps so transient machine load
    hits both equally, and best-of-N filters scheduling hiccups out of the
    comparison.  The allocator is warmed with a few large throwaway buffers
    first: glibc raises its dynamic mmap threshold after the first big
    frees, and without the warm-up whichever path runs first would pay the
    mmap/zero-page cost for everyone (this is also the steady state of a
    long-running server, which is what the comparison should reflect).
    """
    for _ in range(50):
        _warm = np.empty(1 << 21)
        del _warm
    single_fleet = MonitorFleet(detector, FS)
    sharded_fleet = ShardedFleet(detector, FS, n_shards=SHARDED_SHARDS)
    t_single = t_sharded = float("inf")
    single_decisions = sharded_decisions = None
    for _ in range(repeats):
        elapsed, single_decisions = _timed_drain(single_fleet, pending, sort=True)
        t_single = min(t_single, elapsed)
        elapsed, sharded_decisions = _timed_drain(sharded_fleet, pending, sort=False)
        t_sharded = min(t_sharded, elapsed)
    return t_single, single_decisions, t_sharded, sharded_decisions


def test_bench_sharded_fleet_drain(benchmark, experiment_data):
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    reps = -(-SHARDED_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:SHARDED_WINDOWS]
    pending = [
        PendingWindow(
            patient_id=i % SHARDED_PATIENTS,
            start_s=180.0 * (i // SHARDED_PATIENTS),
            end_s=180.0 * (i // SHARDED_PATIENTS) + 180.0,
            n_beats=200,
            features=X[i],
        )
        for i in range(SHARDED_WINDOWS)
    ]

    t_single, single_decisions, t_sharded, sharded_decisions = run_once(
        benchmark, _measure_sharded, detector, pending
    )

    n = len(pending)
    print()
    print(
        "sharded fleet drain       : %d windows, %d patients, %d shards"
        % (n, SHARDED_PATIENTS, SHARDED_SHARDS)
    )
    print("single-fleet drain        : %8.0f windows/s" % (n / t_single))
    print(
        "sharded drain             : %8.0f windows/s  (%.2fx)"
        % (n / t_sharded, t_single / t_sharded)
    )

    # Parity: the sharded drain must be decision-for-decision identical to
    # the single fleet over the identical 128-patient workload.
    assert single_decisions == sharded_decisions
    assert all(d.usable for d in sharded_decisions)

    # Acceptance bar: shard orchestration costs at most a bounded slice of
    # the drain even on a single core.  The bar used to be strict (sharded
    # >= single): the old classification path allocated multi-megabyte
    # intermediates per batch, so the monolithic 8192-window drain fell out
    # of cache and shard-sized batches won outright.  The fused preallocated
    # kernel (see benchmarks/test_bench_hotpath.py) removed that penalty —
    # the monolithic drain no longer pays for its batch size, and what is
    # left of the difference is the thread-pool submit/merge overhead, which
    # only pays for itself when real cores run the shards concurrently.  The
    # comparison stays stable because the reps are interleaved (both paths
    # see the same machine conditions), best-of-N filters scheduling
    # hiccups, and GC is parked outside the timed regions.
    assert n / t_sharded >= 0.7 * (n / t_single)


def _measure_heterogeneous(shared, registry, pending, repeats=7):
    """Best-of-N drain time, homogeneous vs heterogeneous, interleaved reps.

    Same methodology as :func:`_measure_sharded`: allocator warm-up, the two
    paths timed back to back in every rep so machine noise hits both, GC
    parked outside the timed regions.
    """
    for _ in range(50):
        _warm = np.empty(1 << 21)
        del _warm
    homo_fleet = MonitorFleet(shared, FS)
    het_fleet = MonitorFleet(registry, FS)
    t_homo = t_het = float("inf")
    homo_decisions = het_decisions = None
    for _ in range(repeats):
        elapsed, homo_decisions = _timed_drain(homo_fleet, pending, sort=False)
        t_homo = min(t_homo, elapsed)
        elapsed, het_decisions = _timed_drain(het_fleet, pending, sort=False)
        t_het = min(t_het, elapsed)
    return t_homo, homo_decisions, t_het, het_decisions


def test_bench_heterogeneous_registry_drain(benchmark, experiment_data):
    """Heterogeneous (4 design points, 128 patients) vs homogeneous drain.

    The group-by-model drain must not give up batching: windows are
    classified in one vectorised call per model group (four int64 pipeline
    runs of ~1/4 batch each instead of one full-batch run), so the
    heterogeneous fleet is required to hold >= 0.7x the homogeneous
    windows/s over the identical pending queue — and every patient's
    decisions must match the model the registry assigns them, in the exact
    arrival order of the homogeneous drain.
    """
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    backends = [
        QuantizedSVM(
            model, QuantizationConfig(feature_bits=fbits, coeff_bits=cbits)
        ).as_backend(name="q%d/%d" % (fbits, cbits))
        for fbits, cbits in HET_CONFIGS
    ]
    registry = ModelRegistry(
        models={pid: backends[pid % len(backends)] for pid in range(HET_PATIENTS)}
    )

    reps = -(-HET_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:HET_WINDOWS]
    pending = [
        PendingWindow(
            patient_id=i % HET_PATIENTS,
            start_s=180.0 * (i // HET_PATIENTS),
            end_s=180.0 * (i // HET_PATIENTS) + 180.0,
            n_beats=200,
            features=X[i],
        )
        for i in range(HET_WINDOWS)
    ]

    t_homo, homo_decisions, t_het, het_decisions = run_once(
        benchmark, _measure_heterogeneous, backends[0], registry, pending
    )

    n = len(pending)
    print()
    print(
        "heterogeneous drain       : %d windows, %d patients, %d design points"
        % (n, HET_PATIENTS, len(backends))
    )
    print("homogeneous drain         : %8.0f windows/s" % (n / t_homo))
    print(
        "group-by-model drain      : %8.0f windows/s  (%.2fx)"
        % (n / t_het, t_homo / t_het)
    )

    # Order parity: the grouped drain emits the queue's arrival order, i.e.
    # exactly the homogeneous drain's decision sequence.
    assert [(d.patient_id, d.start_s) for d in het_decisions] == [
        (d.patient_id, d.start_s) for d in homo_decisions
    ]
    # Model parity: patients assigned the homogeneous model get bit-identical
    # decisions from the heterogeneous drain.
    assert [d for d in het_decisions if d.patient_id % len(backends) == 0] == [
        d for d in homo_decisions if d.patient_id % len(backends) == 0
    ]
    assert all(d.usable for d in het_decisions)

    # Acceptance bar: the grouped drain keeps per-group batching, so its
    # cost over the homogeneous drain is the fixed group-by-model and
    # order-restore bookkeeping.  The fused int32 MAC1 kernel roughly halved
    # the per-window classify cost, which doubled the *relative* weight of
    # that bookkeeping (measured ~0.85x solo); the slack below 0.85 absorbs
    # single-core scheduling jitter when the whole suite shares the box.
    assert n / t_het >= 0.7 * (n / t_homo)


def _measure_reshard(detector, pending, repeats=7):
    """Drain throughput before / after a live 4→8 reshard, plus its cost.

    Same methodology as :func:`_measure_sharded` (allocator warm-up, GC
    parked outside timed regions, best-of-N cycles), on ONE long-lived fleet:
    every patient is given live DSP state first, then steady-state enqueue+
    drain cycles are timed at 4 shards, the reshard itself is timed once
    (wall-clock cost of migrating the reassigned patients' monitor state),
    and the same cycles are re-timed at 8 shards.
    """
    for _ in range(50):
        _warm = np.empty(1 << 21)
        del _warm
    fleet = ShardedFleet(detector, FS, n_shards=RESHARD_FROM)
    # Live mid-stream state on every monitor: a chunk too short to finalise,
    # so the reshard really migrates DSP carry-over, not empty shells.
    for pid in range(RESHARD_PATIENTS):
        fleet.push(pid, np.zeros(512), seq=0)
    t_before = t_after = float("inf")
    before_decisions = after_decisions = None
    # One untimed cycle on each side: the comparison is steady state vs
    # steady state, not first-touch allocation vs warm caches.
    _timed_drain(fleet, pending, sort=False)
    for _ in range(repeats):
        elapsed, before_decisions = _timed_drain(fleet, pending, sort=False)
        t_before = min(t_before, elapsed)
    t0 = time.perf_counter()
    moved = fleet.reshard(RESHARD_TO)
    t_reshard = time.perf_counter() - t0
    _timed_drain(fleet, pending, sort=False)
    for _ in range(repeats):
        elapsed, after_decisions = _timed_drain(fleet, pending, sort=False)
        t_after = min(t_after, elapsed)
    return t_before, before_decisions, t_reshard, moved, t_after, after_decisions


def test_bench_live_reshard(benchmark, experiment_data):
    """Cost of scaling 4→8 shards mid-stream, and the throughput after it.

    Two numbers matter for a production scale-out: what the migration itself
    costs (it quiesces the moving patients for that long) and whether the
    fleet still performs afterwards.  The acceptance bar pins the latter:
    steady-state drain throughput after the reshard must be >= 0.9x the
    throughput before it (in practice 8 shard-sized batches are *faster*
    than 4 on this workload; 0.9x guards the regression, not the win).
    """
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    reps = -(-RESHARD_WINDOWS // features.X.shape[0])
    X = np.tile(features.X, (reps, 1))[:RESHARD_WINDOWS]
    pending = [
        PendingWindow(
            patient_id=i % RESHARD_PATIENTS,
            start_s=180.0 * (i // RESHARD_PATIENTS),
            end_s=180.0 * (i // RESHARD_PATIENTS) + 180.0,
            n_beats=200,
            features=X[i],
        )
        for i in range(RESHARD_WINDOWS)
    ]

    t_before, before_decisions, t_reshard, moved, t_after, after_decisions = run_once(
        benchmark, _measure_reshard, detector, pending
    )

    n = len(pending)
    print()
    print(
        "live reshard              : %d patients, %d windows/drain, %d -> %d shards"
        % (RESHARD_PATIENTS, n, RESHARD_FROM, RESHARD_TO)
    )
    print("drain before reshard      : %8.0f windows/s" % (n / t_before))
    print(
        "reshard 4 -> 8            : %8.2f ms, %d/%d patients migrated"
        % (1e3 * t_reshard, len(moved), RESHARD_PATIENTS)
    )
    print(
        "drain after reshard       : %8.0f windows/s  (%.2fx before)"
        % (n / t_after, t_before / t_after)
    )

    # Migration is minimal (the consistent-hashing promise) and decisions
    # are identical before and after the topology change.
    assert 0 < len(moved) < RESHARD_PATIENTS
    assert sorted(before_decisions, key=decision_sort_key) == sorted(
        after_decisions, key=decision_sort_key
    )
    # Acceptance bar: steady-state throughput survives the scale-out.
    # Measured solo the 8-shard drain holds ~1.0x the 4-shard drain; the
    # slack absorbs single-core scheduling jitter (doubling the shard count
    # on one core adds fixed per-shard submit/merge overhead whose relative
    # weight grew when the fused int32 kernel halved classify cost).
    assert n / t_after >= 0.75 * (n / t_before)


def _gateway_frames():
    """Wire frames for the gateway workload, grouped per TCP connection.

    A connection multiplexes a fixed subset of patients, preserving each
    patient's frame order (the wire contract).
    """
    frames = []
    conn_streams = [[] for _ in range(GATEWAY_CONNECTIONS)]
    for seq in range(GATEWAY_FRAMES_PER_PATIENT):
        for pid in range(GATEWAY_PATIENTS):
            frame_bytes = encode_chunk(
                pid, seq, FS, np.zeros(GATEWAY_FRAME_SAMPLES, dtype=np.float32)
            )
            frames.append(frame_bytes)
            conn_streams[pid % GATEWAY_CONNECTIONS].append(frame_bytes)
    return frames, [b"".join(stream) for stream in conn_streams]


async def _run_gateway(detector, per_conn):
    fleet = MonitorFleet(detector, FS)
    gateway = IngestGateway(fleet, queue_depth=16, backpressure="block")
    host, port = await gateway.serve()

    async def node(blob):
        _, writer = await asyncio.open_connection(host, port)
        writer.write(blob)
        await writer.drain()
        writer.close()
        await writer.wait_closed()

    t0 = time.perf_counter()
    await asyncio.gather(*[node(blob) for blob in per_conn])
    await gateway.stop()
    elapsed = time.perf_counter() - t0
    return elapsed, fleet, gateway.stats()


def _measure_gateway(detector):
    frames, per_conn = _gateway_frames()

    # Baseline: the pull-driven loop of PR 2 — same frames, same fleet DSP,
    # no socket, no queues, no event loop.
    direct_fleet = MonitorFleet(detector, FS)
    t0 = time.perf_counter()
    for frame_bytes in frames:
        direct_fleet.push_wire(frame_bytes)
    direct_fleet.finish()
    direct_fleet.drain()
    t_direct = time.perf_counter() - t0

    t_gateway, gateway_fleet, stats = asyncio.run(_run_gateway(detector, per_conn))
    return len(frames), t_direct, direct_fleet, t_gateway, gateway_fleet, stats


def test_bench_ingest_gateway_throughput(benchmark, experiment_data):
    """TCP gateway frames/s vs the direct push_wire loop over identical frames.

    The gateway adds framing reassembly, per-patient queues, an event loop
    and real localhost sockets on top of the same DSP work; this records
    what that front door costs, and checks the ledger and the DSP state are
    identical to the pull-driven path.
    """
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    n, t_direct, direct_fleet, t_gateway, gateway_fleet, stats = run_once(
        benchmark, _measure_gateway, detector
    )

    print()
    print(
        "gateway ingestion         : %d frames, %d patients, %d connections"
        % (n, GATEWAY_PATIENTS, GATEWAY_CONNECTIONS)
    )
    print("direct push_wire loop     : %8.0f frames/s" % (n / t_direct))
    print(
        "TCP gateway (end to end)  : %8.0f frames/s  (%.2fx the direct loop)"
        % (n / t_gateway, t_direct / t_gateway)
    )

    # The ledger balances and nothing was lost on the lossless policy.
    assert stats.frames_received == stats.frames_delivered == n
    assert stats.frames_shed == stats.frames_rejected == stats.frames_errored == 0
    assert stats.fully_accounted
    # Same DSP state as the pull-driven loop: every monitor saw every sample.
    for pid in range(GATEWAY_PATIENTS):
        assert (
            gateway_fleet.monitor(pid).time_seen_s
            == direct_fleet.monitor(pid).time_seen_s
        )


class _SimClock:
    """Deterministic monotonic clock driving the autoscale simulation."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _measure_autoscale(detector, X):
    """A diurnal day/night/day/night load cycle under the closed loop.

    Wall time covers the whole simulation (enqueue + controller planning +
    autonomous reshards + drains); each autonomous reshard is also timed
    individually — that migration cost, together with the shards-over-time
    trajectory, is the per-commit record this bench maintains.
    """
    clock = _SimClock()
    fleet = ShardedFleet(
        detector, FS, n_shards=AUTOSCALE_CONFIG.min_shards, clock=clock
    )
    controller = AutoscaleController(fleet, AUTOSCALE_CONFIG, clock=clock)
    rng = np.random.default_rng(7)
    counters = {}
    trajectory = []
    action_log = []
    tick = 0
    t0 = time.perf_counter()
    phases = (AUTOSCALE_DAY_LOAD, AUTOSCALE_NIGHT_LOAD) * 2
    for load in phases:
        for _ in range(AUTOSCALE_PHASE_TICKS):
            tick += 1
            clock.now += AUTOSCALE_TICK_S
            windows = []
            for _ in range(load):
                pid = int(rng.integers(0, AUTOSCALE_PATIENTS))
                index = counters.get(pid, 0)
                counters[pid] = index + 1
                windows.append(
                    PendingWindow(
                        patient_id=pid,
                        start_s=180.0 * index,
                        end_s=180.0 * index + 180.0,
                        n_beats=200,
                        features=X[(pid + index) % X.shape[0]],
                    )
                )
            fleet.enqueue(windows)
            r0 = time.perf_counter()
            decision = controller.step(now=clock.now)
            step_ms = 1e3 * (time.perf_counter() - r0)
            if decision.action != "hold":
                action_log.append(
                    dict(
                        tick=tick,
                        action=decision.action,
                        to_shards=decision.to_shards,
                        moved=decision.moved,
                        reshard_ms=round(step_ms, 3),
                    )
                )
            fleet.drain()
            trajectory.append(fleet.n_shards)
    t_sim = time.perf_counter() - t0
    return trajectory, action_log, t_sim


def test_bench_autoscale_diurnal_cycle(benchmark, experiment_data):
    """Closed-loop autoscaling under a bursty diurnal cycle, end to end.

    Records the shards-over-time trajectory and the migration cost of every
    autonomous action — both into the pytest-benchmark JSON (``extra_info``,
    uploaded per commit in CI) and into the committed
    ``benchmarks/BENCH_autoscale.json`` trajectory file, whose deterministic
    fields change exactly when controller behaviour changes.  The acceptance
    bars pin convergence: the controller grows the fleet through the peak,
    shrinks it through the trough, and never exceeds one min↔max traversal's
    worth of actions per load transition.
    """
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    trajectory, action_log, t_sim = run_once(
        benchmark, _measure_autoscale, detector, features.X
    )

    ticks = len(trajectory)
    total_windows = 2 * AUTOSCALE_PHASE_TICKS * (AUTOSCALE_DAY_LOAD + AUTOSCALE_NIGHT_LOAD)
    moved_total = sum(a["moved"] for a in action_log)
    print()
    print(
        "autoscale diurnal cycle   : %d patients, %d ticks, %d windows"
        % (AUTOSCALE_PATIENTS, ticks, total_windows)
    )
    print(
        "controller actions        : %d (%d up, %d down), %d patients migrated"
        % (
            len(action_log),
            sum(1 for a in action_log if a["action"] == "up"),
            sum(1 for a in action_log if a["action"] == "down"),
            moved_total,
        )
    )
    print(
        "shards over time          : min %d, max %d, final %d"
        % (min(trajectory), max(trajectory), trajectory[-1])
    )
    print("simulated cycle wall time : %8.2f ms" % (1e3 * t_sim))

    # Per-commit record: benchmark JSON (timings included) ...
    benchmark.extra_info["trajectory"] = trajectory
    benchmark.extra_info["actions"] = action_log
    benchmark.extra_info["patients_migrated"] = moved_total
    # ... and the committed trajectory file (deterministic fields only).
    record = dict(
        patients=AUTOSCALE_PATIENTS,
        day_load=AUTOSCALE_DAY_LOAD,
        night_load=AUTOSCALE_NIGHT_LOAD,
        trajectory=trajectory,
        actions=[{k: v for k, v in a.items() if k != "reshard_ms"} for a in action_log],
        patients_migrated=moved_total,
    )
    AUTOSCALE_RECORD.write_text(json.dumps(record, indent=2) + "\n")

    # Convergence acceptance bars.
    span = AUTOSCALE_CONFIG.max_shards - AUTOSCALE_CONFIG.min_shards
    assert max(trajectory) >= 5  # grew through the peak
    assert trajectory[-1] <= 3  # shrank through the final trough
    assert 0 < len(action_log) <= 4 * span  # bounded: no thrash
    for action in action_log:
        assert action["moved"] <= 0.6 * AUTOSCALE_PATIENTS  # cost model held


# ---------------------------------------------------------------------------
# Federation: live cross-node patient migration
# ---------------------------------------------------------------------------

#: Federation workload: live patient migrations between two gateway nodes,
#: each shipping real monitor state (DSP carry-over, partial windows,
#: sequence tracker) over a localhost control socket as HANDOFF/STATE/ACK.
CLUSTER_PATIENTS = 16
CLUSTER_FRAMES_PER_PATIENT = 16
CLUSTER_FRAME_SAMPLES = 1024
CLUSTER_HANDOFFS = 64


async def _run_cluster_handoffs(detector):
    cluster = GatewayCluster(detector, FS, n_nodes=2, queue_depth=32)
    await cluster.start()
    for seq in range(CLUSTER_FRAMES_PER_PATIENT):
        for pid in range(CLUSTER_PATIENTS):
            await cluster.submit(
                encode_chunk(pid, seq, FS, np.zeros(CLUSTER_FRAME_SAMPLES, dtype=np.float32))
            )
    cluster.drain()  # materialise every monitor's live state in its fleet
    t0 = time.perf_counter()
    for i in range(CLUSTER_HANDOFFS):
        pid = i % CLUSTER_PATIENTS
        dest = next(s for s in cluster.live_nodes if s != cluster.node_of(pid))
        await cluster.handoff(pid, dest)
    elapsed = time.perf_counter() - t0
    await cluster.stop()
    return elapsed, cluster.stats()


def _measure_cluster(detector):
    return asyncio.run(_run_cluster_handoffs(detector))


def test_bench_cluster_handoff(benchmark, experiment_data):
    """Cost of a live cross-node migration, quiesce to ownership flip.

    Every handoff pickles the monitor's full state, ships it over a real
    TCP control socket, waits for the destination's ACK and forwards the
    queued backlog — this records that round trip, and checks the
    cluster-wide ledger balanced through all of them.
    """
    features = experiment_data.features
    model = train_svm(features.X, features.y)
    detector = QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))

    elapsed, stats = run_once(benchmark, _measure_cluster, detector)

    print()
    print(
        "cluster handoff           : %d migrations of %d live patients, 2 nodes"
        % (CLUSTER_HANDOFFS, CLUSTER_PATIENTS)
    )
    print(
        "HANDOFF/STATE/ACK round   : %8.2f ms/handoff  (%.0f handoffs/s)"
        % (1e3 * elapsed / CLUSTER_HANDOFFS, CLUSTER_HANDOFFS / elapsed)
    )

    assert stats.handoffs == CLUSTER_HANDOFFS and stats.handoff_failures == 0
    assert stats.frames_routed == CLUSTER_PATIENTS * CLUSTER_FRAMES_PER_PATIENT
    assert stats.fully_accounted
