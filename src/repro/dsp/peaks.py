"""Pan–Tompkins-style R-peak detection.

The WBSN signal path in Figure 1 of the paper starts from the raw ECG; the
feature extractor needs beat locations (for HRV / Lorenz features) and R-wave
amplitudes (for amplitude-based EDR).  This module provides a compact
Pan–Tompkins-style detector: band-pass filtering, differentiation, squaring,
moving-window integration and adaptive thresholding with a refractory period,
followed by a local refinement of the R-peak position on the filtered signal.

Two entry points are provided:

* :func:`detect_r_peaks` — one-shot detection over a complete trace, and
* :class:`StreamingPeakDetector` — the same pipeline operating on arbitrary
  sample chunks with carry-over state (filter context, adaptive threshold
  level, refractory bookkeeping), the front end of the
  :mod:`repro.serving` streaming engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.dsp.filters import apply_fir, bandpass_fir, moving_average

__all__ = [
    "PanTompkinsParams",
    "PeakDetectorState",
    "detect_r_peaks",
    "StreamingPeakDetector",
]


@dataclass
class PanTompkinsParams:
    """Tuning parameters of the R-peak detector."""

    #: Pass band of the QRS enhancement filter (Hz).
    band_low_hz: float = 5.0
    band_high_hz: float = 18.0
    #: Moving-window integration length in seconds (roughly the QRS width).
    integration_window_s: float = 0.150
    #: Refractory period: minimum spacing between detected beats (seconds).
    refractory_s: float = 0.25
    #: Threshold as a fraction of the running signal level.
    threshold_fraction: float = 0.35
    #: Time constant of the running signal-level estimate, in peaks.
    level_memory: float = 8.0
    #: Half-width of the window used to refine the R position (seconds).
    refine_half_window_s: float = 0.10


def _design_qrs_bandpass(
    fs: float, params: PanTompkinsParams, max_taps: int | None = None
) -> np.ndarray:
    """Design the QRS band-pass filter, clamping the band and tap count.

    The nominal 5–18 Hz band violates ``high_hz < fs/2`` for any ``fs <= 36``
    Hz, and the nominal ``numtaps ~ fs`` filter can be longer than a short
    trace; both are clamped here so the detector degrades gracefully instead
    of raising from :func:`repro.dsp.filters.bandpass_fir`.
    """
    nyquist = fs / 2.0
    high = min(params.band_high_hz, 0.9 * nyquist)
    low = min(params.band_low_hz, 0.5 * high)
    numtaps = int(fs // 2) * 2 + 1
    if max_taps is not None:
        # Keep the filter no longer than the available signal (odd length).
        limit = max(max_taps, 3)
        limit = limit if limit % 2 == 1 else limit - 1
        numtaps = min(numtaps, limit)
    numtaps = max(numtaps, 3)
    return bandpass_fir(low, high, fs, numtaps=numtaps)


def _integrated_energy(filtered: np.ndarray, integration_width: int) -> np.ndarray:
    """Differentiate, square and integrate the band-passed signal."""
    derivative = np.gradient(filtered)
    return moving_average(derivative**2, max(integration_width, 1))


def detect_r_peaks(
    ecg: np.ndarray, fs: float, params: PanTompkinsParams | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Detect R peaks in a single-lead ECG trace.

    Parameters
    ----------
    ecg:
        ECG samples (millivolts or any consistent unit).
    fs:
        Sampling frequency in Hz.
    params:
        Detector parameters.

    Returns
    -------
    (peak_indices, peak_times_s):
        Sample indices and times (seconds) of the detected R peaks.
    """
    if params is None:
        params = PanTompkinsParams()
    ecg = np.asarray(ecg, dtype=float)
    if ecg.size < int(fs):
        return np.empty(0, dtype=int), np.empty(0)

    # 1. Band-pass filter to isolate the QRS energy.
    taps = _design_qrs_bandpass(fs, params, max_taps=ecg.size)
    filtered = apply_fir(ecg, taps)

    # 2. Differentiate, square, integrate.
    integrated = _integrated_energy(filtered, int(params.integration_window_s * fs))

    # 3. Adaptive threshold with refractory period.
    refractory = max(int(params.refractory_s * fs), 1)
    level = float(np.percentile(integrated, 98))
    threshold = params.threshold_fraction * level
    peaks = []
    i = 1
    n = integrated.size
    while i < n - 1:
        if (
            integrated[i] > threshold
            and integrated[i] >= integrated[i - 1]
            and integrated[i] >= integrated[i + 1]
        ):
            peaks.append(i)
            # Update the running level and threshold.
            level += (integrated[i] - level) / params.level_memory
            threshold = params.threshold_fraction * level
            i += refractory
        else:
            i += 1

    if not peaks:
        return np.empty(0, dtype=int), np.empty(0)

    # 4. Refine each peak to the local maximum of the filtered ECG.
    half = int(params.refine_half_window_s * fs)
    refined = []
    for p in peaks:
        lo = max(0, p - half)
        hi = min(ecg.size, p + half + 1)
        refined.append(lo + int(np.argmax(filtered[lo:hi])))
    refined_arr = np.asarray(sorted(set(refined)), dtype=int)

    # Drop refined peaks that collapsed onto each other within the refractory
    # period (keep the larger one).
    keep = [0]
    for idx in range(1, refined_arr.size):
        if refined_arr[idx] - refined_arr[keep[-1]] < refractory:
            if filtered[refined_arr[idx]] > filtered[refined_arr[keep[-1]]]:
                keep[-1] = idx
        else:
            keep.append(idx)
    final = refined_arr[keep]
    return final, final / fs


@dataclass(frozen=True, eq=False)
class PeakDetectorState:
    """Picklable carry-over state of a :class:`StreamingPeakDetector`.

    Everything the detector needs to continue a stream exactly where it left
    off: the raw-sample context buffer, the finalisation frontier, the
    adaptive threshold level and the refractory bookkeeping.  Captured by
    :meth:`StreamingPeakDetector.snapshot` and revived by
    :meth:`StreamingPeakDetector.from_snapshot` — the migration primitive of
    the serving layer's live resharding.
    """

    fs: float
    params: PanTompkinsParams
    buffer: np.ndarray
    buffer_start: int
    n_seen: int
    finalized: int
    level: Optional[float]
    last_peak: int
    #: Absolute sample index the adaptive-level seed window starts at — 0 for
    #: an unbroken stream, the resume point after a :meth:`resume_at` gap
    #: reset (the level re-seeds from the first two seconds *after* the gap).
    seed_from: int = 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, PeakDetectorState):
            return NotImplemented
        return (
            self.fs == other.fs
            and self.params == other.params
            and np.array_equal(self.buffer, other.buffer)
            and self.buffer_start == other.buffer_start
            and self.n_seen == other.n_seen
            and self.finalized == other.finalized
            and self.level == other.level
            and self.last_peak == other.last_peak
            and self.seed_from == other.seed_from
        )


class StreamingPeakDetector:
    """Incremental Pan–Tompkins detection over arbitrary sample chunks.

    The detector keeps a bounded tail of raw samples as carry-over context so
    that filtering, integration and local-maximum refinement near a chunk
    boundary see exactly the same neighbourhood they would in a one-shot run.
    Peaks are only *finalised* once the look-ahead they need (filter group
    delay + integration window + refinement window + refractory period) has
    arrived, which makes the emitted beat sequence independent of how the
    stream is cut into chunks.

    Usage::

        detector = StreamingPeakDetector(fs)
        for chunk in chunks:
            indices, times, amplitudes = detector.process(chunk)
        indices, times, amplitudes = detector.flush()   # drain the tail

    Indices and times are absolute (relative to the first pushed sample).
    """

    #: Derived, immutable configuration recomputed by ``__init__`` from
    #: ``fs`` + ``params`` — deliberately not part of :class:`PeakDetectorState`
    #: (the ``snapshot-completeness`` rule of :mod:`repro.analysis` pins this
    #: list against the constructor).
    _SNAPSHOT_EXCLUDE = (
        "_taps",
        "_refractory",
        "_half_refine",
        "_integration",
        "_margin",
        "_context",
    )

    def __init__(self, fs: float, params: PanTompkinsParams | None = None) -> None:
        if fs <= 0:
            raise ValueError("fs must be positive")
        self.fs = float(fs)
        self.params = params or PanTompkinsParams()
        self._taps = _design_qrs_bandpass(self.fs, self.params)
        self._refractory = max(int(self.params.refractory_s * self.fs), 1)
        self._half_refine = int(self.params.refine_half_window_s * self.fs)
        self._integration = max(int(self.params.integration_window_s * self.fs), 1)
        #: Samples held back from the buffer end until their context arrives.
        self._margin = (
            self._taps.size // 2 + self._integration + self._half_refine + self._refractory
        )
        #: Raw-sample context kept to the left of the finalisation frontier.
        self._context = self._margin + self._taps.size

        self._buffer = np.empty(0)
        self._buffer_start = 0  # absolute index of buffer[0]
        self._n_seen = 0  # total samples pushed so far
        self._finalized = 0  # absolute index up to which detection is final
        self._level: float | None = None
        self._last_peak = -10 * self._refractory  # absolute index of last peak
        self._seed_from = 0  # absolute index the level seed window starts at

    @property
    def n_samples_seen(self) -> int:
        """Total number of samples pushed so far."""
        return self._n_seen

    @property
    def time_seen_s(self) -> float:
        """Stream time (seconds) corresponding to the last pushed sample."""
        return self._n_seen / self.fs

    @property
    def finalized_time_s(self) -> float:
        """Stream time up to which peak detection is final (no new peaks can
        appear before it)."""
        return self._finalized / self.fs

    def snapshot(self) -> PeakDetectorState:
        """Capture the full carry-over state as a picklable value object.

        The snapshot owns copies of the mutable pieces, so the detector can
        keep streaming (or be discarded) without invalidating it.
        """
        return PeakDetectorState(
            fs=self.fs,
            params=replace(self.params),
            buffer=self._buffer.copy(),
            buffer_start=self._buffer_start,
            n_seen=self._n_seen,
            finalized=self._finalized,
            level=self._level,
            last_peak=self._last_peak,
            seed_from=self._seed_from,
        )

    @classmethod
    def from_snapshot(cls, state: PeakDetectorState) -> "StreamingPeakDetector":
        """Revive a detector mid-stream: byte-for-byte the snapshotted state.

        The revived detector emits exactly the peaks the original would have
        emitted for any continuation of the stream — the invariant the
        serving layer's churn parity harness pins.
        """
        detector = cls(state.fs, replace(state.params))
        detector._buffer = np.array(state.buffer, dtype=float, copy=True)
        detector._buffer_start = int(state.buffer_start)
        detector._n_seen = int(state.n_seen)
        detector._finalized = int(state.finalized)
        detector._level = None if state.level is None else float(state.level)
        detector._last_peak = int(state.last_peak)
        detector._seed_from = int(state.seed_from)
        return detector

    def process(self, chunk: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Push a chunk of raw ECG samples; return newly finalised peaks.

        Returns
        -------
        (indices, times_s, amplitudes):
            Absolute sample indices, times and raw-sample amplitudes of the
            peaks finalised by this chunk (possibly empty).
        """
        chunk = np.asarray(chunk, dtype=float).ravel()
        if chunk.size:
            self._buffer = np.concatenate((self._buffer, chunk))
            self._n_seen += chunk.size
        return self._detect(final=False)

    def flush(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Finalise the held-back tail at end of stream."""
        return self._detect(final=True)

    @property
    def warmup_s(self) -> float:
        """Seconds of post-:meth:`resume_at` signal before detection matches
        an unbroken stream's bit-for-bit.

        After a gap reset the first samples see a zero-padded filter edge
        instead of real left context, and the adaptive level re-seeds from
        the first two seconds of the new segment — so beats finalised inside
        this window may differ from the lossless run's.  Callers placing a
        post-gap window boundary (``StreamingMonitor.note_gap``) must leave
        at least this much guard after the resume point.
        """
        edge = self._taps.size + self._integration + self._half_refine + self._refractory
        return 2.0 + edge / self.fs

    def resume_at(self, abs_sample: int) -> None:
        """Resume the stream at absolute sample ``abs_sample`` after a gap.

        Samples ``[n_samples_seen, abs_sample)`` are declared lost: the
        carry-over buffer (including any unfinalised tail — its look-ahead
        context is gone for good), the adaptive level and the refractory
        bookkeeping are all reset to segment-fresh values, so everything the
        detector emits afterwards depends only on post-gap samples.  Indices
        stay absolute and strictly monotone: every future peak lies at or
        after ``abs_sample``, which is past everything already emitted.
        """
        abs_sample = int(abs_sample)
        if abs_sample < self._n_seen:
            raise ValueError(
                "cannot resume at sample %d: stream has already seen %d"
                % (abs_sample, self._n_seen)
            )
        self._buffer = np.empty(0)
        self._buffer_start = abs_sample
        self._n_seen = abs_sample
        self._finalized = abs_sample
        self._level = None
        self._last_peak = abs_sample - 10 * self._refractory
        self._seed_from = abs_sample

    # ------------------------------------------------------------- internals
    def _empty(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return np.empty(0, dtype=int), np.empty(0), np.empty(0)

    def _detect(self, final: bool) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        margin = 0 if final else self._margin
        end_abs = self._n_seen - margin
        if end_abs <= self._finalized or self._buffer.size < 2:
            return self._empty()

        filtered = apply_fir(self._buffer, self._taps)
        integrated = _integrated_energy(filtered, self._integration)

        if self._level is None:
            # Wait for about two seconds of signal before freezing the
            # initial level estimate, unless the stream is being flushed.
            # The estimate uses exactly the first two seconds past
            # ``_seed_from`` (the buffer still starts there, since trimming
            # only happens after a detection pass and ``resume_at`` restarts
            # the buffer at the resume point), so it does not depend on how
            # the stream was cut into chunks.
            if not final and self._n_seen - self._seed_from < int(2 * self.fs):
                return self._empty()
            self._level = float(np.percentile(integrated[: int(2 * self.fs)], 98))
        threshold = self.params.threshold_fraction * self._level

        start_local = max(self._finalized - self._buffer_start, 1)
        start_local = max(start_local, self._last_peak + self._refractory - self._buffer_start)
        end_local = min(end_abs - self._buffer_start, self._buffer.size - 1)

        peaks_local = []
        i = start_local
        while i < end_local:
            if (
                integrated[i] > threshold
                and integrated[i] >= integrated[i - 1]
                and integrated[i] >= integrated[i + 1]
            ):
                peaks_local.append(i)
                self._level += (integrated[i] - self._level) / self.params.level_memory
                threshold = self.params.threshold_fraction * self._level
                i += self._refractory
            else:
                i += 1

        emitted_local = []
        for p in peaks_local:
            lo = max(0, p - self._half_refine)
            hi = min(self._buffer.size, p + self._half_refine + 1)
            refined = lo + int(np.argmax(filtered[lo:hi]))
            refined_abs = self._buffer_start + refined
            # Enforce the refractory period across chunk boundaries and
            # against refinement collapsing two candidates onto one beat.
            if refined_abs - self._last_peak < self._refractory:
                continue
            emitted_local.append(refined)
            self._last_peak = refined_abs

        self._finalized = end_abs

        # Amplitudes are read from the raw signal, as in the one-shot path.
        local = np.asarray(emitted_local, dtype=int)
        amplitudes = self._buffer[local] if local.size else np.empty(0)
        indices = local + self._buffer_start

        # Trim the buffer, keeping enough left context for the next call.
        keep_from_abs = max(self._buffer_start, self._finalized - self._context)
        drop = keep_from_abs - self._buffer_start
        if drop > 0:
            self._buffer = self._buffer[drop:]
            self._buffer_start = keep_from_abs

        if not indices.size:
            return self._empty()
        return indices, indices / self.fs, amplitudes
