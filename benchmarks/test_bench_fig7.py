"""Benchmark: regenerate Figure 7 (combined optimisation flow).

Paper reference: applying the three techniques in sequence (53→30 features,
68-SV budget, 9/15-bit quantisation) yields 12.5× energy and 16× area gains
over the 64-bit baseline for a GM loss below 3.2%; 32-bit / 16-bit pipelines
whose only optimisation is a pair of global scale factors are clearly
sub-optimal (the 32-bit one needs 7× the area and 4× the energy of the fully
optimised design).
"""

from repro.core.combined import CombinedFlowConfig
from repro.experiments import fig7_combined

from benchmarks.conftest import run_once


def test_bench_fig7_combined_flow(benchmark, experiment_data, full_axes):
    config = CombinedFlowConfig() if full_axes else CombinedFlowConfig(
        n_features=30, sv_budget=50, uniform_reference_widths=(32, 16)
    )
    result = run_once(benchmark, fig7_combined.run, experiment_data.features, config=config)

    print()
    print(fig7_combined.format_bars(result))
    print("paper reference:", fig7_combined.PAPER_REFERENCE)

    flow = result.flow
    # Costs decrease monotonically along the optimisation stages.
    energies = [p.energy_nj for p in flow.stages]
    areas = [p.area_mm2 for p in flow.stages]
    assert all(a >= b for a, b in zip(energies, energies[1:]))
    assert all(a >= b for a, b in zip(areas, areas[1:]))

    headline = result.headline()
    # Order-of-magnitude combined gains, as in the paper (12.5× / 16×).
    assert headline["energy_gain_x"] > 5.0
    assert headline["area_gain_x"] > 5.0
    # Bounded quality loss (paper: 3.2 percentage points of GM).
    assert headline["gm_loss_pct"] < 15.0

    # The uniform-width reference pipelines cost more than the optimised one.
    for reference in flow.uniform_references:
        assert reference.energy_nj > flow.fully_optimised.energy_nj
        assert reference.area_mm2 > flow.fully_optimised.area_mm2
