"""Unit tests for the fixed-point helpers and range-exponent selection."""

import numpy as np
import pytest

from repro.quant.fixed_point import (
    int_bounds,
    quantize_to_int,
    saturate,
    scale_for_exponent,
    truncate_lsbs,
)
from repro.quant.ranges import (
    coefficient_range_exponent,
    feature_range_exponents,
    global_range_exponent,
)


class TestFixedPointHelpers:
    def test_int_bounds_symmetric_two_complement(self):
        assert int_bounds(8) == (-128, 127)
        assert int_bounds(2) == (-2, 1)

    def test_int_bounds_rejects_tiny_words(self):
        with pytest.raises(ValueError):
            int_bounds(1)

    def test_scale_for_exponent(self):
        # A 9-bit word covering [-2^1, 2^1) has an LSB of 2^(1-8) = 1/256.
        assert scale_for_exponent(1, 9) == pytest.approx(2.0**-7)
        assert scale_for_exponent(0, 2) == pytest.approx(0.5)

    def test_saturate_clamps(self):
        values = np.array([-300, -128, 0, 127, 300])
        assert np.array_equal(saturate(values, 8), [-128, -128, 0, 127, 127])

    def test_quantize_round_and_saturate(self):
        scale = 0.25
        q = quantize_to_int(np.array([0.24, 0.26, 100.0, -100.0]), scale, 8)
        assert q[0] == 1       # 0.24/0.25 = 0.96 → 1
        assert q[1] == 1
        assert q[2] == 127     # saturated
        assert q[3] == -128    # saturated

    def test_quantize_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            quantize_to_int(np.zeros(3), 0.0, 8)

    def test_quantization_error_bounded_by_half_lsb(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1.0, 1.0, 100)
        scale = scale_for_exponent(0, 12)
        q = quantize_to_int(values, scale, 12)
        assert np.max(np.abs(q * scale - values)) <= scale / 2 + 1e-12

    def test_truncate_lsbs_matches_floor_division(self):
        assert truncate_lsbs(1023, 3) == 127
        assert truncate_lsbs(-1023, 3) == -128  # arithmetic shift floors
        assert truncate_lsbs(5, 0) == 5

    def test_truncate_lsbs_on_arrays(self):
        arr = np.array([16, -16, 31], dtype=np.int64)
        assert np.array_equal(truncate_lsbs(arr, 4), [1, -1, 1])

    def test_truncate_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            truncate_lsbs(5, -1)


class TestRangeExponents:
    def test_exponent_covers_statistics_and_extremes(self):
        rng = np.random.default_rng(1)
        sv = np.column_stack([
            rng.normal(0.0, 1.0, 400),
            rng.normal(0.0, 3.0, 400),
            rng.normal(10.0, 1.0, 400),
            rng.normal(0.0, 0.1, 400),
        ])
        exponents = feature_range_exponents(sv, n_sigma=1.0)
        mean = sv.mean(axis=0)
        std = sv.std(axis=0)
        for j in range(sv.shape[1]):
            bound = 2.0 ** exponents[j]
            # Covers mean ± σ (Equation 6) and the stored SV extremes.
            assert bound >= abs(mean[j] + std[j]) and bound >= abs(mean[j] - std[j])
            assert bound >= np.abs(sv[:, j]).max()
            # ...and is the smallest such power of two.
            needed = max(abs(mean[j] + std[j]), abs(mean[j] - std[j]), np.abs(sv[:, j]).max())
            assert bound / 2.0 < needed
        # Wider-magnitude features receive larger exponents.
        assert exponents[2] > exponents[0] > exponents[3]

    def test_wider_margin_gives_larger_exponents(self):
        rng = np.random.default_rng(11)
        sv = rng.normal(0.0, 1.0, size=(400, 3))
        assert np.all(
            feature_range_exponents(sv, n_sigma=3.0) >= feature_range_exponents(sv, n_sigma=1.0)
        )

    def test_global_exponent_is_max(self):
        rng = np.random.default_rng(2)
        sv = np.column_stack([rng.normal(0, 1, 100), rng.normal(0, 8, 100)])
        assert global_range_exponent(sv) == feature_range_exponents(sv).max()

    def test_constant_feature_gets_minimum_exponent(self):
        sv = np.zeros((50, 1))
        assert feature_range_exponents(sv)[0] == -16

    def test_coefficient_exponent_for_unit_bound(self):
        assert coefficient_range_exponent(np.array([0.5, -0.9, 0.99])) == 0

    def test_coefficient_exponent_grows_with_weighted_c(self):
        assert coefficient_range_exponent(np.array([3.5, -1.0])) == 2

    def test_coefficient_exponent_empty(self):
        assert coefficient_range_exponent(np.array([])) == 0

    def test_exponents_clamped(self):
        sv = np.full((10, 1), 1e12)
        assert feature_range_exponents(sv)[0] == 15
