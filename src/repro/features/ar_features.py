"""Auto-regressive features of the EDR series (paper features 16–24).

Nine features: the coefficients of an AR(9) model fitted with Burg's method to
the ECG-derived respiration series of the window.  The AR coefficients encode
the dominant respiratory frequency and its stability; ictal tachypnea and
breathing irregularity move the dominant pole and flatten the model, which is
what makes these features informative for seizure detection.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dsp.ar import ar_burg
from repro.dsp.filters import detrend

__all__ = ["AR_ORDER", "AR_FEATURE_NAMES", "ar_features"]

#: Order of the AR model; features 16–24 of the paper are nine coefficients.
AR_ORDER: int = 9

AR_FEATURE_NAMES: List[str] = ["edr_ar_coeff_%d" % k for k in range(1, AR_ORDER + 1)]


def ar_features(edr: np.ndarray) -> np.ndarray:
    """AR(9) coefficients of the EDR series of one window.

    Parameters
    ----------
    edr:
        Uniformly sampled, zero-mean EDR waveform of the window.

    Returns
    -------
    ndarray of shape (9,): the Burg prediction coefficients
    (``x[n] = sum a_k x[n-k] + e[n]`` convention).
    """
    edr = np.asarray(edr, dtype=float)
    if edr.size <= AR_ORDER + 1:
        raise ValueError("EDR segment too short for an AR(%d) model" % AR_ORDER)
    coefficients, _ = ar_burg(detrend(edr), AR_ORDER)
    return np.asarray(coefficients, dtype=float)
