"""Table I — classification performance of different floating-point SVM kernels.

The paper reports average specificity, sensitivity and GM over the 24
leave-one-session-out folds for linear, quadratic, cubic and Gaussian kernels,
finding that the polynomial kernels clearly beat the linear one and that the
quadratic kernel is essentially as good as the cubic while being cheaper to
implement (Equation 3).  This experiment regenerates those rows on the
synthetic cohort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import CrossValidationResult, float_svm_factory, leave_one_session_out
from repro.features.extractor import FeatureMatrix
from repro.svm.kernels import kernel_from_name
from repro.svm.model import SVMTrainParams

__all__ = ["KernelRow", "PAPER_TABLE1", "run", "format_table"]

#: The paper's Table I values (Sp %, Se %, GM %), used by EXPERIMENTS.md for
#: side-by-side comparison.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "linear": {"specificity": 75.6, "sensitivity": 82.3, "gm": 72.9},
    "quadratic": {"specificity": 92.3, "sensitivity": 86.6, "gm": 86.8},
    "cubic": {"specificity": 95.3, "sensitivity": 86.6, "gm": 88.0},
    "gaussian": {"specificity": 97.0, "sensitivity": 79.6, "gm": 82.6},
}

#: Kernel order of the paper's table.
DEFAULT_KERNELS: Sequence[str] = ("linear", "quadratic", "cubic", "gaussian")


@dataclass
class KernelRow:
    """One row of Table I."""

    kernel: str
    specificity: float
    sensitivity: float
    gm: float
    mean_support_vectors: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "kernel": self.kernel,
            "specificity_pct": 100.0 * self.specificity,
            "sensitivity_pct": 100.0 * self.sensitivity,
            "gm_pct": 100.0 * self.gm,
            "mean_support_vectors": self.mean_support_vectors,
        }


def run(
    features: FeatureMatrix,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    train_params: Optional[SVMTrainParams] = None,
) -> List[KernelRow]:
    """Evaluate every kernel of Table I under leave-one-session-out CV."""
    rows: List[KernelRow] = []
    for name in kernels:
        kernel = kernel_from_name(name)
        cv: CrossValidationResult = leave_one_session_out(
            features, float_svm_factory(kernel, train_params)
        )
        rows.append(
            KernelRow(
                kernel=name,
                specificity=cv.specificity,
                sensitivity=cv.sensitivity,
                gm=cv.gm,
                mean_support_vectors=cv.mean_support_vectors,
            )
        )
    return rows


def format_table(rows: Sequence[KernelRow]) -> str:
    """Render the rows like the paper's Table I (values in percent)."""
    lines = [
        "Table I: Classification performance of floating point SVM kernels",
        "%-12s %8s %8s %8s %8s" % ("Kernel", "Sp %", "Se %", "GM %", "avg #SV"),
    ]
    for row in rows:
        lines.append(
            "%-12s %8.1f %8.1f %8.1f %8.1f"
            % (
                row.kernel,
                100.0 * row.specificity,
                100.0 * row.sensitivity,
                100.0 * row.gm,
                row.mean_support_vectors,
            )
        )
    return "\n".join(lines)
