"""Cross-host federation: a multi-gateway cluster with live patient handoff.

PR 5 gave one gateway live resharding *within* its fleet; a deployed backend
is bigger than one host.  :class:`GatewayCluster` federates N
:class:`~repro.serving.ingest.IngestGateway` nodes, each owning a slice of a
cluster-level :class:`~repro.serving.sharding.HashRing`, and moves patients
*between* hosts over the typed v2 frame protocol of
:mod:`repro.serving.wire`:

* **HANDOFF / STATE / ACK** — migrating a patient is a three-frame exchange
  on the destination's control socket.  The source quiesces the patient,
  exports their :class:`~repro.serving.streaming.MonitorState` and ships it
  pickled inside a CRC-protected ``STATE`` frame (opened by a ``HANDOFF``
  frame pinning ``MONITOR_STATE_VERSION``, so an incompatible destination
  refuses before unpickling anything).  Only an ``ACK_OK`` lets the source
  forget the patient — the **ACK-before-forget rule**: a crash anywhere in
  the exchange leaves exactly one owner (the source rolls back un-ACKed
  exports; a destination that dies before ACKing discards its half-import).
* **Backlog forwarding** — after the ACK the source's queued, undelivered
  frames follow the state to the destination
  (:meth:`IngestGateway.take_queued
  <repro.serving.ingest.IngestGateway.take_queued>` → destination
  ``submit_chunk``), counted ``frames_forwarded`` on the source and
  ``received`` on the destination, so both gateway ledgers keep balancing.
  Ownership flips only once the source queue is observed empty with no
  suspension point in between — per-patient FIFO holds end to end.
* **Node churn** — :meth:`GatewayCluster.add_node` grows the ring (the new
  slot claims ~``1/(N+1)`` of the patients, re-homed via real handoffs);
  :meth:`GatewayCluster.kill_node` crash-stops a node, tombstones its ring
  slot (:meth:`HashRing.without_shards
  <repro.serving.sharding.HashRing.without_shards>` — survivors keep their
  slices untouched) and revives its patients on their new owners from the
  last checkpoint plus a per-patient write-ahead log of routed frames.
  Checkpoints are taken at every :meth:`GatewayCluster.drain`, so nothing
  between a checkpoint and a crash was ever emitted — revival is exact
  under the lossless ``"block"`` policy (and at-least-once under the lossy
  policies, whose sheds a replay cannot reconstruct).
* **Cluster ledger** — :meth:`GatewayCluster.stats` returns a
  :class:`ClusterStats` proving every frame the cluster ever received is
  accounted on exactly one host: each gateway's ledger balances, and
  cluster-wide ``routed + replayed + forwarded == sum(received)`` across
  live and retired nodes alike.

Everything runs on one asyncio loop with real TCP sockets between nodes —
the transport is honest, the processes are not (state never crosses a
process boundary except pickled, exactly as it would cross hosts).  The
parity harness (``tests/test_serving_cluster.py``) pins the headline
guarantee: any interleaving of pushes, drains, handoffs and node churn
yields decisions bit-identical to a single never-federated fleet.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.serving.fleet import MonitorFleet, decision_sort_key
from repro.serving.ingest import BackpressureError, GatewayStats, IngestGateway
from repro.serving.sharding import HashRing
from repro.serving.streaming import MONITOR_STATE_VERSION, MonitorState, WindowDecision
from repro.serving.wire import (
    ACK_IMPORT_FAILED,
    ACK_OK,
    ACK_VERSION_MISMATCH,
    AckFrame,
    EcgChunk,
    HandoffFrame,
    StateFrame,
    StreamDecoder,
    WireFormatError,
    decode_chunk,
    encode_ack,
    encode_handoff,
    encode_state,
)

__all__ = ["ClusterStats", "GatewayCluster", "HandoffError"]


class HandoffError(RuntimeError):
    """A patient handoff failed and was rolled back to the source node."""


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time snapshot of the cluster-wide frame ledger.

    The federation analogue of :class:`~repro.serving.ingest.GatewayStats`:
    :attr:`fully_accounted` proves that every frame the cluster ever
    received is accounted on exactly one host — each member gateway's own
    ledger balances, and the cluster-level equation
    ``frames_routed + frames_replayed + frames_forwarded ==
    frames_received`` holds across live and retired nodes together (a
    forwarded or replayed frame is *received* a second time on its new
    host, and the left side grows in lockstep).
    """

    #: Live gateways.
    nodes: int
    #: Patients the cluster has ever routed a frame for.
    patients: int
    #: Frames the cluster routed to some gateway (terminal outcomes
    #: included: a rejected or errored frame was still routed once).
    frames_routed: int
    #: Write-ahead-log frames re-submitted while reviving a dead node's
    #: patients on their new owners.
    frames_replayed: int
    #: Completed patient migrations (ACK_OK received, ownership flipped).
    handoffs: int
    #: Handoffs that failed and were rolled back to their source.
    handoff_failures: int
    #: Nodes crash-stopped by :meth:`GatewayCluster.kill_node`.
    node_deaths: int
    #: Window decisions harvested by cluster drains so far.
    decisions: int
    #: Undecodable inputs on the cluster's data plane.
    wire_errors: int
    #: Per-node ledger snapshots of the live gateways, by node name.
    gateways: Mapping[str, GatewayStats] = field(default_factory=dict)
    #: Frozen final ledgers of crash-stopped gateways, by node name.
    retired: Mapping[str, GatewayStats] = field(default_factory=dict)

    @property
    def frames_received(self) -> int:
        """Frames received across every gateway that ever lived."""
        return sum(g.frames_received for g in self.gateways.values()) + sum(
            g.frames_received for g in self.retired.values()
        )

    @property
    def frames_forwarded(self) -> int:
        """Handoff-forwarded frames across every gateway that ever lived."""
        return sum(g.frames_forwarded for g in self.gateways.values()) + sum(
            g.frames_forwarded for g in self.retired.values()
        )

    @property
    def frames_gap_dropped(self) -> int:
        """Stale datagrams dropped behind gaps, across every gateway that
        ever lived (always 0 on a strict-transport cluster)."""
        return sum(g.frames_gap_dropped for g in self.gateways.values()) + sum(
            g.frames_gap_dropped for g in self.retired.values()
        )

    @property
    def gaps_detected(self) -> int:
        """Sequence gaps absorbed by monitors across the live nodes."""
        return sum(g.gaps_detected for g in self.gateways.values()) + sum(
            g.gaps_detected for g in self.retired.values()
        )

    @property
    def windows_reset_by_gap(self) -> int:
        """Grid windows abandoned by gap resets across the live nodes — the
        cluster-wide measured decision impact of frame loss."""
        return sum(g.windows_reset_by_gap for g in self.gateways.values()) + sum(
            g.windows_reset_by_gap for g in self.retired.values()
        )

    @property
    def fully_accounted(self) -> bool:
        """Every received frame is accounted on exactly one host."""
        members = list(self.gateways.values()) + list(self.retired.values())
        if not all(g.fully_accounted for g in members):
            return False
        return self.frames_received == (
            self.frames_routed + self.frames_replayed + self.frames_forwarded
        )


class _ClusterNode:
    """One federated host: a fleet, its gateway, and its control socket."""

    __slots__ = (
        "slot",
        "name",
        "fleet",
        "gateway",
        "control_server",
        "control_addr",
        "data_server",
        "_fail_next_ack",
    )

    def __init__(self, slot: int, name: str, fleet: MonitorFleet, gateway: IngestGateway):
        self.slot = slot
        self.name = name
        self.fleet = fleet
        self.gateway = gateway
        self.control_server: Optional[asyncio.AbstractServer] = None
        self.control_addr: Optional[Tuple[str, int]] = None
        self.data_server: Optional[asyncio.AbstractServer] = None
        #: Test seam for the mid-handoff crash drill: the next successful
        #: state import on this node is discarded and the connection closed
        #: *without* an ACK — the destination "died" after importing.
        self._fail_next_ack = False


class GatewayCluster:
    """N ingest gateways federated behind one consistent-hash ring.

    Parameters
    ----------
    classifier:
        Shared backend or :class:`~repro.serving.registry.ModelRegistry` —
        handed to every node's :class:`~repro.serving.fleet.MonitorFleet`
        (a registry instance is shared, so tailored models follow their
        patients across handoffs for free).
    fs:
        Sampling frequency of the incoming ECG streams (Hz).
    n_nodes:
        Initial gateway count (ring slots 0..n-1, node names ``g0..``).
    queue_depth / backpressure:
        Per-node gateway queue configuration.  The federation guarantees
        (exact crash revival, loss-free handoff) assume the lossless
        ``"block"`` policy; the lossy policies still balance every ledger
        but a replay cannot reconstruct what a policy shed.
    lossy:
        Datagram-transport mode on every node: fleets and gateways are
        built with ``lossy=True`` (see
        :class:`~repro.serving.ingest.IngestGateway`), so frame loss —
        shed under pressure, or skipped by a crash replay — becomes a
        detected, accounted gap (``frames_gap_dropped``,
        ``windows_reset_by_gap`` in :class:`ClusterStats`) instead of a
        rejected stream.  Defaults ``backpressure`` to ``"shed-oldest"``
        when the caller passed none: a lossy transport that blocks
        producers would defeat its own purpose, though an explicit policy
        is respected.
    windowing / detector_params:
        Shared monitor configuration, as for a single fleet.
    handoff_timeout_s:
        How long a handoff source waits for the destination's ACK before
        rolling back.
    clock:
        Injectable monotonic time source for every node's fleet and
        gateway.

    Single-task discipline: the cluster's mutating coroutines (``handoff``,
    ``add_node``, ``kill_node``) must not run concurrently with each other
    or with ``stop`` — drive them from one task, exactly like a control
    plane would serialize topology changes.  Frame submission may interleave
    freely.
    """

    def __init__(
        self,
        classifier: object,
        fs: float,
        *,
        n_nodes: int = 2,
        queue_depth: int = 64,
        backpressure: Optional[str] = None,
        windowing: object = None,
        detector_params: object = None,
        handoff_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        host: str = "127.0.0.1",
        lossy: bool = False,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.fs = float(fs)
        self.handoff_timeout_s = float(handoff_timeout_s)
        self.lossy = bool(lossy)
        if backpressure is None:
            backpressure = "shed-oldest" if self.lossy else "block"
        self._classifier = classifier
        self._windowing = windowing
        self._detector_params = detector_params
        self._queue_depth = int(queue_depth)
        self._backpressure = backpressure
        self._clock = clock
        self._host = host
        self.ring = HashRing(int(n_nodes))
        self._nodes: Dict[int, _ClusterNode] = {
            slot: self._make_node(slot) for slot in range(int(n_nodes))
        }
        #: Current owner slot of every patient the cluster has ever routed.
        self._home: Dict[int, int] = {}
        #: Last pickled checkpoint per patient (taken at every drain and at
        #: every completed handoff).  Pickled so a stored checkpoint never
        #: aliases a live monitor's mutable buffers.
        self._checkpoint: Dict[int, bytes] = {}
        #: Frames routed-and-queued per patient since their last checkpoint
        #: — the write-ahead log replayed when their node dies.
        self._wal: Dict[int, List[EcgChunk]] = {}
        #: Decisions harvested by cluster drains, canonical order at stop().
        self.decisions: List[WindowDecision] = []
        self._retired: Dict[str, GatewayStats] = {}
        self._frames_routed = 0
        self._frames_replayed = 0
        self._handoffs = 0
        self._handoff_failures = 0
        self._node_deaths = 0
        self._wire_errors = 0
        self._next_token = 0
        self._started = False

    def _make_node(self, slot: int) -> _ClusterNode:
        fleet = MonitorFleet(
            self._classifier,  # type: ignore[arg-type]
            self.fs,
            windowing=self._windowing,  # type: ignore[arg-type]
            detector_params=self._detector_params,  # type: ignore[arg-type]
            clock=self._clock,
            lossy=self.lossy,
        )
        gateway = IngestGateway(
            fleet,
            queue_depth=self._queue_depth,
            backpressure=self._backpressure,
            clock=self._clock,
            lossy=self.lossy,
        )
        return _ClusterNode(slot, "g%d" % slot, fleet, gateway)

    # -------------------------------------------------------------- lifecycle
    async def _start_node(self, node: _ClusterNode) -> None:
        await node.gateway.start()
        if node.control_server is None:

            async def handler(
                reader: asyncio.StreamReader, writer: asyncio.StreamWriter
            ) -> None:
                await self._handle_control_connection(node, reader, writer)

            node.control_server = await asyncio.start_server(handler, self._host, 0)
            sockname = node.control_server.sockets[0].getsockname()
            node.control_addr = (sockname[0], sockname[1])

    async def start(self) -> None:
        """Start every node's pump and control server (idempotent)."""
        for slot in sorted(self._nodes):
            await self._start_node(self._nodes[slot])
        self._started = True

    async def serve(self) -> Dict[str, Tuple[str, int]]:
        """Open one data-plane TCP port per node; returns ``{name: addr}``.

        A producer may connect to *any* node: data frames are decoded there
        but routed cluster-wide to the patient's owning gateway, so a node
        is an entry point, not a silo.  Control frames on a data connection
        are a protocol violation and drop that connection.
        """
        await self.start()
        addresses: Dict[str, Tuple[str, int]] = {}
        for slot in sorted(self._nodes):
            node = self._nodes[slot]
            if node.data_server is None:
                node.data_server = await asyncio.start_server(
                    self._handle_data_connection, self._host, 0
                )
            sockname = node.data_server.sockets[0].getsockname()
            addresses[node.name] = (sockname[0], sockname[1])
        return addresses

    async def stop(self) -> List[WindowDecision]:
        """Drain every node, stop everything, return all decisions.

        Each live node delivers its queued frames, flushes partial windows
        and runs a final classify (synchronously — no pump interleaving),
        then crash-stops its transport.  Returns the cluster's complete
        decision list in canonical order (also left on :attr:`decisions`).
        """
        final: List[WindowDecision] = []
        for slot in sorted(self._nodes):
            node = self._nodes[slot]
            final.extend(node.gateway.drain_now(finish=True))
            await self._close_node(node)
        final.sort(key=decision_sort_key)
        self.decisions.extend(final)
        self.decisions.sort(key=decision_sort_key)
        self._started = False
        return list(self.decisions)

    async def _close_node(self, node: _ClusterNode) -> None:
        for server in (node.control_server, node.data_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        node.control_server = None
        node.data_server = None
        node.control_addr = None
        await node.gateway.abort()

    async def __aenter__(self) -> "GatewayCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- membership
    @property
    def live_nodes(self) -> List[int]:
        """Slots of the live nodes, ascending."""
        return sorted(self._nodes)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def node_of(self, patient_id: int) -> int:
        """Slot currently owning ``patient_id`` (routing a first frame for
        an unknown patient assigns them their ring slot)."""
        patient_id = int(patient_id)
        slot = self._home.get(patient_id)
        if slot is None:
            slot = self.ring.shard_of(patient_id)
        return slot

    # -------------------------------------------------------------- ingestion
    async def submit(self, frame: bytes) -> None:
        """Ingest one complete framed data chunk, routed to its owner."""
        try:
            chunk = decode_chunk(frame)
        except WireFormatError:
            self._wire_errors += 1
            raise
        await self.submit_chunk(chunk)

    async def submit_chunk(self, chunk: EcgChunk) -> None:
        """Route one decoded chunk to its owning gateway.

        ``frames_routed`` counts every routed frame at its terminal outcome
        (queued, rejected or errored — mirroring the gateway's own
        ``frames_received``), and a successfully queued frame is appended to
        the patient's write-ahead log so a node death cannot lose it.
        """
        patient_id = int(chunk.patient_id)
        slot = self._home.get(patient_id)
        if slot is None:
            slot = self.ring.shard_of(patient_id)
            self._home[patient_id] = slot
        node = self._nodes[slot]
        try:
            await node.gateway.submit_chunk(chunk)
        finally:
            self._frames_routed += 1
        # Reached only on successful queueing: a rejected or errored frame
        # raised above and must not be resurrected by a WAL replay.
        self._wal.setdefault(patient_id, []).append(chunk)

    async def _handle_data_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = StreamDecoder()
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionError, OSError):
                    break
                if not data:
                    decoder.finish()
                    break
                for frame in decoder.feed(data):
                    if not isinstance(frame, EcgChunk):
                        raise WireFormatError(
                            "%s is a control frame; the data plane carries "
                            "DATA frames only" % type(frame).__name__
                        )
                    try:
                        await self.submit_chunk(frame)
                    except BackpressureError:
                        pass  # counted at the owning gateway; stream goes on
        except WireFormatError:
            self._wire_errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ---------------------------------------------------------- control plane
    async def _handle_control_connection(
        self,
        node: _ClusterNode,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One inbound handoff exchange on ``node``'s control socket."""
        decoder = StreamDecoder()
        pending: Dict[int, HandoffFrame] = {}
        try:
            while True:
                try:
                    data = await reader.read(1 << 16)
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                for frame in decoder.feed(data):
                    if isinstance(frame, HandoffFrame):
                        pending[frame.token] = frame
                        continue
                    if isinstance(frame, StateFrame):
                        opening = pending.pop(frame.token, None)
                        if opening is None:
                            raise WireFormatError(
                                "STATE frame token %d has no opening HANDOFF"
                                % frame.token
                            )
                        status = self._import_state(node, opening, frame)
                        if status == ACK_OK and node._fail_next_ack:
                            # Crash drill: the destination imported, then
                            # died before ACKing.  Discard the half-import
                            # and vanish — the source must roll back, and
                            # exactly one owner survives.
                            node._fail_next_ack = False
                            self._discard_import(node, frame.patient_id)
                            return
                        writer.write(
                            encode_ack(frame.patient_id, frame.token, status, self.fs)
                        )
                        await writer.drain()
                        continue
                    raise WireFormatError(
                        "unexpected %s on the control plane" % type(frame).__name__
                    )
        except WireFormatError:
            self._wire_errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _import_state(
        self, node: _ClusterNode, opening: HandoffFrame, frame: StateFrame
    ) -> int:
        """Import a shipped monitor state into ``node``; returns ACK status.

        Synchronous — the import either fully happens or fully does not
        before any ACK byte is written.
        """
        if opening.state_version != MONITOR_STATE_VERSION:
            return ACK_VERSION_MISMATCH
        try:
            state = pickle.loads(frame.payload)
            if state is not None:
                if state.version != MONITOR_STATE_VERSION:
                    return ACK_VERSION_MISMATCH
                node.fleet.import_patient(state)
        except Exception:
            return ACK_IMPORT_FAILED
        return ACK_OK

    @staticmethod
    def _discard_import(node: _ClusterNode, patient_id: int) -> None:
        try:
            node.fleet.export_patient(int(patient_id))
        except KeyError:
            pass  # nothing was imported (pickled-None state)

    async def _read_ack(self, reader: asyncio.StreamReader, token: int) -> AckFrame:
        decoder = StreamDecoder()
        while True:
            data = await reader.read(1 << 16)
            if not data:
                raise HandoffError(
                    "destination closed the control connection before ACKing "
                    "handoff token %d — state not confirmed, rolling back" % token
                )
            for frame in decoder.feed(data):
                if isinstance(frame, AckFrame) and frame.token == token:
                    return frame
                raise HandoffError(
                    "unexpected %s while awaiting the ACK of handoff token %d"
                    % (type(frame).__name__, token)
                )

    # ---------------------------------------------------------------- handoff
    async def handoff(self, patient_id: int, to_node: int) -> None:
        """Migrate one patient to the node at slot ``to_node``, loss-free.

        The full federation protocol: quiesce at the source (frames keep
        arriving and queue there), export the monitor state, ship it as
        ``HANDOFF`` + ``STATE`` over the destination's control socket, await
        the ``ACK``.  Anything but ``ACK_OK`` — refusal, timeout, a broken
        connection — rolls the state back into the source fleet and raises
        :class:`HandoffError`; the patient never stops being owned by
        exactly one node.  On ``ACK_OK`` the source's queued backlog is
        forwarded (``frames_forwarded`` → destination ``received``) and
        ownership flips only once the source queue is observed empty, with
        no suspension point between the check and the flip — per-patient
        FIFO order survives the migration bit-exactly.
        """
        patient_id = int(patient_id)
        dest_slot = int(to_node)
        if dest_slot not in self._nodes:
            raise ValueError("node %d is not a live node of this cluster" % dest_slot)
        src_slot = self._home.get(patient_id)
        if src_slot is None:
            raise KeyError("patient %d is unknown to the cluster" % patient_id)
        if src_slot == dest_slot:
            return
        source = self._nodes[src_slot]
        dest = self._nodes[dest_slot]
        if dest.control_addr is None:
            raise RuntimeError("cluster is not started (no control socket)")
        self._next_token = (self._next_token + 1) % (1 << 32)
        token = self._next_token
        source.gateway.quiesce_patients([patient_id])
        exported: Optional[MonitorState] = None
        try:
            # One loop pass: whatever delivery the pump is mid-way through
            # completes before the monitor detaches.
            await asyncio.sleep(0)
            try:
                exported = source.fleet.export_patient(patient_id)
            except KeyError:
                exported = None  # known only through queued frames: no state
            payload = pickle.dumps(exported)
            version = (
                exported.version if exported is not None else MONITOR_STATE_VERSION
            )
            reader, writer = await asyncio.open_connection(*dest.control_addr)
            try:
                writer.write(
                    encode_handoff(patient_id, token, version, self.fs)
                    + encode_state(patient_id, token, self.fs, payload)
                )
                await writer.drain()
                ack = await asyncio.wait_for(
                    self._read_ack(reader, token), self.handoff_timeout_s
                )
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if ack.status != ACK_OK:
                raise HandoffError(
                    "node %s refused the state of patient %d (ack status %d)"
                    % (dest.name, patient_id, ack.status)
                )
            # ACK-before-forget satisfied: the destination owns the monitor
            # state now, so from here on failures must not re-import it at
            # the source.
            exported = None
            # Seed the crash-recovery record *before* the first forwarding
            # await: the shipped state is the patient's checkpoint, and the
            # source's still-queued frames are exactly their WAL (frames
            # arriving during forwarding append through submit_chunk).
            self._checkpoint[patient_id] = payload
            self._wal[patient_id] = list(source.gateway.queued_frames_of(patient_id))
            while True:
                backlog = source.gateway.take_queued(patient_id)
                if not backlog:
                    break
                for chunk in backlog:
                    await dest.gateway.submit_chunk(chunk)
            # take_queued just returned empty and nothing awaited since: no
            # frame can land between the check and the flip.
            self._home[patient_id] = dest_slot
            self._handoffs += 1
        except asyncio.TimeoutError as exc:
            self._rollback(source, exported)
            raise HandoffError(
                "node %s did not ACK the handoff of patient %d within %gs"
                % (dest.name, patient_id, self.handoff_timeout_s)
            ) from exc
        except HandoffError:
            self._rollback(source, exported)
            raise
        except (ConnectionError, OSError) as exc:
            self._rollback(source, exported)
            raise HandoffError(
                "control connection to node %s failed mid-handoff of patient "
                "%d: %s" % (dest.name, patient_id, exc)
            ) from exc
        finally:
            source.gateway.resume_patients([patient_id])

    def _rollback(self, source: _ClusterNode, exported: Optional[MonitorState]) -> None:
        """Restore an un-ACKed export to its source fleet."""
        if exported is not None:
            source.fleet.import_patient(exported)
        self._handoff_failures += 1

    # -------------------------------------------------------------- node churn
    async def add_node(self, weight: float = 1.0) -> int:
        """Join a new gateway node; returns its slot.

        The new slot claims its consistent-hashing share of the key space;
        every patient whose ring assignment changes (and who is still living
        on their default slot — explicitly handed-off patients stay pinned)
        is re-homed through the real :meth:`handoff` protocol, one by one.
        """
        slot = self.ring.n_shards
        grown = HashRing(
            slot + 1,
            replicas=self.ring.replicas,
            weights=self.ring.weights + (float(weight),),
        )
        if self.ring.excluded:
            grown, _ = grown.without_shards(self.ring.excluded)
        movers = sorted(
            pid
            for pid, home in self._home.items()
            if home == self.ring.shard_of(pid) and grown.shard_of(pid) != home
        )
        node = self._make_node(slot)
        if self._started:
            await self._start_node(node)
        self._nodes[slot] = node
        self.ring = grown
        for patient_id in movers:
            await self.handoff(patient_id, self.ring.shard_of(patient_id))
        return slot

    async def kill_node(self, slot: int) -> List[int]:
        """Crash-stop the node at ``slot`` and revive its patients elsewhere.

        The node's transport dies mid-flight — its queued frames die with it
        and its final ledger is archived under :attr:`ClusterStats.retired`.
        Its ring slot is tombstoned (survivors keep their slices untouched),
        and each of its patients revives on their new ring owner: last
        checkpointed :class:`~repro.serving.streaming.MonitorState` imported,
        then their write-ahead frames replayed in arrival order
        (``frames_replayed``).  Under the ``"block"`` policy the revived
        patient is bit-identical to one that never crashed, because
        checkpoints are taken at every drain — nothing since the checkpoint
        had been emitted.  Returns the revived patient ids.
        """
        slot = int(slot)
        node = self._nodes.get(slot)
        if node is None:
            raise ValueError("node %d is not a live node of this cluster" % slot)
        if len(self._nodes) == 1:
            raise ValueError("cannot kill the last node of the cluster")
        self._retired[node.name] = node.gateway.stats()
        await self._close_node(node)
        del self._nodes[slot]
        self.ring, _ = self.ring.without_shards([slot])
        self._node_deaths += 1
        orphans = sorted(
            pid for pid, home in self._home.items() if home == slot
        )
        for patient_id in orphans:
            dest = self._nodes[self.ring.shard_of(patient_id)]
            blob = self._checkpoint.get(patient_id)
            if blob is not None:
                state = pickle.loads(blob)
                if state is not None:
                    dest.fleet.import_patient(state)
            self._home[patient_id] = dest.slot
            for chunk in self._wal.get(patient_id, ()):
                await dest.gateway.submit_chunk(chunk)
                self._frames_replayed += 1
        return orphans

    # ------------------------------------------------------------------ drain
    def drain(self) -> List[WindowDecision]:
        """Deliver every queued frame, classify, checkpoint — synchronously.

        Forces each live node through queue flush + partial-window-preserving
        drain with no pump interleaving, merges the decisions in canonical
        order, then checkpoints every patient (the recovery point
        :meth:`kill_node` revives from) and truncates their write-ahead
        logs.  Must not run concurrently with a handoff or node churn.
        """
        drained: List[WindowDecision] = []
        for slot in sorted(self._nodes):
            drained.extend(self._nodes[slot].gateway.drain_now())
        drained.sort(key=decision_sort_key)
        self.decisions.extend(drained)
        self._checkpoint_all()
        return drained

    def _checkpoint_all(self) -> None:
        for patient_id, slot in self._home.items():
            node = self._nodes.get(slot)
            if node is None:  # pragma: no cover - home always points at a live node
                continue
            try:
                state = node.fleet.snapshot_patient(patient_id)
            except KeyError:
                continue  # every frame so far shed/errored: nothing to pin
            self._checkpoint[patient_id] = pickle.dumps(state)
            self._wal[patient_id] = []

    # ------------------------------------------------------------------ stats
    def stats(self) -> ClusterStats:
        """Snapshot the cluster-wide ledger (see :class:`ClusterStats`)."""
        return ClusterStats(
            nodes=len(self._nodes),
            patients=len(self._home),
            frames_routed=self._frames_routed,
            frames_replayed=self._frames_replayed,
            handoffs=self._handoffs,
            handoff_failures=self._handoff_failures,
            node_deaths=self._node_deaths,
            decisions=len(self.decisions),
            wire_errors=self._wire_errors,
            gateways={
                node.name: node.gateway.stats()
                for _, node in sorted(self._nodes.items())
            },
            retired=dict(self._retired),
        )
