"""Heart-rate-variability features (paper features 1–8).

These are classical time- and frequency-domain HRV statistics computed from
the RR intervals of a single analysis window.  Ictal tachycardia raises the
mean heart rate and lowers the mean RR interval; the accompanying vagal
withdrawal reduces the short-term variability measures (RMSSD, pNN50) and
raises the LF/HF ratio — the discriminative signal exploited by the SVM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.dsp.psd import band_power, welch_psd
from repro.dsp.resample import resample_beats_to_uniform

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.features.cache import BeatPartials

__all__ = ["HRV_FEATURE_NAMES", "hrv_features"]

HRV_FEATURE_NAMES: List[str] = [
    "hrv_mean_rr",
    "hrv_sdnn",
    "hrv_rmssd",
    "hrv_pnn50",
    "hrv_mean_hr",
    "hrv_max_hr",
    "hrv_cv_rr",
    "hrv_lf_hf_ratio",
]

#: Classical HRV frequency bands (Hz).
LF_BAND = (0.04, 0.15)
HF_BAND = (0.15, 0.40)

#: Resampling rate of the RR tachogram used for the spectral feature.
_TACHOGRAM_FS = 4.0


def hrv_features(
    rr_s: np.ndarray,
    beat_times_s: np.ndarray,
    partials: "Optional[BeatPartials]" = None,
) -> np.ndarray:
    """Compute the eight HRV features of one window.

    Parameters
    ----------
    rr_s:
        RR intervals inside the window, in seconds.
    beat_times_s:
        Beat times inside the window (one more element than ``rr_s`` in the
        usual case; only the first ``len(rr_s)+1`` entries are used for the
        tachogram resampling).
    partials:
        Precomputed elementwise partials of this exact RR vector (from the
        overlap-aware :class:`~repro.features.cache.BeatPartialCache`).  The
        aggregations below are identical either way, so supplying partials
        cannot change a bit of the result.

    Returns
    -------
    ndarray of shape (8,)
    """
    rr = np.asarray(rr_s, dtype=float)
    if rr.size < 4:
        raise ValueError("need at least four RR intervals for HRV features")

    if partials is None:
        successive = np.diff(rr)
        successive_sq = successive**2
        nn50 = np.abs(successive) > 0.050
        hr = 60.0 / rr
    else:
        successive_sq = partials.succ_sq
        nn50 = partials.nn50
        hr = partials.hr

    mean_rr = float(np.mean(rr))
    sdnn = float(np.std(rr, ddof=1))
    rmssd = float(np.sqrt(np.mean(successive_sq))) if successive_sq.size else 0.0
    pnn50 = float(np.mean(nn50)) if nn50.size else 0.0
    mean_hr = float(np.mean(hr))
    max_hr = float(np.max(hr))
    cv_rr = sdnn / mean_rr if mean_rr > 0 else 0.0

    lf_hf = _lf_hf_ratio(rr, np.asarray(beat_times_s, dtype=float))

    return np.array(
        [mean_rr, sdnn, rmssd, pnn50, mean_hr, max_hr, cv_rr, lf_hf], dtype=float
    )


def _lf_hf_ratio(rr: np.ndarray, beat_times_s: np.ndarray) -> float:
    """LF/HF power ratio of the RR tachogram (Welch estimate)."""
    # Attach each RR interval to the beat that terminates it.
    if beat_times_s.size >= rr.size + 1:
        times = beat_times_s[1 : rr.size + 1]
    else:
        # Degenerate call (e.g. synthetic tests): rebuild times from the RRs.
        times = np.cumsum(rr)
    try:
        _, tachogram = resample_beats_to_uniform(times, rr, fs=_TACHOGRAM_FS)
        freqs, psd = welch_psd(tachogram, fs=_TACHOGRAM_FS, segment_length=min(256, tachogram.size))
    except ValueError:
        return 0.0
    lf = band_power(freqs, psd, *LF_BAND)
    hf = band_power(freqs, psd, *HF_BAND)
    if hf <= 1e-12:
        return 0.0 if lf <= 1e-12 else 50.0
    return float(min(lf / hf, 50.0))
