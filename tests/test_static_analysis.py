"""Tier-1 bridge: the invariant linter gates the pytest run.

``test_src_repro_has_no_findings`` runs the full default rule set over
``src/repro`` — the same thing ``python -m repro.analysis src/repro`` (and
the CI ``static-analysis`` job) does — so a violated invariant fails the
test suite with the analyzer's own report before any behavioural test gets
a chance to miss it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import default_rules, run_paths
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def test_src_repro_has_no_findings():
    report = run_paths([SRC_REPRO])
    assert report.files_checked > 50, "expected to lint the whole package"
    assert report.ok, "\n" + report.format()


def test_cli_clean_tree_exits_zero(capsys):
    assert main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_lists_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in default_rules():
        assert rule.rule_id in out
        assert rule.invariant.splitlines()[0][:30] in out


def test_cli_reports_findings_and_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\n\ndef stamp() -> float:\n    return time.time()\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out
    assert "hint:" in out
    assert "1 finding(s)" in out


def test_cli_rejects_bad_paths_with_exit_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope.txt")]) == 2
    assert "error:" in capsys.readouterr().err


def test_run_paths_reports_suppression_counts(tmp_path):
    tracked = tmp_path / "tracked.py"
    tracked.write_text(
        "import time\n"
        "\n"
        "\n"
        "def stamp() -> float:\n"
        "    return time.time()  # repro: allow[determinism]\n"
    )
    report = run_paths([tmp_path])
    assert report.ok
    assert report.files_checked == 1
    assert report.suppressed == 1
