"""Resampling of beat-indexed series onto uniform time grids.

HRV spectral analysis, AR modelling and Welch PSD estimation all require a
uniformly sampled signal, whereas RR intervals and R-wave amplitudes are
sampled once per (irregular) heart beat.  The standard approach — also used by
the feature-extraction chain the paper builds on — is cubic-free linear
interpolation of the beat-indexed series onto a modest uniform rate
(typically 4 Hz), which preserves the spectral content up to ~0.5 Hz where all
HRV and respiratory activity lives.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["resample_beats_to_uniform", "resample_rr_to_uniform"]


def resample_beats_to_uniform(
    beat_times_s: np.ndarray,
    values: np.ndarray,
    fs: float = 4.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Interpolate a per-beat series onto a uniform grid.

    Parameters
    ----------
    beat_times_s:
        Time of each beat (seconds), strictly increasing.
    values:
        Value attached to each beat (same length as ``beat_times_s``).
    fs:
        Output sampling rate in Hz.

    Returns
    -------
    (t, resampled):
        The uniform time grid (starting at the first beat) and the
        interpolated values.
    """
    beat_times_s = np.asarray(beat_times_s, dtype=float)
    values = np.asarray(values, dtype=float)
    if beat_times_s.shape != values.shape:
        raise ValueError("beat_times_s and values must have the same shape")
    if beat_times_s.size < 2:
        raise ValueError("need at least two beats to resample")
    if np.any(np.diff(beat_times_s) <= 0):
        raise ValueError("beat_times_s must be strictly increasing")

    start, stop = beat_times_s[0], beat_times_s[-1]
    n = int(np.floor((stop - start) * fs)) + 1
    t = start + np.arange(n) / fs
    resampled = np.interp(t, beat_times_s, values)
    return t, resampled


def resample_rr_to_uniform(
    beat_times_s: np.ndarray, fs: float = 4.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a uniformly sampled RR-interval (tachogram) signal.

    Each RR interval is attached to the time of the beat that *ends* it, then
    linearly interpolated onto the uniform grid.

    Returns
    -------
    (t, rr_uniform): uniform time grid and RR values in seconds.
    """
    beat_times_s = np.asarray(beat_times_s, dtype=float)
    if beat_times_s.size < 3:
        raise ValueError("need at least three beats to build an RR tachogram")
    rr = np.diff(beat_times_s)
    return resample_beats_to_uniform(beat_times_s[1:], rr, fs=fs)
