"""Digital signal processing substrate.

Small, dependency-light implementations of the signal-processing blocks the
feature-extraction stage relies on:

* :mod:`repro.dsp.filters` — moving-average / difference filters, detrending,
  simple band-limited filtering used by the R-peak detector and the EDR chain.
* :mod:`repro.dsp.peaks` — a Pan–Tompkins-style R-peak detector for the
  synthetic ECG waveform.
* :mod:`repro.dsp.resample` — conversion of irregularly sampled beat-indexed
  series (RR intervals, R amplitudes) onto uniform grids.
* :mod:`repro.dsp.ar` — auto-regressive model estimation (Burg and
  Yule–Walker), used for features 16–24 of the paper.
* :mod:`repro.dsp.psd` — Welch power spectral density estimation, used for
  features 25–53 and for the HRV LF/HF analysis.
"""

from repro.dsp.filters import detrend, difference, moving_average, bandpass_fir, apply_fir
from repro.dsp.peaks import PanTompkinsParams, StreamingPeakDetector, detect_r_peaks
from repro.dsp.resample import resample_beats_to_uniform, resample_rr_to_uniform
from repro.dsp.ar import ar_burg, ar_yule_walker, ar_power_spectrum
from repro.dsp.psd import welch_psd, band_power

__all__ = [
    "detrend",
    "difference",
    "moving_average",
    "bandpass_fir",
    "apply_fir",
    "PanTompkinsParams",
    "StreamingPeakDetector",
    "detect_r_peaks",
    "resample_beats_to_uniform",
    "resample_rr_to_uniform",
    "ar_burg",
    "ar_yule_walker",
    "ar_power_spectrum",
    "welch_psd",
    "band_power",
]
