"""Support-vector budgeting (Section III of the paper, "Reducing the number
of support vectors").

The number of support vectors grows roughly linearly with the training-set
size (the "curse of kernelization"), which over-sizes the accelerator's local
SV memory.  Following the budgeted strategy of Wang et al. (JMLR 2012) as
adopted by the paper, the budget is enforced by iteratively removing the least
significant support vector according to the norm

    ‖SV_i‖ = ‖α_i‖² · k(x_i, x_i)

from the *training set* and re-training the SVM, until at most ``budget``
support vectors remain.

Removing one vector at a time (as in the paper) is the most faithful variant;
for the larger sweeps a chunked removal (a small fraction of the excess per
iteration) is offered and produces indistinguishable trade-off curves at a
fraction of the training cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.svm.kernels import Kernel
from repro.svm.model import SVMModel, SVMTrainParams, train_svm

__all__ = ["BudgetParams", "budget_training_set", "train_budgeted_svm"]


@dataclass
class BudgetParams:
    """Configuration of the SV-budgeting loop."""

    #: Maximum number of support vectors allowed in the final model.
    budget: int = 68
    #: Fraction of the *excess* support vectors removed per iteration.
    #: ``0`` removes exactly one vector per iteration (the paper's variant).
    chunk_fraction: float = 0.25
    #: Safety cap on the number of retraining rounds.
    max_rounds: int = 200


def _lowest_norm_indices(model: SVMModel, n_remove: int) -> np.ndarray:
    """Indices (into the model's SV list) of the ``n_remove`` lowest-norm SVs."""
    norms = model.sv_norms()
    order = np.argsort(norms)
    return order[:n_remove]


def budget_training_set(
    X: np.ndarray,
    y: np.ndarray,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    budget_params: Optional[BudgetParams] = None,
) -> Tuple[SVMModel, np.ndarray]:
    """Run the budgeting loop and return the final model and kept-row mask.

    Parameters
    ----------
    X, y:
        The full training fold (original, unscaled features).
    kernel, train_params:
        Passed through to :func:`repro.svm.model.train_svm` at every round.
    budget_params:
        Budget value and removal schedule.

    Returns
    -------
    (model, keep_mask):
        The final budgeted model and a boolean mask over the rows of ``X``
        marking the samples still present in the reduced training set.
    """
    if budget_params is None:
        budget_params = BudgetParams()
    if budget_params.budget < 2:
        raise ValueError("budget must allow at least two support vectors")

    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    keep_mask = np.ones(X.shape[0], dtype=bool)
    keep_indices = np.arange(X.shape[0])

    model = train_svm(X, y, kernel=kernel, params=train_params)
    for _ in range(budget_params.max_rounds):
        excess = model.n_support_vectors - budget_params.budget
        if excess <= 0:
            break
        if budget_params.chunk_fraction <= 0.0:
            n_remove = 1
        else:
            n_remove = max(1, int(np.ceil(excess * budget_params.chunk_fraction)))
        n_remove = min(n_remove, excess)

        # Map the lowest-norm SVs back to rows of the original training set:
        # the model records the SV positions within the subset it was trained
        # on, and ``keep_indices[keep_mask]`` maps subset rows to original rows.
        sv_positions = _lowest_norm_indices(model, n_remove)
        current_rows = keep_indices[keep_mask]
        sv_row_ids = current_rows[model.support_indices]
        rows_to_drop = sv_row_ids[sv_positions]
        keep_mask[rows_to_drop] = False

        # Never drop the last examples of a class.
        if not (np.any(y[keep_mask] > 0) and np.any(y[keep_mask] < 0)):
            keep_mask[rows_to_drop] = True
            break

        model = train_svm(X[keep_mask], y[keep_mask], kernel=kernel, params=train_params)

    return model, keep_mask


def train_budgeted_svm(
    X: np.ndarray,
    y: np.ndarray,
    budget: int,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    chunk_fraction: float = 0.25,
) -> SVMModel:
    """Convenience wrapper returning only the budgeted model."""
    model, _ = budget_training_set(
        X,
        y,
        kernel=kernel,
        train_params=train_params,
        budget_params=BudgetParams(budget=budget, chunk_fraction=chunk_fraction),
    )
    return model
