"""Unit tests for the filtering and resampling primitives."""

import numpy as np
import pytest

from repro.dsp.filters import apply_fir, bandpass_fir, detrend, difference, moving_average
from repro.dsp.resample import resample_beats_to_uniform, resample_rr_to_uniform


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        x = np.full(50, 3.0)
        assert np.allclose(moving_average(x, 5), 3.0)

    def test_width_one_returns_copy(self):
        x = np.arange(10.0)
        out = moving_average(x, 1)
        assert np.allclose(out, x)
        assert out is not x

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(500)
        assert np.var(moving_average(x, 9)) < np.var(x)

    def test_empty_input(self):
        assert moving_average(np.array([]), 5).size == 0


class TestDifferenceDetrend:
    def test_difference_length_preserved(self):
        x = np.arange(10.0)
        d = difference(x)
        assert d.shape == x.shape
        assert d[0] == 0.0
        assert np.allclose(d[1:], 1.0)

    def test_detrend_removes_linear_trend(self):
        t = np.arange(200.0)
        x = 3.0 + 0.5 * t
        assert np.allclose(detrend(x), 0.0, atol=1e-9)

    def test_detrend_preserves_oscillation(self):
        t = np.arange(400.0)
        osc = np.sin(2 * np.pi * t / 20.0)
        x = osc + 0.01 * t
        out = detrend(x)
        assert np.corrcoef(out, osc)[0, 1] > 0.99

    def test_detrend_short_input(self):
        assert np.allclose(detrend(np.array([5.0, 5.0])), 0.0)


class TestBandpassFir:
    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            bandpass_fir(10.0, 5.0, 100.0)
        with pytest.raises(ValueError):
            bandpass_fir(1.0, 60.0, 100.0)

    def test_passband_gain_near_unity(self):
        fs = 128.0
        taps = bandpass_fir(5.0, 18.0, fs, numtaps=129)
        t = np.arange(0, 10.0, 1.0 / fs)
        tone = np.sin(2 * np.pi * 10.0 * t)
        out = apply_fir(tone, taps)
        # Compare RMS in the central region to avoid edge effects.
        sl = slice(200, -200)
        assert np.std(out[sl]) == pytest.approx(np.std(tone[sl]), rel=0.15)

    def test_stopband_attenuation(self):
        fs = 128.0
        taps = bandpass_fir(5.0, 18.0, fs, numtaps=129)
        t = np.arange(0, 10.0, 1.0 / fs)
        low_tone = np.sin(2 * np.pi * 0.3 * t)
        out = apply_fir(low_tone, taps)
        assert np.std(out[200:-200]) < 0.2 * np.std(low_tone[200:-200])

    def test_apply_fir_preserves_length(self):
        taps = bandpass_fir(5.0, 18.0, 128.0)
        x = np.random.default_rng(0).standard_normal(1000)
        assert apply_fir(x, taps).shape == x.shape


class TestResampling:
    def test_uniform_grid_spacing(self):
        beats = np.cumsum(np.full(100, 0.8))
        values = np.sin(beats)
        t, resampled = resample_beats_to_uniform(beats, values, fs=4.0)
        assert np.allclose(np.diff(t), 0.25)
        assert resampled.shape == t.shape

    def test_interpolation_exact_at_beats(self):
        beats = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.array([0.0, 1.0, 0.0, 1.0])
        t, resampled = resample_beats_to_uniform(beats, values, fs=1.0)
        assert np.allclose(resampled, values)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            resample_beats_to_uniform(np.array([0.0, 1.0]), np.array([1.0]))

    def test_non_monotonic_raises(self):
        with pytest.raises(ValueError):
            resample_beats_to_uniform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_too_few_beats_raise(self):
        with pytest.raises(ValueError):
            resample_beats_to_uniform(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            resample_rr_to_uniform(np.array([0.0, 1.0]))

    def test_rr_tachogram_values(self):
        beats = np.array([0.0, 0.8, 1.7, 2.5, 3.4])
        t, rr = resample_rr_to_uniform(beats, fs=4.0)
        assert rr.min() >= 0.8 - 1e-9
        assert rr.max() <= 0.9 + 1e-9
