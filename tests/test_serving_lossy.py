"""Lossy datagram ingestion: frame loss with *bounded decision impact*.

The contract under test — the lossy transport mode's headline guarantee:
for ANY pattern of lost frames (random k-of-n, bursts, head-of-stream
loss), every decision a lossy monitor *does* emit is bit-identical to the
lossless run's decision for the same window — same start, same beats, same
fixed-point score.  Loss costs windows, never correctness: no emitted
window ever spans missing samples, and the :class:`GatewayStats` /
:class:`ClusterStats` ledgers stay fully accounted with the loss made
explicit (``frames_gap_dropped``, ``gaps_detected``,
``windows_reset_by_gap``).

Alongside the parity fuzz this file pins the seams the lossy mode exposed:
the :class:`~repro.serving.wire.SequenceTracker` recovery API
(``check`` / ``skip_to`` / ``check_datagram`` / ``accept_datagram``),
commit-on-success tracker advancement in ``StreamingMonitor.push`` (a push
that failed before absorbing samples can be retried without being misread
as a duplicate), arrival-order marker compaction under sustained
shed-oldest pressure, and the ledger-balances-at-every-await invariant of
the lossy pump.

There is no pytest-asyncio in the environment; every async scenario runs
under its own ``asyncio.run``.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    BackpressureError,
    DuplicateChunkError,
    EcgChunk,
    GatewayCluster,
    IngestGateway,
    MonitorFleet,
    OutOfOrderChunkError,
    SequenceTracker,
    ShardedFleet,
    StreamingMonitor,
    encode_chunk,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.windows import WindowingParams

FS = 64.0
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


# ---------------------------------------------------------------------------
# SequenceTracker recovery API
# ---------------------------------------------------------------------------


class TestTrackerRecovery:
    def test_check_classifies_without_advancing(self):
        tracker = SequenceTracker()
        assert tracker.check(0) == 0
        assert tracker.check(0) == 0  # still not advanced
        assert tracker.expected == 0
        tracker.validate(0)
        with pytest.raises(DuplicateChunkError):
            tracker.check(0)
        with pytest.raises(OutOfOrderChunkError):
            tracker.check(2)
        assert tracker.expected == 1

    def test_validate_span_advances_by_payload_units(self):
        tracker = SequenceTracker()
        tracker.validate(0, span=100)
        assert tracker.expected == 100
        tracker.validate(100, span=0)  # empty datagram is legal
        assert tracker.expected == 100
        with pytest.raises(ValueError, match="span"):
            tracker.validate(100, span=-1)
        assert tracker.expected == 100  # a rejected span moved nothing

    def test_skip_to_is_forward_only(self):
        tracker = SequenceTracker()
        assert tracker.skip_to(500) == 500
        assert tracker.expected == 500
        assert tracker.skip_to(500) == 0
        with pytest.raises(ValueError, match="skip backwards"):
            tracker.skip_to(400)
        assert tracker.expected == 500

    def test_check_datagram_reports_gap_without_moving(self):
        tracker = SequenceTracker()
        assert tracker.check_datagram(300) == 300
        assert tracker.check_datagram(300) == 300  # idempotent: no movement
        assert tracker.expected == 0
        tracker.validate(0, span=100)
        with pytest.raises(DuplicateChunkError, match="stale datagram"):
            tracker.check_datagram(50)

    def test_accept_datagram_bundles_skip_and_validate(self):
        tracker = SequenceTracker()
        assert tracker.accept_datagram(100, span=50) == 100
        assert tracker.expected == 150
        assert tracker.accept_datagram(150, span=10) == 0
        assert tracker.expected == 160
        with pytest.raises(DuplicateChunkError):
            tracker.accept_datagram(100, span=5)
        assert tracker.expected == 160

    def test_skipped_position_survives_snapshot(self):
        tracker = SequenceTracker()
        tracker.accept_datagram(1000, span=64)
        revived = SequenceTracker.from_snapshot(tracker.snapshot())
        assert revived.expected == 1064
        with pytest.raises(DuplicateChunkError):
            revived.check_datagram(500)


# ---------------------------------------------------------------------------
# Shared workload: raw ECG chunks tagged with absolute sample offsets
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    """Multi-patient raw-ECG streams, each chunk tagged with its offset."""
    params = CohortParams(
        n_patients=3,
        n_sessions=2,
        session_duration_s=480.0,
        total_seizures=0,
        seed=77,
        ecg_params=ECGWaveformParams(fs=FS),
    )
    cohort = generate_cohort(params)
    rng = np.random.default_rng(78)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s,
            recording.duration_s,
            recording.respiration,
            rng,
            params=ECGWaveformParams(fs=FS),
        )
        chunks = []
        lo = 0
        while lo < ecg.ecg_mv.size:
            size = int(rng.integers(400, 4000))
            chunks.append((lo, ecg.ecg_mv[lo : lo + size]))
            lo += size
        streams[recording.patient_id] = chunks
    return streams


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


@pytest.fixture(scope="module")
def reference_decisions(workload, quantized_detector):
    """The lossless run: every chunk of every stream, one plain fleet."""
    fleet = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
    decisions = fleet.run(
        {pid: [chunk for _, chunk in chunks] for pid, chunks in workload.items()}
    )
    assert any(d.usable for d in decisions)  # the parity must mean something
    return {(d.patient_id, d.start_s): d for d in decisions}


def _lost_intervals(chunks, dropped):
    """Merged ``(start_s, end_s)`` spans of the dropped chunks of one stream."""
    intervals = []
    for i in sorted(dropped):
        offset, chunk = chunks[i]
        start, end = offset / FS, (offset + chunk.size) / FS
        if intervals and abs(intervals[-1][1] - start) < 1e-12:
            intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))
    return intervals


def _expected_gaps(chunks, dropped):
    """Gaps a monitor will *see*: maximal dropped runs followed by a kept chunk."""
    gaps = 0
    in_run = False
    for i in range(len(chunks)):
        if i in dropped:
            in_run = True
        else:
            if in_run:
                gaps += 1
            in_run = False
    return gaps


def _assert_bounded_impact(reference, decisions, workload, dropped_by_patient):
    """Every emitted decision is the lossless run's, and spans no gap."""
    for decision in decisions:
        expected = reference.get((decision.patient_id, decision.start_s))
        assert expected is not None, (
            "lossy run emitted a window off the lossless grid: %r" % (decision,)
        )
        assert decision.end_s == expected.end_s
        assert decision.n_beats == expected.n_beats
        assert decision.usable == expected.usable
        assert decision.alarm == expected.alarm
        assert decision.score == expected.score  # bit-exact fixed-point path
        for a, b in _lost_intervals(
            workload[decision.patient_id], dropped_by_patient.get(decision.patient_id, ())
        ):
            assert not (decision.start_s < b and decision.end_s > a), (
                "window [%g, %g) spans lost samples [%g, %g)"
                % (decision.start_s, decision.end_s, a, b)
            )


# ---------------------------------------------------------------------------
# Monitor-level gap parity
# ---------------------------------------------------------------------------


def _monitor_windows(monitor, feed, lossy):
    pending = []
    for offset, chunk in feed:
        pending.extend(monitor.push(chunk, seq=offset if lossy else None))
    pending.extend(monitor.finish())
    return pending


class TestMonitorGapParity:
    @pytest.fixture(scope="class")
    def stream(self, workload):
        pid = min(workload)
        return pid, workload[pid]

    @pytest.fixture(scope="class")
    def lossless_windows(self, stream):
        pid, chunks = stream
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING)
        windows = _monitor_windows(monitor, chunks, lossy=False)
        assert len(windows) >= 4
        return {w.start_s: w for w in windows}

    def _check(self, stream, lossless_windows, dropped):
        pid, chunks = stream
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING, lossy=True)
        feed = [entry for i, entry in enumerate(chunks) if i not in dropped]
        windows = _monitor_windows(monitor, feed, lossy=True)
        lost = _lost_intervals(chunks, dropped)
        for window in windows:
            expected = lossless_windows.get(window.start_s)
            assert expected is not None, "window off the lossless grid"
            assert window.end_s == expected.end_s
            assert window.n_beats == expected.n_beats
            assert window.usable == expected.usable
            if expected.features is None:
                assert window.features is None
            else:
                assert np.array_equal(window.features, expected.features)
            for a, b in lost:
                assert not (window.start_s < b and window.end_s > a)
        assert monitor.n_gaps == _expected_gaps(chunks, dropped)
        assert monitor.windows_reset_by_gap >= 0
        return monitor, windows

    def test_single_mid_stream_drop(self, stream, lossless_windows):
        monitor, windows = self._check(stream, lossless_windows, {4})
        assert monitor.n_gaps == 1
        assert windows  # the stream recovers and emits again after the gap

    def test_burst_loss(self, stream, lossless_windows):
        self._check(stream, lossless_windows, {6, 7, 8, 9})

    def test_head_of_stream_loss(self, stream, lossless_windows):
        monitor, _ = self._check(stream, lossless_windows, {0, 1})
        assert monitor.n_gaps == 1  # a gap before the first delivered chunk

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_loss_pattern_has_bounded_impact(self, stream, lossless_windows, data):
        pid, chunks = stream
        dropped = set(
            data.draw(
                st.lists(
                    st.integers(0, len(chunks) - 1), max_size=len(chunks) // 2, unique=True
                )
            )
        )
        self._check(stream, lossless_windows, dropped)

    def test_stale_datagram_raises_and_absorbs_nothing(self, stream):
        pid, chunks = stream
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING, lossy=True)
        offset, chunk = chunks[0]
        monitor.push(chunk, seq=offset)
        before = monitor.time_seen_s
        with pytest.raises(DuplicateChunkError, match="stale datagram"):
            monitor.push(chunk, seq=offset)
        assert monitor.time_seen_s == before
        assert monitor.n_gaps == 0

    def test_note_gap_requires_lossy_mode(self):
        monitor = StreamingMonitor(1, FS, windowing=WINDOWING)
        with pytest.raises(RuntimeError, match="lossy"):
            monitor.note_gap(1000)

    def test_gap_state_survives_snapshot_roundtrip(self, stream, lossless_windows):
        pid, chunks = stream
        cut = len(chunks) // 2
        dropped = {3, 4}
        feed = [entry for i, entry in enumerate(chunks) if i not in dropped]
        head = [e for e in feed if e[0] < chunks[cut][0]]
        tail = [e for e in feed if e[0] >= chunks[cut][0]]
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING, lossy=True)
        windows = []
        for offset, chunk in head:
            windows.extend(monitor.push(chunk, seq=offset))
        state = monitor.snapshot()
        revived = StreamingMonitor.from_snapshot(state, lossy=True)
        assert revived.lossy and revived.n_gaps == monitor.n_gaps
        assert revived.windows_reset_by_gap == monitor.windows_reset_by_gap
        for offset, chunk in tail:
            a = monitor.push(chunk, seq=offset)
            b = revived.push(chunk, seq=offset)
            assert [w.start_s for w in a] == [w.start_s for w in b]
            windows.extend(a)
        windows.extend(monitor.finish())
        for window in windows:
            expected = lossless_windows.get(window.start_s)
            assert expected is not None
            assert window.n_beats == expected.n_beats


# ---------------------------------------------------------------------------
# Commit-on-success tracker advancement (a failed push is retryable)
# ---------------------------------------------------------------------------


class TestCommitOnSuccess:
    def test_strict_push_failure_before_absorption_is_retryable(self, workload):
        pid = min(workload)
        chunks = [chunk for _, chunk in workload[pid]]
        clean = StreamingMonitor(pid, FS, windowing=WINDOWING)
        retried = StreamingMonitor(pid, FS, windowing=WINDOWING)
        clean_windows, retried_windows = [], []
        for seq, chunk in enumerate(chunks):
            clean_windows.extend(clean.push(chunk, seq=seq))
            if seq == 2:
                with pytest.raises(ValueError):
                    retried.push(np.array(["not", "ecg"]), seq=seq)
            # The retry with the same seq must not be misread as a duplicate.
            retried_windows.extend(retried.push(chunk, seq=seq))
        clean_windows.extend(clean.finish())
        retried_windows.extend(retried.finish())
        assert [w.start_s for w in retried_windows] == [w.start_s for w in clean_windows]
        for a, b in zip(retried_windows, clean_windows):
            if b.features is None:
                assert a.features is None
            else:
                assert np.array_equal(a.features, b.features)

    def test_duplicate_rejection_still_holds_after_a_successful_push(self):
        monitor = StreamingMonitor(1, FS, windowing=WINDOWING)
        monitor.push(np.zeros(64), seq=0)
        with pytest.raises(DuplicateChunkError):
            monitor.push(np.zeros(64), seq=0)
        with pytest.raises(OutOfOrderChunkError):
            monitor.push(np.zeros(64), seq=5)

    def test_lossy_gap_commits_even_when_the_chunk_fails(self, workload):
        """The gap concerns frames already lost; a bad post-gap chunk must
        not double-count it on retry."""
        pid = min(workload)
        chunks = workload[pid]
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING, lossy=True)
        offset0, chunk0 = chunks[0]
        monitor.push(chunk0, seq=offset0)
        offset2, chunk2 = chunks[2]  # chunk 1 is lost
        with pytest.raises(ValueError):
            monitor.push(np.array(["bad"]), seq=offset2)
        assert monitor.n_gaps == 1  # the gap itself committed
        monitor.push(chunk2, seq=offset2)  # retry: same offset, no new gap
        assert monitor.n_gaps == 1


# ---------------------------------------------------------------------------
# Gateway: marker compaction, ledger-at-every-await, loss-pattern fuzz
# ---------------------------------------------------------------------------


def _lossy_gateway(quantized_detector, n_shards=1, queue_depth=64, backpressure="shed-oldest"):
    fleet = ShardedFleet(
        quantized_detector, FS, n_shards=n_shards, windowing=WINDOWING, lossy=True
    )
    return IngestGateway(
        fleet, queue_depth=queue_depth, backpressure=backpressure, lossy=True
    )


def _interleave(workload, dropped_by_patient):
    """Round-robin frame order (the arrival order run_streams uses), with
    each patient's dropped frames removed."""
    feeds = {
        pid: [e for i, e in enumerate(chunks) if i not in dropped_by_patient.get(pid, ())]
        for pid, chunks in workload.items()
    }
    iterators = {pid: iter(feed) for pid, feed in feeds.items()}
    frames = []
    while iterators:
        for pid in list(iterators):
            try:
                offset, chunk = next(iterators[pid])
            except StopIteration:
                del iterators[pid]
                continue
            frames.append(EcgChunk(pid, offset, FS, chunk))
    return frames


class TestLossyModeConfig:
    def test_gateway_and_fleet_must_agree_on_lossy(self, quantized_detector):
        strict_fleet = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
        with pytest.raises(ValueError, match="lossy"):
            IngestGateway(strict_fleet, lossy=True)
        lossy_fleet = MonitorFleet(quantized_detector, FS, windowing=WINDOWING, lossy=True)
        with pytest.raises(ValueError, match="lossy"):
            IngestGateway(lossy_fleet)

    def test_lossy_gateway_enforces_seq_by_default(self, quantized_detector):
        gateway = _lossy_gateway(quantized_detector)
        assert gateway.enforce_seq  # gap detection needs the seqs delivered

    def test_lossy_cluster_defaults_to_shed_oldest(self, quantized_detector):
        cluster = GatewayCluster(
            quantized_detector, FS, n_nodes=2, windowing=WINDOWING, lossy=True
        )
        for node in cluster._nodes.values():
            assert node.gateway.lossy and node.fleet.lossy
            assert node.gateway.backpressure == "shed-oldest"
        strict = GatewayCluster(quantized_detector, FS, n_nodes=2, windowing=WINDOWING)
        for node in strict._nodes.values():
            assert node.gateway.backpressure == "block"


class TestShedMarkerCompaction:
    def test_multi_thousand_shed_soak_keeps_the_order_deque_bounded(
        self, quantized_detector
    ):
        """Satellite regression: stale markers left by shed frames must not
        accumulate — before compaction, a 3000-frame soak at queue depth 2
        left ~3000 corpses in the arrival-order deque."""
        gateway = _lossy_gateway(quantized_detector, queue_depth=2)

        async def soak():
            offsets = {pid: 0 for pid in (1, 2, 3)}
            peak = 0
            for i in range(3000):
                pid = 1 + i % 3
                chunk = np.zeros(32)
                await gateway.submit_chunk(EcgChunk(pid, offsets[pid], FS, chunk))
                offsets[pid] += 32
                peak = max(peak, len(gateway._order))
                # The structural identity the compactor maintains:
                assert len(gateway._order) == gateway._queued + gateway._stale_markers
                assert gateway._stale_markers <= max(64, gateway._queued) + 1
            return peak

        peak = asyncio.run(soak())
        stats = gateway.stats()
        assert stats.frames_received == 3000
        assert stats.frames_shed == 3000 - stats.queued_frames
        assert stats.fully_accounted
        # Bounded: far below the 3000 markers an uncompacted deque would hold.
        assert peak <= stats.queued_frames + 66
        assert sum(q.stale for q in gateway._queues.values()) == gateway._stale_markers

    def test_soak_then_drain_delivers_the_survivors(self, quantized_detector):
        gateway = _lossy_gateway(quantized_detector, queue_depth=2)

        async def run():
            offsets = {pid: 0 for pid in (1, 2)}
            for i in range(500):
                pid = 1 + i % 2
                await gateway.submit_chunk(EcgChunk(pid, offsets[pid], FS, np.zeros(32)))
                offsets[pid] += 32
            await gateway.start()
            await gateway.stop()

        asyncio.run(run())
        stats = gateway.stats()
        assert stats.fully_accounted
        assert stats.queued_frames == 0
        assert stats.frames_delivered + stats.frames_shed == 500
        assert len(gateway._order) == 0 and gateway._stale_markers == 0


class TestLedgerAtEveryAwait:
    def test_fully_accounted_at_every_pump_suspension(self, workload, quantized_detector):
        """The pump awaits only between ``_deliver_one`` calls; asserting the
        ledger around every call therefore covers every suspension point of
        the lossy pump path — including gap-dropped outcomes."""
        gateway = _lossy_gateway(quantized_detector, queue_depth=4)
        original = gateway._deliver_one
        calls = {"n": 0}

        def checked():
            assert gateway.stats().fully_accounted
            delivered = original()
            assert gateway.stats().fully_accounted
            calls["n"] += 1
            return delivered

        gateway._deliver_one = checked

        async def run():
            await gateway.start()
            dropped = {pid: {2, 5} for pid in workload}
            for frame in _interleave(workload, dropped):
                await gateway.submit_chunk(frame)
                assert gateway.stats().fully_accounted
            # A stale datagram (offset far behind every stream) exercises the
            # gap-dropped outcome inside the instrumented pump.
            pid = min(workload)
            await gateway.submit_chunk(EcgChunk(pid, 0, FS, np.zeros(16)))
            return await gateway.stop()

        asyncio.run(run())
        stats = gateway.stats()
        assert calls["n"] > 0
        assert stats.fully_accounted
        assert stats.frames_gap_dropped >= 1  # the stale replay was absorbed
        assert stats.gaps_detected > 0
        assert stats.frames_received == (
            stats.frames_delivered
            + stats.frames_shed
            + stats.frames_gap_dropped
            + stats.frames_errored
        )


class TestLossPatternFuzz:
    """Random loss patterns x backpressure policies x shard counts."""

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_any_loss_pattern_any_topology_bounded_impact(
        self, workload, quantized_detector, reference_decisions, data
    ):
        n_shards = data.draw(st.sampled_from([1, 2, 4]))
        policy = data.draw(st.sampled_from(["shed-oldest", "reject"]))
        # A shallow queue makes the policy itself lose frames on top of the
        # upstream datagram loss; shed- and reject-induced loss must be
        # absorbed as gaps exactly like wire loss.
        queue_depth = data.draw(st.sampled_from([3, 64]))
        dropped_by_patient = {}
        for pid, chunks in workload.items():
            n = len(chunks)
            dropped = set(
                data.draw(st.lists(st.integers(0, n - 1), max_size=n // 3, unique=True))
            )
            if data.draw(st.booleans()):  # a burst
                start = data.draw(st.integers(0, n - 2))
                dropped.update(range(start, min(n, start + 4)))
            if data.draw(st.booleans()):  # head-of-stream loss
                dropped.update(range(data.draw(st.integers(1, 3))))
            dropped_by_patient[pid] = dropped
        frames = _interleave(workload, dropped_by_patient)

        gateway = _lossy_gateway(
            quantized_detector,
            n_shards=n_shards,
            backpressure=policy,
            queue_depth=queue_depth,
        )

        async def run():
            await gateway.start()
            for frame in frames:
                try:
                    await gateway.submit_chunk(frame)
                except BackpressureError:
                    pass  # recorded in frames_rejected; the stream goes on
            return await gateway.stop()

        decisions = asyncio.run(run())
        _assert_bounded_impact(
            reference_decisions, decisions, workload, dropped_by_patient
        )
        stats = gateway.stats()
        assert stats.frames_received == len(frames)
        assert stats.fully_accounted
        if queue_depth == 64:
            # Deep queue: nothing shed or rejected, so the monitors see every
            # surviving frame and the gap count is exactly predictable — one
            # per maximal dropped run that a delivered frame follows.
            assert stats.frames_shed == stats.frames_rejected == 0
            assert stats.frames_gap_dropped == 0
            assert stats.gaps_detected == sum(
                _expected_gaps(workload[pid], dropped)
                for pid, dropped in dropped_by_patient.items()
            )
        assert stats.windows_reset_by_gap >= 0


# ---------------------------------------------------------------------------
# Lossy cluster: flag threading and cluster-wide gap accounting
# ---------------------------------------------------------------------------


class TestLossyCluster:
    def test_cluster_survives_loss_with_bounded_impact(
        self, workload, quantized_detector, reference_decisions
    ):
        cluster = GatewayCluster(
            quantized_detector, FS, n_nodes=2, windowing=WINDOWING, lossy=True
        )
        dropped_by_patient = {pid: {1, 4, 5} for pid in workload}
        frames = _interleave(workload, dropped_by_patient)

        async def run():
            await cluster.start()
            for frame in frames:
                await cluster.submit(
                    encode_chunk(frame.patient_id, frame.seq, FS, frame.samples)
                )
            decisions = await cluster.stop()
            return decisions

        decisions = asyncio.run(run())
        _assert_bounded_impact(
            reference_decisions, decisions, workload, dropped_by_patient
        )
        stats = cluster.stats()
        assert stats.fully_accounted
        assert stats.gaps_detected > 0
        assert stats.windows_reset_by_gap >= 0
        assert stats.frames_gap_dropped >= 0
        # The aggregates are sums over member gateways (and retired nodes).
        assert stats.gaps_detected == sum(
            g.gaps_detected for g in stats.gateways.values()
        )
