"""Synthetic ECG / cohort substrate.

The paper evaluates on a proprietary clinical dataset (7 patients, 140 hours
of ECG, 34 focal seizures recorded in an epilepsy monitoring unit).  That
dataset is not publicly available, so this package provides a synthetic
substitute with the same *structure*:

* a cohort of patients, each with several recording sessions,
* continuous RR-interval (heart beat) sequences whose autonomic dynamics are
  perturbed during seizure episodes (ictal tachycardia, reduced short-term
  variability, altered respiratory coupling),
* an associated respiration signal and a synthetic single-lead ECG waveform,
* expert-style seizure annotations, and
* three-minute analysis windows labelled seizure / non-seizure.

Everything downstream (feature extraction, SVM training, the approximation
techniques and the hardware cost models) operates on this substrate exactly as
it would on the clinical recordings.
"""

from repro.signals.rr_model import RRModelParams, generate_rr_series
from repro.signals.respiration import RespirationParams, generate_respiration
from repro.signals.seizures import Seizure, SeizureScheduleParams, schedule_seizures
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.dataset import (
    CohortParams,
    Patient,
    Recording,
    SyntheticCohort,
    generate_cohort,
)
from repro.signals.windows import (
    BeatWindow,
    StreamingWindower,
    Window,
    WindowingParams,
    extract_windows,
)

__all__ = [
    "RRModelParams",
    "generate_rr_series",
    "RespirationParams",
    "generate_respiration",
    "Seizure",
    "SeizureScheduleParams",
    "schedule_seizures",
    "ECGWaveformParams",
    "synthesize_ecg",
    "CohortParams",
    "Patient",
    "Recording",
    "SyntheticCohort",
    "generate_cohort",
    "Window",
    "WindowingParams",
    "extract_windows",
    "BeatWindow",
    "StreamingWindower",
]
