"""Shared experiment data: synthetic cohort + feature matrix, with caching.

Two profiles are provided:

* ``quick`` — a small cohort (5 patients, 10 sessions of 40 minutes, 18
  seizures) used by the integration tests and the default benchmark run; a
  full sweep completes in minutes on a laptop.
* ``paper`` — the structure of the clinical dataset (7 patients, 24 sessions
  of one hour, 34 seizures).  Sessions are still much shorter than the
  clinical 140 hours so that the complete reproduction remains laptop-scale;
  the learning-problem structure (24 session folds, rare seizure windows,
  53 correlated features) is preserved.

The profile can be forced globally through the ``REPRO_PROFILE`` environment
variable, which the benchmark harness honours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.features.extractor import FeatureMatrix, extract_cohort_features
from repro.signals.dataset import CohortParams, SyntheticCohort, generate_cohort

__all__ = ["ExperimentData", "PROFILES", "get_experiment_data", "active_profile_name"]


@dataclass
class ExperimentData:
    """A cohort and its extracted feature matrix."""

    profile: str
    cohort: SyntheticCohort
    features: FeatureMatrix


#: Cohort generation parameters of each profile.
PROFILES: Dict[str, CohortParams] = {
    "quick": CohortParams(
        n_patients=5,
        n_sessions=10,
        session_duration_s=2400.0,
        total_seizures=18,
        seed=2019,
    ),
    "paper": CohortParams(
        n_patients=7,
        n_sessions=24,
        session_duration_s=3600.0,
        total_seizures=34,
        seed=2019,
    ),
}

_CACHE: Dict[str, ExperimentData] = {}


def active_profile_name(default: str = "quick") -> str:
    """Profile selected through the ``REPRO_PROFILE`` environment variable."""
    name = os.environ.get("REPRO_PROFILE", default).strip().lower()
    if name not in PROFILES:
        raise ValueError(
            "unknown REPRO_PROFILE %r (expected one of %s)" % (name, sorted(PROFILES))
        )
    return name


def get_experiment_data(profile: Optional[str] = None) -> ExperimentData:
    """Build (or fetch from cache) the cohort and features of a profile."""
    name = profile or active_profile_name()
    if name not in PROFILES:
        raise ValueError("unknown profile %r (expected one of %s)" % (name, sorted(PROFILES)))
    if name not in _CACHE:
        cohort = generate_cohort(PROFILES[name])
        features = extract_cohort_features(cohort)
        _CACHE[name] = ExperimentData(profile=name, cohort=cohort, features=features)
    return _CACHE[name]
