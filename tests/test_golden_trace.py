"""Golden-trace regression: the committed trace must classify identically.

The parity suites compare the serving code against *itself* (sharded vs
single, gateway vs sync loop) — a systematic drift in the DSP, windowing,
feature extraction or fixed-point pipeline would move reference and
candidate together and slip through.  This fixture breaks that symmetry: a
small deterministic ECG trace, a frozen classifier (committed as plain
arrays — never re-trained) and the expected
:class:`~repro.serving.streaming.WindowDecision` list all live under
``tests/data/``, so any change to the numerics anywhere in

    raw ECG → peak detection → windowing → features → quantised SVM

fails loudly against numbers that predate it.  The replay runs the full
deployment stack — monitor, sharded fleet with a *mid-stream live reshard*,
and the TCP gateway — pinning that the golden output is invariant under the
serving topology too.

Regenerate (and review the diff like code) with
``PYTHONPATH=src python tests/data/make_golden.py``.
"""

import asyncio
import json
import math
import pathlib

import numpy as np
import pytest

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    IngestGateway,
    MonitorFleet,
    ShardedFleet,
    StreamingMonitor,
    classify_windows,
    decision_sort_key,
    encode_chunk,
)
from repro.signals.windows import WindowingParams
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import SVMModel
from repro.svm.scaling import StandardScaler

DATA = pathlib.Path(__file__).parent / "data"

#: Replay constants — mirrored by tests/data/make_golden.py.
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


def load_golden_detector() -> QuantizedSVM:
    """The committed classifier: arrays → SVMModel → 9/15-bit QuantizedSVM."""
    with np.load(DATA / "golden_model.npz") as data:
        scaler = StandardScaler()
        scaler.mean_ = data["scaler_mean"].copy()
        scaler.scale_ = data["scaler_scale"].copy()
        model = SVMModel(
            support_vectors=data["support_vectors"].copy(),
            dual_coef=data["dual_coef"].copy(),
            bias=float(data["bias"]),
            kernel=PolynomialKernel(degree=2),
            alpha=data["alpha"].copy(),
            sv_labels=data["sv_labels"].copy(),
            scaler=scaler,
        )
    return QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))


@pytest.fixture(scope="module")
def golden():
    with np.load(DATA / "golden_trace.npz") as data:
        fs = float(data["fs"])
        chunk_samples = int(data["chunk_samples"])
        patient_id = int(data["patient_id"])
        # The wire payload is float32; the DSP consumes float64 — replay
        # exactly the cast the generator used.
        ecg = data["ecg_mv"].astype(np.float64)
    with open(DATA / "golden_decisions.json") as fh:
        expected = json.load(fh)
    chunks = [ecg[lo : lo + chunk_samples] for lo in range(0, ecg.size, chunk_samples)]
    assert len(expected) > 0 and any(d["usable"] for d in expected)
    return dict(
        fs=fs,
        patient_id=patient_id,
        chunks=chunks,
        expected=expected,
        detector=load_golden_detector(),
    )


def _assert_matches_golden(decisions, expected):
    __tracebackhide__ = True
    assert len(decisions) == len(expected)
    for got, want in zip(decisions, expected):
        assert got.patient_id == want["patient_id"]
        assert got.start_s == want["start_s"]
        assert got.end_s == want["end_s"]
        assert got.n_beats == want["n_beats"], (
            "beat count drifted in window [%g, %g)" % (want["start_s"], want["end_s"])
        )
        assert got.usable == want["usable"]
        assert got.alarm == want["alarm"]
        if want["score"] is None:
            assert got.score is None
        else:
            # The fixed-point pipeline has no excuse for even one ULP; the
            # sub-ULP tolerance only absorbs JSON float round-tripping.
            assert math.isclose(got.score, want["score"], rel_tol=1e-12, abs_tol=1e-12)


class TestGoldenTrace:
    def test_streaming_monitor_matches_golden(self, golden):
        monitor = StreamingMonitor(golden["patient_id"], golden["fs"], windowing=WINDOWING)
        pending = []
        for seq, chunk in enumerate(golden["chunks"]):
            pending.extend(monitor.push(chunk, seq=seq))
        pending.extend(monitor.finish())
        decisions = classify_windows(golden["detector"], pending)
        _assert_matches_golden(decisions, golden["expected"])

    def test_sharded_fleet_with_midstream_reshard_matches_golden(self, golden):
        """The golden output is invariant under live fleet churn."""
        fleet = ShardedFleet(golden["detector"], golden["fs"], n_shards=2, windowing=WINDOWING)
        decisions = []
        third = max(1, len(golden["chunks"]) // 3)
        for seq, chunk in enumerate(golden["chunks"]):
            fleet.push(golden["patient_id"], chunk, seq=seq)
            if seq == third:
                fleet.reshard(3)
            elif seq == 2 * third:
                decisions.extend(fleet.drain())
                fleet.reshard(1)
        fleet.finish()
        decisions.extend(fleet.drain())
        decisions.sort(key=decision_sort_key)
        _assert_matches_golden(decisions, golden["expected"])

    def test_gateway_replay_matches_golden(self, golden):
        frames = [
            encode_chunk(golden["patient_id"], seq, golden["fs"], chunk, dtype=np.float32)
            for seq, chunk in enumerate(golden["chunks"])
        ]

        async def run():
            fleet = MonitorFleet(golden["detector"], golden["fs"], windowing=WINDOWING)
            gateway = IngestGateway(fleet, queue_depth=4, backpressure="block")
            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b"".join(frames))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run())
        assert stats.frames_delivered == len(frames) and stats.fully_accounted
        _assert_matches_golden(decisions, golden["expected"])
