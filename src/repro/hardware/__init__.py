"""Analytical area / energy models of the inference accelerator.

The paper reports the area and the energy-per-classification of the
accelerator of Figure 2 (SV memory → MAC1 → SQ → MAC2 → sign) obtained from
hardware synthesis at 40 nm plus CACTI-style memory characterisation.  Neither
a synthesis flow nor the 40 nm libraries are available here, so this package
substitutes analytical models with the established first-order scaling laws:

* array multipliers scale quadratically with operand width, adders and
  registers linearly (:mod:`repro.hardware.arithmetic`);
* SRAM area and per-access energy scale with capacity and word width, with a
  fixed periphery overhead, in the spirit of CACTI (:mod:`repro.hardware.memory`);
* the accelerator model (:mod:`repro.hardware.accelerator`) aggregates the
  blocks according to the pipeline structure and the workload
  (``N_SV × N_feat`` MAC1 operations, ``N_SV`` squarings and MAC2 operations
  per classification) and adds leakage over the classification interval.

The technology constants (:mod:`repro.hardware.technology`) are calibrated so
that the paper's *baseline* configuration (53 features, unbudgeted SV set,
64-bit datapath) lands near the paper's reported axes (~2 µJ per
classification, ~0.4 mm²); all of the paper's claims are relative factors, and
those are preserved by the scaling laws rather than by the calibration point.
"""

from repro.hardware.technology import TechnologyParams, TECH_40NM
from repro.hardware.arithmetic import (
    adder_area_um2,
    adder_energy_pj,
    multiplier_area_um2,
    multiplier_energy_pj,
    register_area_um2,
    register_energy_pj,
)
from repro.hardware.memory import SramMacroModel, sram_model
from repro.hardware.accelerator import (
    AcceleratorConfig,
    AcceleratorReport,
    evaluate_accelerator,
)

__all__ = [
    "TechnologyParams",
    "TECH_40NM",
    "adder_area_um2",
    "adder_energy_pj",
    "multiplier_area_um2",
    "multiplier_energy_pj",
    "register_area_um2",
    "register_energy_pj",
    "SramMacroModel",
    "sram_model",
    "AcceleratorConfig",
    "AcceleratorReport",
    "evaluate_accelerator",
]
