"""Ablation benchmark: norm-based vs. random support-vector pruning.

The paper adopts the budgeted strategy of Wang et al.: iteratively remove the
support vector with the smallest ``‖α‖² · k(x, x)`` norm and re-train.  This
benchmark compares that heuristic against removing random support vectors (and
against removing the *highest*-norm ones, which should be clearly harmful) at
a tight budget.
"""

import numpy as np

from repro.core.evaluation import leave_one_session_out
from repro.svm.budget import BudgetParams, budget_training_set
from repro.svm.model import train_svm

from benchmarks.conftest import run_once

#: Tight budget at which the pruning strategy matters.
BUDGET = 20


def _pruning_factory(strategy: str):
    """Model factory implementing 'norm' (paper), 'random' or 'worst' pruning."""

    def build(X, y):
        if strategy == "norm":
            model, _ = budget_training_set(X, y, budget_params=BudgetParams(budget=BUDGET))
            return model
        rng = np.random.default_rng(0)
        keep = np.ones(X.shape[0], dtype=bool)
        model = train_svm(X[keep], y[keep])
        for _ in range(200):
            if model.n_support_vectors <= BUDGET:
                break
            excess = model.n_support_vectors - BUDGET
            n_remove = max(1, int(np.ceil(excess * 0.25)))
            rows = np.nonzero(keep)[0][model.support_indices]
            if strategy == "random":
                chosen = rng.choice(rows, size=n_remove, replace=False)
            else:  # 'worst': drop the *highest*-norm (most important) SVs
                order = np.argsort(model.sv_norms())[::-1]
                chosen = rows[order[:n_remove]]
            keep[chosen] = False
            if not (np.any(y[keep] > 0) and np.any(y[keep] < 0)):
                break
            model = train_svm(X[keep], y[keep])
        return model

    return build


def _run_ablation(features):
    results = {}
    for strategy in ("norm", "random", "worst"):
        cv = leave_one_session_out(features, _pruning_factory(strategy))
        results[strategy] = cv
    return results


def test_bench_ablation_sv_pruning(benchmark, experiment_data):
    results = run_once(benchmark, _run_ablation, experiment_data.features)

    print()
    for strategy, cv in results.items():
        print(
            "%-7s pruning @ budget %d: GM %.1f%%  (Se %.1f%%, Sp %.1f%%, avg #SV %.1f)"
            % (
                strategy,
                BUDGET,
                100.0 * cv.gm,
                100.0 * cv.sensitivity,
                100.0 * cv.specificity,
                cv.mean_support_vectors,
            )
        )

    # All strategies respect the budget.
    for cv in results.values():
        assert cv.mean_support_vectors <= BUDGET + 1e-9
    # The paper's low-norm-first heuristic should not lose to dropping the
    # most important vectors first, and should be competitive with random.
    assert results["norm"].gm >= results["worst"].gm - 0.03
    assert results["norm"].gm >= results["random"].gm - 0.05
