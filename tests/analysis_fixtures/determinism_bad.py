"""Known-bad corpus for ``determinism``: ambient entropy and wall clocks."""

import random  # expect[determinism]
import time
from datetime import datetime
from random import choice  # expect[determinism]

import numpy as np


def jitter() -> float:
    return random.random() + np.random.rand()  # expect[determinism]


def pick(options):
    return choice(options)


def unseeded() -> "np.random.Generator":
    return np.random.default_rng()  # expect[determinism]


def seeded_is_fine(seed: int) -> "np.random.Generator":
    return np.random.default_rng(seed)


def stamp() -> str:
    now = time.time()  # expect[determinism]
    day = datetime.now()  # expect[determinism]
    return "%f-%s" % (now, day)
