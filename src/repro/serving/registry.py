"""Per-patient model registry: heterogeneous fleets without losing batching.

The paper's whole premise is that every patient gets a *tailored* SVM design
point — their own selected features, pruned support-vector budget and chosen
bit widths.  Up to PR 3 the serving stack still classified every patient with
one shared model; this module closes that gap:

* :class:`InferenceBackend` — the structural protocol the fleets classify
  with.  :class:`~repro.svm.model.SVMModel` and
  :class:`~repro.quant.quantized_model.QuantizedSVM` satisfy it directly;
  the thin adapters :class:`~repro.svm.backend.FloatSVMBackend` and
  :class:`~repro.quant.backend.QuantizedSVMBackend` add the feature-column
  projection a reduced design point needs plus a stable :meth:`describe`
  label for per-model serving stats.
* :class:`ModelRegistry` — ``patient_id -> backend`` with a default
  fallback, buildable straight from :mod:`repro.core` combined-flow outputs
  (:func:`backend_from_design_point` turns a
  :class:`~repro.core.design_point.DesignPoint` into a trained, optionally
  quantised backend).  Hot-swap is first class: :meth:`ModelRegistry.register`
  replaces a patient's model atomically and bumps the registry *epoch*; a
  drain resolves backends at classification time, so the next drain uses the
  new model and :meth:`ModelRegistry.version_of` tells an operator which
  epoch installed the model a patient is currently served by.
* :func:`classify_grouped` — the heterogeneous drain kernel: pending windows
  are grouped by backend, each group is classified with **one** vectorised
  call, and the decisions are scattered back into the arrival order of the
  queue.  With a single shared backend this degenerates to exactly the old
  single-call drain — decision-for-decision, score-for-score — which is how
  the refactor preserves the serving layer's parity guarantee, now extended:
  a heterogeneous fleet's decisions are bit-identical to classifying each
  patient offline with their own model (``tests/test_serving_registry.py``).

The registry is deliberately *routing-invariant*: it maps patients, not
shards, so a patient's model follows them wherever the
:class:`~repro.serving.sharding.HashRing` places them, including across
reshards.  A :class:`~repro.serving.sharding.ShardedFleet` therefore shares
one registry object across its in-process shards (process-backend workers
hold replicas, kept in sync by
:meth:`~repro.serving.sharding.ShardedFleet.register_model`).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.serving.streaming import PendingWindow, WindowDecision, classify_windows

__all__ = [
    "InferenceBackend",
    "ModelRegistry",
    "backend_from_design_point",
    "backend_label",
    "classify_grouped",
]


@runtime_checkable
class InferenceBackend(Protocol):
    """What a fleet needs from a model: one vectorised scores+labels call.

    Satisfied structurally by :class:`~repro.svm.model.SVMModel`,
    :class:`~repro.quant.quantized_model.QuantizedSVM` and the serving
    adapters.  Backends may additionally expose ``describe() -> str`` for the
    per-model drain stats; :func:`backend_label` falls back to the class name.
    """

    @property
    def n_features(self) -> int:  # pragma: no cover - protocol
        ...

    def scores_and_labels(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:  # pragma: no cover - protocol
        ...


def backend_label(backend) -> str:
    """Stable human-readable label of a backend (for per-model stats)."""
    describe = getattr(backend, "describe", None)
    if callable(describe):
        return str(describe())
    return type(backend).__name__


def classify_grouped(
    resolve: Callable[[int], InferenceBackend], pending: Sequence[PendingWindow]
) -> List[WindowDecision]:
    """Classify a mixed-model batch: one vectorised call per model group.

    ``resolve`` maps a patient id to their backend (typically
    :meth:`ModelRegistry.backend_for`).  Windows sharing a backend are stacked
    and classified together through :func:`~repro.serving.streaming.classify_windows`
    — never a per-window loop — and the resulting decisions are scattered
    back into the arrival order of ``pending``, so the output is *exactly*
    what a single-model drain over the same queue would emit (same order,
    and bit-identical scores when every patient shares one backend).

    Backends are resolved for every window **before** anything is classified;
    an unknown patient therefore raises before any work is done, keeping the
    fleets' failed-drain-is-retryable contract intact.
    """
    groups: Dict[int, Tuple[InferenceBackend, List[int]]] = {}
    for index, window in enumerate(pending):
        backend = resolve(window.patient_id)
        entry = groups.get(id(backend))
        if entry is None:
            groups[id(backend)] = (backend, [index])
        else:
            entry[1].append(index)
    decisions: List[Optional[WindowDecision]] = [None] * len(pending)
    for backend, indices in groups.values():
        for index, decision in zip(
            indices, classify_windows(backend, [pending[i] for i in indices])
        ):
            decisions[index] = decision
    # Every slot must be filled: a hole would mean a window silently vanished
    # from the drain output — a lost seizure alarm, never acceptable.
    assert all(d is not None for d in decisions), "classify_grouped dropped a window"
    return decisions


class ModelRegistry:
    """``patient_id -> InferenceBackend`` with a default fallback and epochs.

    Parameters
    ----------
    default:
        Backend serving every patient without a tailored model.  ``None``
        makes the registry strict: :meth:`backend_for` raises
        :class:`KeyError` for unmodelled patients.
    models:
        Optional initial ``patient_id -> backend`` mapping.

    Hot-swap semantics
    ------------------
    Every mutation (:meth:`register`, :meth:`unregister`,
    :meth:`set_default`) bumps the monotonically increasing :attr:`epoch`
    and stamps the affected entry with it.  Fleets resolve backends at
    *classification* time, so a swap takes effect at the very next drain —
    no fleet restart, no queued-window loss — and
    :meth:`version_of` reports the epoch that installed the model a patient
    is currently served by (the default's stamp when they have no tailored
    entry).
    """

    def __init__(
        self,
        default: Optional[InferenceBackend] = None,
        models: Optional[Mapping[int, InferenceBackend]] = None,
    ) -> None:
        self._epoch = 0
        self._default: Optional[InferenceBackend] = None
        self._default_version = 0
        self._models: Dict[int, InferenceBackend] = {}
        self._versions: Dict[int, int] = {}
        if default is not None:
            self.set_default(default)
        for patient_id, backend in dict(models or {}).items():
            self.register(patient_id, backend)

    # ------------------------------------------------------------- mutation
    @property
    def epoch(self) -> int:
        """Monotonic counter bumped by every registry mutation."""
        return self._epoch

    @property
    def default(self) -> Optional[InferenceBackend]:
        return self._default

    def set_default(self, backend: InferenceBackend) -> int:
        """Install (or hot-swap) the fallback backend; returns the new epoch."""
        self._epoch += 1
        self._default = backend
        self._default_version = self._epoch
        return self._epoch

    def register(self, patient_id: int, backend: InferenceBackend) -> int:
        """Install (or hot-swap) one patient's tailored backend.

        Replaces any existing entry atomically and returns the new epoch —
        the version stamp :meth:`version_of` will report for this patient.
        """
        self._epoch += 1
        patient_id = int(patient_id)
        self._models[patient_id] = backend
        self._versions[patient_id] = self._epoch
        return self._epoch

    def unregister(self, patient_id: int) -> None:
        """Drop a patient's tailored backend (they fall back to the default)."""
        patient_id = int(patient_id)
        if patient_id not in self._models:
            raise KeyError("patient %d has no registered model" % patient_id)
        self._epoch += 1
        del self._models[patient_id]
        del self._versions[patient_id]

    # -------------------------------------------------------------- lookup
    def backend_for(self, patient_id: int) -> InferenceBackend:
        """The backend serving ``patient_id`` (their own, else the default)."""
        backend = self._models.get(int(patient_id), self._default)
        if backend is None:
            raise KeyError(
                "patient %d has no registered model and the registry has no default"
                % int(patient_id)
            )
        return backend

    def has_model(self, patient_id: int) -> bool:
        """Whether ``patient_id`` has a *tailored* (non-default) backend."""
        return int(patient_id) in self._models

    def version_of(self, patient_id: int) -> int:
        """Epoch that installed the backend currently serving ``patient_id``."""
        patient_id = int(patient_id)
        if patient_id in self._versions:
            return self._versions[patient_id]
        if self._default is None:
            raise KeyError(
                "patient %d has no registered model and the registry has no default"
                % patient_id
            )
        return self._default_version

    def label_for(self, patient_id: int) -> str:
        """Per-model stats label of the backend serving ``patient_id``."""
        return backend_label(self.backend_for(patient_id))

    @property
    def patient_ids(self) -> List[int]:
        """Patients with a tailored backend (default-served ones excluded)."""
        return sorted(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, patient_id: int) -> bool:
        return self.has_model(patient_id)

    def backends(self) -> List[InferenceBackend]:
        """The distinct backends currently registered (default included)."""
        seen: Dict[int, InferenceBackend] = {}
        if self._default is not None:
            seen[id(self._default)] = self._default
        for backend in self._models.values():
            seen.setdefault(id(backend), backend)
        return list(seen.values())

    def __repr__(self) -> str:
        return "ModelRegistry(%d tailored, default=%s, epoch=%d)" % (
            len(self._models),
            backend_label(self._default) if self._default is not None else None,
            self._epoch,
        )

    # ------------------------------------------------------------- builders
    @classmethod
    def from_models(
        cls,
        models: Mapping[int, InferenceBackend],
        default: Optional[InferenceBackend] = None,
    ) -> "ModelRegistry":
        """Registry over an existing ``patient_id -> backend`` mapping."""
        return cls(default=default, models=models)

    @classmethod
    def from_design_points(
        cls,
        assignments: Mapping[int, "DesignPoint"],  # noqa: F821 - forward ref
        features,
        default: Optional["DesignPoint"] = None,  # noqa: F821 - forward ref
        *,
        quantization=None,
        kernel=None,
        train_params=None,
        chunk_fraction: float = 0.25,
    ) -> "ModelRegistry":
        """Build a registry straight from combined-flow design points.

        ``assignments`` maps each patient to the
        :class:`~repro.core.design_point.DesignPoint` they should run
        (e.g. the stages of a
        :class:`~repro.core.combined.CombinedFlowResult`, or points loaded
        back through :meth:`DesignPoint.from_json
        <repro.core.design_point.DesignPoint.from_json>`); ``features`` is
        the full-width training :class:`~repro.features.extractor.FeatureMatrix`.
        One backend is trained per *distinct* design configuration
        (feature count, SV budget, bit widths) and shared by every patient
        assigned to it — see :func:`backend_from_design_point` for how a
        point becomes a model and which
        :class:`~repro.quant.quantized_model.QuantizationConfig` knobs the
        ``quantization`` template contributes.
        """
        from repro.core.feature_selection import correlation_removal_order

        removal_order = correlation_removal_order(features.X)
        cache: Dict[tuple, InferenceBackend] = {}

        def build(point) -> InferenceBackend:
            # The name is part of the key: the backend's describe() label (and
            # hence the per-model drain ledger) carries it, so two same-config
            # points with different names must not share a mislabelled model.
            key = (
                str(point.name),
                int(point.n_features),
                int(round(point.n_support_vectors)),
                int(point.feature_bits),
                int(point.coeff_bits),
            )
            backend = cache.get(key)
            if backend is None:
                backend = cache[key] = backend_from_design_point(
                    point,
                    features,
                    quantization=quantization,
                    kernel=kernel,
                    train_params=train_params,
                    chunk_fraction=chunk_fraction,
                    removal_order=removal_order,
                )
            return backend

        registry = cls(default=build(default) if default is not None else None)
        for patient_id, point in assignments.items():
            registry.register(patient_id, build(point))
        return registry


def backend_from_design_point(
    point,
    features,
    *,
    quantization=None,
    kernel=None,
    train_params=None,
    chunk_fraction: float = 0.25,
    removal_order: Optional[Sequence[int]] = None,
) -> InferenceBackend:
    """Train the backend realising one combined-flow design point.

    Replays the stages of :func:`repro.core.combined.combined_optimisation_flow`
    for a single configuration, on the full training matrix:

    1. *feature reduction* — when ``point.n_features`` is below the matrix
       width, the correlation-driven removal order picks the kept columns
       (recorded on the backend as its projection indices, so it can consume
       the fleet's full-width window vectors);
    2. *SV budgeting* — the training set is budgeted to
       ``round(point.n_support_vectors)`` support vectors (a no-op when the
       unbudgeted model already fits);
    3. *bit-width reduction* — unless both widths are >= 64 (the float
       reference), the model is wrapped in the bit-accurate
       :class:`~repro.quant.quantized_model.QuantizedSVM`.

    ``quantization`` is an optional :class:`~repro.quant.quantized_model.QuantizationConfig`
    *template*: its truncation knobs (``truncate_after_dot``,
    ``truncate_after_square``), scaling scheme (``per_feature_scaling``,
    ``range_margin_sigma``) and ``datapath_cap_bits`` are kept while the
    design point's ``feature_bits`` / ``coeff_bits`` replace the widths.
    """
    import dataclasses

    from repro.core.feature_selection import correlation_removal_order, select_features
    from repro.quant.backend import QuantizedSVMBackend
    from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
    from repro.svm.backend import FloatSVMBackend
    from repro.svm.budget import BudgetParams, budget_training_set
    from repro.svm.kernels import PolynomialKernel
    from repro.svm.model import train_svm

    n_keep = int(point.n_features)
    if not 1 <= n_keep <= features.n_features:
        raise ValueError(
            "design point %r wants %d features but the matrix has %d"
            % (point.name, n_keep, features.n_features)
        )
    feature_indices: Optional[List[int]] = None
    X = features.X
    if n_keep < features.n_features:
        if removal_order is None:
            removal_order = correlation_removal_order(features.X)
        feature_indices = select_features(features.X, n_keep, removal_order)
        X = features.X[:, feature_indices]

    quad = kernel or PolynomialKernel(degree=2)
    budget = int(round(point.n_support_vectors))
    if budget >= 2:
        model, _ = budget_training_set(
            X,
            features.y,
            kernel=quad,
            train_params=train_params,
            budget_params=BudgetParams(budget=budget, chunk_fraction=chunk_fraction),
        )
    else:
        model = train_svm(X, features.y, kernel=quad, params=train_params)

    if point.feature_bits >= 64 and point.coeff_bits >= 64:
        return FloatSVMBackend(model, feature_indices=feature_indices, name=point.name)
    template = quantization if quantization is not None else QuantizationConfig()
    config = dataclasses.replace(
        template,
        feature_bits=int(point.feature_bits),
        coeff_bits=int(point.coeff_bits),
    )
    return QuantizedSVMBackend(
        QuantizedSVM(model, config), feature_indices=feature_indices, name=point.name
    )
