"""Parity and backpressure tests for the async ingestion gateway.

Two contracts are under test.  **Parity**: for any chunking of the byte
stream (hypothesis-chosen socket write sizes), any queue depth and any
backpressure policy that drops no frames, a workload streamed through the
TCP gateway yields decisions identical to the synchronous
:class:`~repro.serving.sharding.ShardedFleet` loop — bit-exact scores on the
quantized path.  **Accounting**: under the lossy policies every frame is
delivered, queued, shed, rejected or errored; an over-rate producer can
never deadlock the fleet or make a frame vanish untallied.

There is no pytest-asyncio in the environment; every async scenario runs
under its own ``asyncio.run``.
"""

import asyncio
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    BackpressureError,
    ChunkCountPolicy,
    IngestGateway,
    LatencyPolicy,
    MonitorFleet,
    PendingWindow,
    PendingWindowPolicy,
    ShardedFleet,
    StreamDecoder,
    WireFormatError,
    encode_chunk,
    iter_chunks,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg

FS = 128.0


# ---------------------------------------------------------------------------
# StreamDecoder: chunking invariance and early failure
# ---------------------------------------------------------------------------


def _frame_blob(n_frames=8, seed=3):
    rng = np.random.default_rng(seed)
    frames = [
        encode_chunk(i % 3, i // 3, FS, rng.standard_normal(int(rng.integers(0, 80))))
        for i in range(n_frames)
    ]
    return b"".join(frames)


class TestStreamDecoder:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_read_chunking_yields_the_same_frames(self, data):
        blob = _frame_blob(n_frames=data.draw(st.integers(0, 8)))
        expected = list(iter_chunks(blob))
        cuts = sorted(
            data.draw(
                st.lists(st.integers(1, max(1, len(blob))), max_size=30, unique=True)
            )
        )
        decoder = StreamDecoder()
        chunks = []
        lo = 0
        for cut in cuts + [len(blob)]:
            chunks.extend(decoder.feed(blob[lo:cut]))
            lo = cut
        decoder.finish()
        assert decoder.at_frame_boundary
        assert decoder.frames_decoded == len(expected)
        assert [(c.patient_id, c.seq, c.n_samples) for c in chunks] == [
            (c.patient_id, c.seq, c.n_samples) for c in expected
        ]
        for got, want in zip(chunks, expected):
            assert np.array_equal(got.samples, want.samples)

    def test_partial_tail_is_buffered_not_an_error(self):
        blob = _frame_blob(n_frames=2)
        decoder = StreamDecoder()
        chunks = decoder.feed(blob[:-5])
        assert len(chunks) == 1
        assert decoder.buffered_bytes > 0 and not decoder.at_frame_boundary
        chunks += decoder.feed(blob[-5:])
        assert len(chunks) == 2 and decoder.at_frame_boundary

    def test_bad_magic_fails_before_the_header_completes(self):
        decoder = StreamDecoder()
        with pytest.raises(WireFormatError, match="bad magic"):
            decoder.feed(b"EC?!")

    def test_header_corruption_fails_before_the_payload_arrives(self):
        frame = encode_chunk(1, 0, FS, np.zeros(1024))
        bad = bytearray(frame[:40])
        bad[4] ^= 0xFF  # version byte
        decoder = StreamDecoder()
        with pytest.raises(WireFormatError, match="version"):
            decoder.feed(bytes(bad))

    def test_crc_mismatch_detected_once_the_payload_completes(self):
        frame = bytearray(encode_chunk(1, 0, FS, np.arange(16.0)))
        frame[40] ^= 0x01
        decoder = StreamDecoder()
        assert decoder.feed(bytes(frame[:-1])) == []
        with pytest.raises(WireFormatError, match="CRC"):
            decoder.feed(bytes(frame[-1:]))

    def test_corrupt_decoder_refuses_further_input(self):
        decoder = StreamDecoder()
        with pytest.raises(WireFormatError):
            decoder.feed(b"NOPE")
        with pytest.raises(WireFormatError, match="drop the connection"):
            decoder.feed(b"")
        with pytest.raises(WireFormatError, match="drop the connection"):
            decoder.finish()

    def test_finish_rejects_mid_frame_eof(self):
        decoder = StreamDecoder()
        decoder.feed(_frame_blob(n_frames=1)[:-1])
        with pytest.raises(WireFormatError, match="ended mid-frame"):
            decoder.finish()

    def test_corruption_does_not_cost_frames_decoded_in_the_same_feed(self):
        """Valid frames ahead of garbage in one read are delivered; the
        error defers to the next call — so the delivered count is invariant
        under read chunking even for corrupt streams."""
        blob = _frame_blob(n_frames=3) + b"GARBAGE GARBAGE GARBAGE GARBAGE"
        one_read = StreamDecoder()
        chunks = one_read.feed(blob)
        assert len(chunks) == 3
        with pytest.raises(WireFormatError, match="bad magic"):
            one_read.feed(b"")
        with pytest.raises(WireFormatError, match="drop the connection"):
            one_read.feed(b"")

        per_byte = StreamDecoder()
        salvaged = []
        error = None
        for i in range(len(blob)):
            try:
                salvaged.extend(per_byte.feed(blob[i : i + 1]))
            except WireFormatError as exc:
                error = exc
                break
        assert len(salvaged) == 3 and error is not None

    def test_deferred_error_also_surfaces_on_finish(self):
        decoder = StreamDecoder()
        assert len(decoder.feed(_frame_blob(n_frames=1) + b"JUNK")) == 1
        with pytest.raises(WireFormatError, match="bad magic"):
            decoder.finish()

    def test_oversized_payload_declaration_is_rejected_at_the_header(self):
        """A corrupt sample count must not make the decoder buffer forever:
        the bound rejects it as soon as the 32-byte header arrives."""
        frame = encode_chunk(1, 0, FS, np.zeros(64))
        decoder = StreamDecoder(max_frame_bytes=64 * 8)
        assert len(decoder.feed(frame)) == 1  # at the bound: fine
        big = encode_chunk(1, 1, FS, np.zeros(65))
        fresh = StreamDecoder(max_frame_bytes=64 * 8)
        with pytest.raises(WireFormatError, match="frame bound"):
            fresh.feed(big[: 32 + 8])  # header + a few payload bytes suffice
        with pytest.raises(ValueError, match="max_frame_bytes"):
            StreamDecoder(max_frame_bytes=0)


# ---------------------------------------------------------------------------
# Gateway parity with the synchronous sharded loop
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    """Small multi-patient raw-ECG workload plus its wire-format byte stream."""
    params = CohortParams(
        n_patients=3,
        n_sessions=3,
        session_duration_s=900.0,
        total_seizures=3,
        seed=33,
        ecg_params=ECGWaveformParams(fs=FS),
    )
    cohort = generate_cohort(params)
    rng = np.random.default_rng(34)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s, recording.duration_s, recording.respiration, rng
        )
        chunks = []
        lo = 0
        while lo < ecg.ecg_mv.size:
            size = int(rng.integers(300, 5000))
            chunks.append(ecg.ecg_mv[lo : lo + size])
            lo += size
        streams[recording.patient_id] = chunks
    # One byte stream: frames interleaved round-robin across patients, the
    # arrival order the synchronous run_streams driver uses.
    sequence = {pid: 0 for pid in streams}
    iterators = {pid: iter(chunks) for pid, chunks in streams.items()}
    frames = []
    while iterators:
        for pid in list(iterators):
            try:
                chunk = next(iterators[pid])
            except StopIteration:
                del iterators[pid]
                continue
            frames.append(encode_chunk(pid, sequence[pid], FS, chunk))
            sequence[pid] += 1
    return dict(streams=streams, frames=frames, blob=b"".join(frames))


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


@pytest.fixture(scope="module")
def reference_decisions(workload, quantized_detector):
    """The synchronous sharded loop over the same workload."""
    fleet = ShardedFleet(quantized_detector, FS, n_shards=2)
    decisions = fleet.run(workload["streams"])
    assert any(d.usable for d in decisions)  # the parity must mean something
    return decisions


def _assert_decisions_identical(reference, candidate, *, exact_scores=True):
    assert len(candidate) == len(reference)
    for expected, got in zip(reference, candidate):
        assert got.patient_id == expected.patient_id
        assert got.start_s == expected.start_s
        assert got.end_s == expected.end_s
        assert got.n_beats == expected.n_beats
        assert got.usable == expected.usable
        assert got.alarm == expected.alarm
        if expected.score is None:
            assert got.score is None
        elif exact_scores:
            assert got.score == expected.score
        else:
            assert math.isclose(got.score, expected.score, rel_tol=1e-9, abs_tol=1e-12)


async def _stream_pieces(gateway, pieces):
    """Write a pre-cut byte stream over one TCP connection, then stop."""
    host, port = await gateway.serve()
    _, writer = await asyncio.open_connection(host, port)
    for piece in pieces:
        writer.write(piece)
        await writer.drain()
    writer.close()
    await writer.wait_closed()
    return await gateway.stop()


class TestGatewayParity:
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_tcp_stream_matches_sync_loop_for_any_read_chunking(
        self, workload, quantized_detector, reference_decisions, data
    ):
        blob = workload["blob"]
        queue_depth = data.draw(st.integers(1, 8))
        policy = data.draw(
            st.sampled_from(
                [None, ChunkCountPolicy(3), PendingWindowPolicy(2), LatencyPolicy(0.0)]
            )
        )
        cuts = sorted(
            data.draw(st.lists(st.integers(1, len(blob) - 1), max_size=64, unique=True))
        )
        bounds = [0] + cuts + [len(blob)]
        pieces = [blob[a:b] for a, b in zip(bounds[:-1], bounds[1:])]

        fleet = ShardedFleet(quantized_detector, FS, n_shards=2)
        gateway = IngestGateway(
            fleet, queue_depth=queue_depth, backpressure="block", drain_policy=policy
        )
        decisions = asyncio.run(_stream_pieces(gateway, pieces))
        _assert_decisions_identical(reference_decisions, decisions)

        stats = gateway.stats()
        assert stats.frames_received == len(workload["frames"])
        assert stats.frames_delivered == stats.frames_received
        assert stats.frames_shed == stats.frames_rejected == stats.frames_errored == 0
        assert stats.fully_accounted
        assert stats.decisions == len(decisions)

    def test_one_connection_per_patient_matches_sync_loop(
        self, workload, quantized_detector, reference_decisions
    ):
        """Concurrent per-node connections: cross-patient arrival order is
        nondeterministic, but per-patient FIFO + canonical ordering keep the
        decisions identical."""

        async def run():
            fleet = ShardedFleet(quantized_detector, FS, n_shards=2)
            gateway = IngestGateway(fleet, queue_depth=4)
            host, port = await gateway.serve()

            async def node(pid):
                _, writer = await asyncio.open_connection(host, port)
                seq = 0
                for chunk in workload["streams"][pid]:
                    writer.write(encode_chunk(pid, seq, FS, chunk))
                    if seq % 3 == 0:
                        await writer.drain()
                    seq += 1
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(*[node(pid) for pid in workload["streams"]])
            return await gateway.stop(), gateway.stats()

        decisions, stats = asyncio.run(run())
        _assert_decisions_identical(reference_decisions, decisions)
        assert stats.connections == len(workload["streams"])
        assert stats.fully_accounted

    def test_in_process_submit_matches_sync_loop(
        self, workload, quantized_detector, reference_decisions
    ):
        async def run():
            fleet = ShardedFleet(quantized_detector, FS, n_shards=2)
            async with IngestGateway(fleet, queue_depth=2) as gateway:
                for frame in workload["frames"]:
                    await gateway.submit(frame)
            return gateway.decisions

        decisions = asyncio.run(run())
        _assert_decisions_identical(reference_decisions, decisions)


# ---------------------------------------------------------------------------
# Backpressure policies and the frame ledger
# ---------------------------------------------------------------------------


class _NoCallClassifier:
    def scores_and_labels(self, X):  # pragma: no cover - never called
        raise AssertionError("classification not expected in this test")


def _zero_frames(patient_id, count, n_samples=64):
    return [encode_chunk(patient_id, seq, FS, np.zeros(n_samples)) for seq in range(count)]


class TestBackpressure:
    def test_shed_oldest_keeps_the_newest_frames(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4, backpressure="shed-oldest")
            for frame in _zero_frames(0, 12):
                await gateway.submit(frame)
            before = gateway.stats()
            await gateway.stop()
            return fleet, before, gateway.stats()

        fleet, before, after = asyncio.run(run())
        assert before.frames_received == 12
        assert before.frames_shed == 8
        assert before.queued_frames == 4
        assert before.fully_accounted
        assert after.frames_delivered == 4
        assert after.frames_errored == 0  # lossy policy relaxes seq enforcement
        assert after.queued_frames == 0
        assert after.fully_accounted
        # Only the newest four frames reached the DSP state.
        assert fleet.monitor(0).time_seen_s == pytest.approx(4 * 64 / FS)

    def test_shed_is_per_patient(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=2, backpressure="shed-oldest")
            for frame in _zero_frames(0, 5) + _zero_frames(1, 2):
                await gateway.submit(frame)
            stats = gateway.stats()
            await gateway.stop()
            return stats, gateway.stats()

        before, after = asyncio.run(run())
        # Patient 0 overflowed (3 sheds); patient 1 fit exactly.
        assert before.frames_shed == 3
        assert before.queued_frames == 4
        assert after.frames_delivered == 4
        assert after.fully_accounted

    def test_reject_raises_and_counts(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=3, backpressure="reject")
            frames = _zero_frames(5, 5)
            for frame in frames[:3]:
                await gateway.submit(frame)
            rejections = 0
            for frame in frames[3:]:
                with pytest.raises(BackpressureError) as excinfo:
                    await gateway.submit(frame)
                assert excinfo.value.patient_id == 5
                rejections += 1
            stats = gateway.stats()
            await gateway.stop()
            return rejections, stats, gateway.stats()

        rejections, before, after = asyncio.run(run())
        assert rejections == 2
        assert before.frames_rejected == 2 and before.queued_frames == 3
        assert before.fully_accounted
        assert after.frames_delivered == 3 and after.fully_accounted

    def test_block_policy_holds_the_producer_until_the_pump_makes_room(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=2, backpressure="block")
            frames = _zero_frames(0, 10)

            async def producer():
                for frame in frames:
                    await gateway.submit(frame)

            task = asyncio.get_running_loop().create_task(producer())
            await asyncio.sleep(0.05)
            # Without the pump, the producer is parked on a full queue — and
            # the frame it is holding is not yet "received", so the ledger
            # balances even mid-block.
            assert not task.done()
            blocked = gateway.stats()
            assert blocked.queued_frames == 2
            assert blocked.frames_received == 2
            assert blocked.fully_accounted
            await gateway.start()
            await asyncio.wait_for(task, timeout=5.0)
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.frames_received == stats.frames_delivered == 10
        assert stats.frames_shed == stats.frames_rejected == 0
        assert stats.max_queue_depth <= 2
        assert stats.fully_accounted

    def test_over_rate_tcp_producer_sheds_without_deadlock(self):
        n_frames = 200

        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=8, backpressure="shed-oldest")
            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            # One giant burst: the reader decodes far faster than the pump
            # delivers, so the per-patient queue must overflow and shed.
            writer.write(b"".join(_zero_frames(3, n_frames)))
            writer.close()
            await writer.wait_closed()
            decisions = await asyncio.wait_for(gateway.stop(), timeout=10.0)
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run())
        assert decisions == []
        assert stats.frames_received == n_frames
        assert stats.frames_shed > 0
        assert stats.queued_frames == 0
        # The ledger balances: delivered + shed + rejected (+ errored) == sent.
        assert (
            stats.frames_delivered + stats.frames_shed + stats.frames_rejected
            == n_frames
        )
        assert stats.frames_errored == 0
        assert stats.fully_accounted

    def test_strict_sequencing_under_block_counts_transport_gaps(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4, backpressure="block")
            assert gateway.enforce_seq
            await gateway.submit(encode_chunk(0, 0, FS, np.zeros(64)))
            await gateway.submit(encode_chunk(0, 2, FS, np.zeros(64)))  # gap!
            await gateway.stop()
            return fleet, gateway.stats()

        fleet, stats = asyncio.run(run())
        assert stats.frames_delivered == 1 and stats.frames_errored == 1
        assert stats.fully_accounted
        # The gap never reached the DSP state.
        assert fleet.monitor(0).time_seen_s == pytest.approx(64 / FS)

    def test_unknown_patient_on_closed_fleet_counts_as_errored(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS, auto_register=False)
            fleet.add_patient(1)
            gateway = IngestGateway(fleet, queue_depth=4)
            await gateway.submit(encode_chunk(1, 0, FS, np.zeros(64)))
            await gateway.submit(encode_chunk(99, 0, FS, np.zeros(64)))
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.frames_delivered == 1 and stats.frames_errored == 1
        assert stats.fully_accounted

    def test_submit_of_an_undecodable_frame_counts_as_a_wire_error(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            with pytest.raises(WireFormatError):
                await gateway.submit(b"not a frame at all")
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.wire_errors == 1
        assert stats.frames_received == 0 and stats.frames_errored == 0
        assert stats.bytes_received == len(b"not a frame at all")
        assert stats.fully_accounted

    def test_fs_mismatch_is_rejected_at_the_door(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            with pytest.raises(WireFormatError, match="does not match"):
                await gateway.submit(encode_chunk(0, 0, 2 * FS, np.zeros(64)))
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.frames_received == 1 and stats.frames_errored == 1
        assert stats.frames_delivered == 0
        assert stats.fully_accounted

    def test_validation(self):
        fleet = MonitorFleet(_NoCallClassifier(), FS)
        with pytest.raises(ValueError, match="backpressure"):
            IngestGateway(fleet, backpressure="drop-newest")
        with pytest.raises(ValueError, match="queue_depth"):
            IngestGateway(fleet, queue_depth=0)


# ---------------------------------------------------------------------------
# Transport robustness, scheduling and shutdown
# ---------------------------------------------------------------------------


class TestGatewayLifecycle:
    def test_corrupt_connection_dies_alone(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            host, port = await gateway.serve()

            _, bad = await asyncio.open_connection(host, port)
            bad.write(b"GARBAGE STREAM")
            bad.close()
            await bad.wait_closed()

            _, good = await asyncio.open_connection(host, port)
            good.write(b"".join(_zero_frames(1, 3)))
            good.close()
            await good.wait_closed()

            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.wire_errors == 1
        assert stats.frames_delivered == 3
        assert stats.connections == 2
        assert stats.fully_accounted

    def test_truncated_connection_counts_as_wire_error(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(_zero_frames(1, 1)[0][:-3])  # EOF mid-frame
            writer.close()
            await writer.wait_closed()
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.wire_errors == 1 and stats.frames_received == 0

    def test_stop_flushes_pending_windows(self, quantized_detector, feature_matrix):
        window = PendingWindow(
            patient_id=0,
            start_s=0.0,
            end_s=180.0,
            n_beats=200,
            features=feature_matrix.X[0],
        )

        async def run():
            fleet = MonitorFleet(quantized_detector, FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            await gateway.start()
            fleet.enqueue([window])
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run())
        assert len(decisions) == 1 and decisions[0].usable
        assert stats.decisions == 1 and stats.drains == 1

    def test_latency_policy_fires_on_the_idle_tick(self, quantized_detector, feature_matrix):
        """The injectable fleet clock makes LatencyPolicy testable under
        asyncio: the drain fires only once *fake* time passes, discovered by
        the pump's idle poll without any new frames arriving."""
        fake_now = [0.0]
        window = PendingWindow(
            patient_id=0,
            start_s=0.0,
            end_s=180.0,
            n_beats=200,
            features=feature_matrix.X[0],
        )

        async def run():
            fleet = MonitorFleet(
                quantized_detector,
                FS,
                drain_policy=LatencyPolicy(10.0),
                clock=lambda: fake_now[0],
            )
            gateway = IngestGateway(fleet, queue_depth=4, poll_interval_s=0.01)
            await gateway.start()
            fleet.enqueue([window])
            await asyncio.sleep(0.05)
            quiet = list(gateway.decisions)  # policy must not have fired yet
            fake_now[0] = 11.0
            for _ in range(100):
                await asyncio.sleep(0.01)
                if gateway.decisions:
                    break
            fired = list(gateway.decisions)
            await gateway.stop()
            return quiet, fired

        quiet, fired = asyncio.run(run())
        assert quiet == []
        assert len(fired) == 1

    def test_stop_disconnects_idle_open_connections(self):
        """A node that delivered its frames but holds the socket open (the
        steady state of an always-on wearable) must not park shutdown."""

        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4, close_grace_s=0.2)
            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b"".join(_zero_frames(1, 2)))
            await writer.drain()
            await asyncio.sleep(0.1)  # frames land; the link stays open, idle
            await asyncio.wait_for(gateway.stop(), timeout=5.0)
            stats = gateway.stats()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return stats

        stats = asyncio.run(run())
        assert stats.frames_delivered == 2
        assert stats.wire_errors == 0  # a forced close is not corruption
        assert stats.fully_accounted

    def test_restarted_gateway_still_detects_truncated_streams(self):
        """A stop() that force-closed an idle link must not leave truncation
        detection disarmed when the gateway is started again."""

        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4, close_grace_s=0.1)
            host, port = await gateway.serve()
            _, idle = await asyncio.open_connection(host, port)
            idle.write(b"".join(_zero_frames(1, 1)))
            await idle.drain()
            await asyncio.sleep(0.05)
            await gateway.stop()  # forces the idle link closed

            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(_zero_frames(1, 1)[0][:-3])  # node dies mid-frame
            writer.close()
            await writer.wait_closed()
            await gateway.stop()

            idle.close()
            try:
                await idle.wait_closed()
            except (ConnectionError, OSError):
                pass
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.wire_errors == 1

    def test_stop_survives_and_retries_a_pump_classifier_fault(
        self, quantized_detector, feature_matrix
    ):
        """PR 2's retryable-drain contract holds at the gateway layer: a
        classifier fault that kills the pump costs nothing once it clears —
        and a persistent fault propagates with every queue intact."""

        class _FlakyClassifier:
            def __init__(self):
                self.fail = True

            def scores_and_labels(self, X):
                if self.fail:
                    raise RuntimeError("transient classifier fault")
                return quantized_detector.scores_and_labels(X)

        def window(start_s):
            return PendingWindow(
                patient_id=0,
                start_s=start_s,
                end_s=start_s + 180.0,
                n_beats=200,
                features=feature_matrix.X[0],
            )

        async def transient():
            flaky = _FlakyClassifier()
            fleet = MonitorFleet(flaky, FS, drain_policy=LatencyPolicy(0.0))
            gateway = IngestGateway(fleet, queue_depth=4, poll_interval_s=0.01)
            await gateway.start()
            fleet.enqueue([window(0.0)])
            await asyncio.sleep(0.05)  # idle-tick drain raises; the pump dies
            flaky.fail = False  # the fault clears before shutdown
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(transient())
        assert len(decisions) == 1 and decisions[0].usable
        assert stats.fully_accounted

        async def persistent():
            flaky = _FlakyClassifier()
            previous = LatencyPolicy(0.0)
            fleet = MonitorFleet(flaky, FS, drain_policy=previous)
            gateway = IngestGateway(fleet, queue_depth=4, poll_interval_s=0.01)
            await gateway.start()
            fleet.enqueue([window(0.0)])
            with pytest.raises(RuntimeError, match="classifier fault"):
                await gateway.stop()  # final drain hits the persistent fault
            assert fleet.drain_policy is previous  # restored even on failure
            assert fleet.pending_count == 1  # the window survived, retryable
            flaky.fail = False
            decisions = await gateway.stop()
            return decisions

        decisions = asyncio.run(persistent())
        assert len(decisions) == 1 and decisions[0].usable

    def test_start_revives_a_dead_pump(self, quantized_detector, feature_matrix):
        class _FlakyClassifier:
            def __init__(self):
                self.fail = True

            def scores_and_labels(self, X):
                if self.fail:
                    raise RuntimeError("transient classifier fault")
                return quantized_detector.scores_and_labels(X)

        flaky = _FlakyClassifier()
        window = PendingWindow(
            patient_id=0,
            start_s=0.0,
            end_s=180.0,
            n_beats=200,
            features=feature_matrix.X[0],
        )

        async def run():
            fleet = MonitorFleet(flaky, FS, drain_policy=LatencyPolicy(0.0))
            gateway = IngestGateway(fleet, queue_depth=4, poll_interval_s=0.01)
            await gateway.start()
            fleet.enqueue([window])
            await asyncio.sleep(0.05)  # idle-tick drain raises; the pump dies
            flaky.fail = False
            await gateway.start()  # revives delivery without a teardown
            await gateway.submit(_zero_frames(3, 1)[0])
            for _ in range(100):
                await asyncio.sleep(0.01)
                if gateway.stats().frames_delivered:
                    break
            delivered_live = gateway.stats().frames_delivered
            decisions = await gateway.stop()
            return delivered_live, decisions

        delivered_live, decisions = asyncio.run(run())
        assert delivered_live == 1  # delivered by the revived pump, not stop()
        assert len(decisions) == 1 and decisions[0].usable

    def test_reviving_a_dead_pump_keeps_the_true_previous_policy(
        self, quantized_detector, feature_matrix
    ):
        """start() after a pump death must not re-capture the gateway's own
        installed policy as the fleet's 'previous' one."""

        class _OneFaultClassifier:
            def __init__(self):
                self.fail = True

            def scores_and_labels(self, X):
                if self.fail:
                    raise RuntimeError("transient classifier fault")
                return quantized_detector.scores_and_labels(X)

        flaky = _OneFaultClassifier()
        window = PendingWindow(
            patient_id=0,
            start_s=0.0,
            end_s=180.0,
            n_beats=200,
            features=feature_matrix.X[0],
        )

        async def run():
            callers_policy = PendingWindowPolicy(32)
            gateway_policy = LatencyPolicy(0.0)
            fleet = MonitorFleet(flaky, FS, drain_policy=callers_policy)
            gateway = IngestGateway(
                fleet, queue_depth=4, poll_interval_s=0.01, drain_policy=gateway_policy
            )
            await gateway.start()
            fleet.enqueue([window])
            await asyncio.sleep(0.05)  # pump dies on the fault
            flaky.fail = False
            await gateway.start()  # revive
            await gateway.stop()
            return callers_policy, fleet.drain_policy

        callers_policy, final = asyncio.run(run())
        assert final is callers_policy

    def test_stop_restores_the_fleets_previous_drain_policy(self):
        async def run():
            previous = PendingWindowPolicy(32)
            gateway_policy = ChunkCountPolicy(3)
            fleet = MonitorFleet(_NoCallClassifier(), FS, drain_policy=previous)
            gateway = IngestGateway(fleet, drain_policy=gateway_policy)
            await gateway.start()
            assert fleet.drain_policy is gateway_policy
            await gateway.stop()
            restored_once = fleet.drain_policy
            # A restarted gateway reinstalls its policy for the new period.
            await gateway.start()
            reinstalled = fleet.drain_policy
            await gateway.stop()
            return previous, gateway_policy, restored_once, reinstalled, fleet

        previous, gateway_policy, restored_once, reinstalled, fleet = asyncio.run(run())
        assert restored_once is previous
        assert reinstalled is gateway_policy
        assert fleet.drain_policy is previous

    def test_gateway_survives_a_new_event_loop_per_serving_period(self):
        """Each serving period may run under its own asyncio.run (a cron job,
        a test harness).  Pre-3.12, asyncio.Event binds to the first loop
        that awaits it — the gateway must not carry stale bindings over."""
        fleet = MonitorFleet(_NoCallClassifier(), FS)
        gateway = IngestGateway(fleet, queue_depth=1, backpressure="block")

        async def period(patient_id):
            host, port = await gateway.serve()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b"".join(_zero_frames(patient_id, 4)))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # queue_depth=1 + block: progress requires a live pump; a pump
            # killed by a cross-loop Event would strand these frames.
            await asyncio.wait_for(gateway.stop(), timeout=5.0)

        asyncio.run(period(0))
        asyncio.run(period(1))
        stats = gateway.stats()
        assert stats.frames_delivered == 8
        assert stats.fully_accounted

    def test_stop_leaves_externally_set_policy_alone_when_gateway_has_none(self):
        async def run():
            fleet = MonitorFleet(
                _NoCallClassifier(), FS, drain_policy=PendingWindowPolicy(32)
            )
            gateway = IngestGateway(fleet)  # no gateway policy of its own
            await gateway.start()
            newer = ChunkCountPolicy(5)
            fleet.drain_policy = newer  # the caller swaps policies mid-run
            await gateway.stop()
            return newer, fleet.drain_policy

        newer, final = asyncio.run(run())
        assert final is newer

    def test_stop_unblocks_tcp_producers_when_the_pump_is_dead(
        self, quantized_detector, feature_matrix
    ):
        """The nastiest shutdown corner: the pump died on a classifier fault
        while a block-policy node handler is parked on a full queue.  stop()
        must wake the handler, absorb its frame and still flush everything."""

        class _FlakyClassifier:
            def __init__(self):
                self.fail = True

            def scores_and_labels(self, X):
                if self.fail:
                    raise RuntimeError("transient classifier fault")
                return quantized_detector.scores_and_labels(X)

        flaky = _FlakyClassifier()
        window = PendingWindow(
            patient_id=0,
            start_s=0.0,
            end_s=180.0,
            n_beats=200,
            features=feature_matrix.X[0],
        )
        n_frames = 8

        async def run():
            fleet = MonitorFleet(flaky, FS, drain_policy=LatencyPolicy(0.0))
            gateway = IngestGateway(
                fleet, queue_depth=2, poll_interval_s=0.01, close_grace_s=0.2
            )
            host, port = await gateway.serve()
            fleet.enqueue([window])
            await asyncio.sleep(0.05)  # idle-tick drain raises; the pump dies
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b"".join(_zero_frames(3, n_frames)))
            await writer.drain()
            await asyncio.sleep(0.1)  # the handler parks on the full queue
            flaky.fail = False
            decisions = await asyncio.wait_for(gateway.stop(), timeout=10.0)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run())
        assert len(decisions) == 1 and decisions[0].usable
        assert stats.frames_received == n_frames
        assert stats.frames_delivered == n_frames
        assert stats.fully_accounted

    def test_serve_twice_is_an_error(self):
        async def run():
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4)
            await gateway.serve()
            with pytest.raises(RuntimeError, match="already serving"):
                await gateway.serve()
            await gateway.stop()

        asyncio.run(run())

    def test_stats_uptime_uses_the_injectable_clock(self):
        async def run():
            fake_now = [100.0]
            fleet = MonitorFleet(_NoCallClassifier(), FS)
            gateway = IngestGateway(fleet, queue_depth=4, clock=lambda: fake_now[0])
            assert gateway.stats().uptime_s == 0.0
            await gateway.start()
            fake_now[0] = 104.0
            for frame in _zero_frames(0, 8):
                await gateway.submit(frame)
            await gateway.stop()
            return gateway.stats()

        stats = asyncio.run(run())
        assert stats.uptime_s == pytest.approx(4.0)
        assert stats.frames_per_s == pytest.approx(stats.frames_delivered / 4.0)
