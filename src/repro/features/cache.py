"""Overlap-aware cache of per-beat feature partials.

Overlapping analysis windows (``step_s < window_s``, and the seizure-enriched
stride of the offline grid) recompute the same per-beat-pair quantities many
times: the successive RR differences, their squares, the NN50 indicator, the
instantaneous heart rate and the rotated Lorenz-plot coordinates.  All of
these are *elementwise* functions of one or two adjacent RR intervals, so
their values do not depend on which window they are computed in — they can be
cached per absolute beat index and sliced per window.

Window-global quantities (means, standard deviations, the Welch/Burg spectra
of the EDR series, the tachogram resampling grid) are **not** cacheable: they
aggregate over — or are parameterised by — the whole window, so a different
window produces different intermediates even over shared beats.  The cache
therefore holds exactly the elementwise layer and nothing else, which is what
keeps the cached path bit-identical to the full recompute (pinned by the
hot-path property suite and the ``feature_cache=False`` parity flag).

Keying uses :attr:`repro.signals.windows.BeatWindow.first_beat_index` — the
absolute index of the window's first beat in the emitting windower's lifetime
stream.  The index is monotone across ring retirement and across
:meth:`~repro.signals.windows.StreamingWindower.reset` (sequence-gap
recovery), so a pre-gap beat can never alias a post-gap one; as a second
line of defence the cached RR values themselves are compared on the overlap
and any mismatch reseeds the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["BeatPartials", "BeatPartialCache"]

#: Rotation constant of the Lorenz-plot coordinates (the same literal
#: ``np.sqrt(2.0)`` the reference implementation divides by).
_SQRT2 = np.sqrt(2.0)

#: NN50 threshold in seconds (50 ms), as in the reference HRV path.
_NN50_THRESHOLD_S = 0.050


@dataclass(frozen=True)
class BeatPartials:
    """Elementwise feature partials of one window, sliced from the cache.

    Every array is aligned with the window's own RR vector: ``hr`` has one
    entry per RR interval; the pairwise arrays (``succ*``, ``nn50``,
    ``lor_*``) have one entry per *adjacent* RR pair, i.e. one fewer.
    """

    succ: np.ndarray
    succ_sq: np.ndarray
    nn50: np.ndarray
    hr: np.ndarray
    lor_diff: np.ndarray
    lor_sum: np.ndarray


def _pairwise(rr: np.ndarray) -> tuple:
    """All cached elementwise quantities of an RR block.

    The expressions are exactly the reference ones in
    :func:`repro.features.hrv.hrv_features` and
    :func:`repro.features.lorenz.poincare_sd`; being elementwise, computing
    them over any block that contains a pair yields the same bits for it.
    """
    succ = np.diff(rr)
    succ_sq = succ**2
    nn50 = np.abs(succ) > _NN50_THRESHOLD_S
    hr = 60.0 / rr
    x = rr[:-1]
    y = rr[1:]
    lor_diff = (y - x) / _SQRT2
    lor_sum = (y + x) / _SQRT2
    return succ, succ_sq, nn50, hr, lor_diff, lor_sum


class BeatPartialCache:
    """Per-patient sliding cache of elementwise beat partials.

    One instance serves one windower's emission stream.  Each request either
    *extends* the cache by the window's new tail (the overlap case: only the
    beats past the previous window's end are computed) or *reseeds* it from
    scratch (first window, backward jump, gap, or an RR mismatch on the
    overlap).  Entries behind the requested window are trimmed, so the cache
    never holds more than roughly one window of state.
    """

    def __init__(self) -> None:
        self._start = 0  # absolute RR index of self._rr[0]
        self._rr: np.ndarray = np.empty(0)
        self._succ: np.ndarray = np.empty(0)
        self._succ_sq: np.ndarray = np.empty(0)
        self._nn50: np.ndarray = np.empty(0, dtype=bool)
        self._hr: np.ndarray = np.empty(0)
        self._lor_diff: np.ndarray = np.empty(0)
        self._lor_sum: np.ndarray = np.empty(0)
        self.hits = 0
        self.reseeds = 0

    def _reseed(self, first: int, rr: np.ndarray) -> None:
        self._start = first
        self._rr = rr.copy()
        (
            self._succ,
            self._succ_sq,
            self._nn50,
            self._hr,
            self._lor_diff,
            self._lor_sum,
        ) = _pairwise(self._rr)
        self.reseeds += 1

    def partials_for(self, first_beat_index: int, rr: np.ndarray) -> Optional[BeatPartials]:
        """Partials of a window whose RR vector starts at an absolute index.

        Returns ``None`` when the window cannot be cached (unknown
        provenance or too few intervals); callers then run the full
        recompute.
        """
        rr = np.asarray(rr, dtype=float)
        m = int(rr.shape[0])
        if first_beat_index < 0 or m < 2:
            return None
        first = int(first_beat_index)
        end = self._start + self._rr.shape[0]
        if self._rr.shape[0] == 0 or first < self._start or first > end:
            # Empty cache, backward jump, or a gap with no shared beats.
            self._reseed(first, rr)
        else:
            j0 = first - self._start
            overlap = min(self._rr.shape[0] - j0, m)
            if not np.array_equal(self._rr[j0 : j0 + overlap], rr[:overlap]):
                # The stream disagrees with the cache (e.g. a revived monitor
                # with a fresh cache counter): trust the window, start over.
                self._reseed(first, rr)
            elif overlap < m:
                # Extend by the new tail.  Pairwise entries spanning the seam
                # need the last cached RR, so recompute from one before it —
                # elementwise, hence bit-identical to a full-window pass.
                grown = np.concatenate((self._rr[j0:], rr[overlap:]))
                seam = max(overlap - 1, 0)
                succ, succ_sq, nn50, hr, lor_diff, lor_sum = _pairwise(grown[seam:])
                self._start = first
                self._rr = grown
                self._succ = np.concatenate((self._succ[j0 : j0 + seam], succ))
                self._succ_sq = np.concatenate((self._succ_sq[j0 : j0 + seam], succ_sq))
                self._nn50 = np.concatenate((self._nn50[j0 : j0 + seam], nn50))
                self._hr = np.concatenate((self._hr[j0 : j0 + seam], hr))
                self._lor_diff = np.concatenate((self._lor_diff[j0 : j0 + seam], lor_diff))
                self._lor_sum = np.concatenate((self._lor_sum[j0 : j0 + seam], lor_sum))
                self.hits += 1
            else:
                # Fully contained in the cache: trim the prefix lazily below.
                if j0 > 0:
                    self._start = first
                    self._rr = self._rr[j0:].copy()
                    self._succ = self._succ[j0:].copy()
                    self._succ_sq = self._succ_sq[j0:].copy()
                    self._nn50 = self._nn50[j0:].copy()
                    self._hr = self._hr[j0:].copy()
                    self._lor_diff = self._lor_diff[j0:].copy()
                    self._lor_sum = self._lor_sum[j0:].copy()
                self.hits += 1
        return BeatPartials(
            succ=self._succ[: m - 1],
            succ_sq=self._succ_sq[: m - 1],
            nn50=self._nn50[: m - 1],
            hr=self._hr[:m],
            lor_diff=self._lor_diff[: m - 1],
            lor_sum=self._lor_sum[: m - 1],
        )
