"""Known-bad corpus for ``wire-version``: a control frame added silently.

``HEADER`` / ``WIRE_MAGIC`` / ``DTYPE_CODES`` all match the version-2
fingerprint pinned in ``repro.analysis.rules.wire_version.WIRE_REGISTRY`` —
but ``FRAME_KINDS`` grew a kind 4 without a version bump.  A new control
frame is a layout change: an old build would reject (or worse, misread)
frames a new build emits *within the same version byte*.
"""

import struct


class EcgChunk:
    pass


class HandoffFrame:
    pass


class StateFrame:
    pass


class AckFrame:
    pass


class PingFrame:
    pass


WIRE_VERSION = 2
WIRE_MAGIC = b"ECGC"
HEADER = struct.Struct("<4sBBBBIIIdI")
DTYPE_CODES = {0: "f8", 1: "f4", 2: "i2", 3: "i4"}
FRAME_KINDS = {  # expect[wire-version]
    0: EcgChunk,
    1: HandoffFrame,
    2: StateFrame,
    3: AckFrame,
    4: PingFrame,
}
