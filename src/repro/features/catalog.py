"""Catalogue of the 53 features: names, groups and index ranges.

The numbering follows the paper: features 1–8 come from the heart-rate
analysis, 9–15 from Lorenz plots, 16–24 from the auto-regressive model of the
ECG-derived respiration (EDR) series and 25–53 from its power spectral
density.  All public APIs in this repository use zero-based column indices;
the catalogue records the mapping to the paper's one-based feature numbers.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

__all__ = [
    "FeatureGroup",
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "N_FEATURES",
    "group_indices",
    "feature_group_of",
    "paper_feature_number",
]


class FeatureGroup(str, Enum):
    """The four feature families of the paper."""

    HRV = "hrv"
    LORENZ = "lorenz"
    AR = "ar"
    PSD = "psd"


#: (group, first zero-based column, last zero-based column inclusive)
FEATURE_GROUPS: Dict[FeatureGroup, Tuple[int, int]] = {
    FeatureGroup.HRV: (0, 7),
    FeatureGroup.LORENZ: (8, 14),
    FeatureGroup.AR: (15, 23),
    FeatureGroup.PSD: (24, 52),
}

_HRV_NAMES = [
    "hrv_mean_rr",
    "hrv_sdnn",
    "hrv_rmssd",
    "hrv_pnn50",
    "hrv_mean_hr",
    "hrv_max_hr",
    "hrv_cv_rr",
    "hrv_lf_hf_ratio",
]

_LORENZ_NAMES = [
    "lorenz_sd1",
    "lorenz_sd2",
    "lorenz_sd1_sd2_ratio",
    "lorenz_ellipse_area",
    "lorenz_csi",
    "lorenz_cvi",
    "lorenz_modified_csi",
]

_AR_NAMES = ["edr_ar_coeff_%d" % k for k in range(1, 10)]

_PSD_NAMES = ["edr_psd_band_%02d" % k for k in range(1, 30)]

#: Column-ordered feature names (zero-based index -> name).
FEATURE_NAMES: List[str] = _HRV_NAMES + _LORENZ_NAMES + _AR_NAMES + _PSD_NAMES

#: Total number of features in the baseline set.
N_FEATURES: int = len(FEATURE_NAMES)

assert N_FEATURES == 53, "the baseline feature set must contain 53 features"


def group_indices(group: FeatureGroup) -> List[int]:
    """Zero-based column indices belonging to a feature group."""
    first, last = FEATURE_GROUPS[group]
    return list(range(first, last + 1))


def feature_group_of(index: int) -> FeatureGroup:
    """Group of a zero-based feature column index."""
    for group, (first, last) in FEATURE_GROUPS.items():
        if first <= index <= last:
            return group
    raise IndexError("feature index %d outside 0..%d" % (index, N_FEATURES - 1))


def paper_feature_number(index: int) -> int:
    """The paper's one-based feature number for a zero-based column index."""
    if not 0 <= index < N_FEATURES:
        raise IndexError("feature index %d outside 0..%d" % (index, N_FEATURES - 1))
    return index + 1
