"""Bit-accurate fixed-point model of the quadratic-kernel inference pipeline.

:class:`QuantizedSVM` converts a trained float :class:`~repro.svm.model.SVMModel`
with a quadratic kernel into the integer-only datapath of the accelerator in
Figure 2 of the paper:

1. every feature ``j`` is a signed ``Dbits``-wide integer with a power-of-two
   LSB weight derived from its range exponent ``R_j`` (per-feature scaling) or
   from a single shared exponent (homogeneous scaling);
2. MAC1 accumulates the per-feature products, each re-aligned with a left
   shift of ``2·(R_j − R_min)`` so that all partial products share the scale
   of the least-significant feature; the accumulator then drops
   ``truncate_after_dot`` LSBs;
3. the kernel offset (+1) is added as an integer in the accumulator scale and
   the result is squared, after which ``truncate_after_square`` LSBs are
   dropped;
4. MAC2 multiplies by the quantised ``α_i y_i`` coefficients (``Abits`` wide),
   accumulates over support vectors and adds the quantised bias;
5. the predicted class is the sign of the final accumulator.

Every step uses integer arithmetic only.  A vectorised ``int64`` fast path is
used whenever the worst-case bit growth provably fits; otherwise the pipeline
falls back to exact Python integers, so arbitrarily wide reference datapaths
(e.g. the 64-bit baseline of Figure 7) remain bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.analysis.markers import int_only
from repro.hardware.accelerator import AcceleratorConfig
from repro.quant.fixed_point import quantize_columns, quantize_to_int, scale_for_exponent
from repro.quant.ranges import (
    coefficient_range_exponent,
    feature_range_exponents,
    global_range_exponent,
)
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import SVMModel

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quant.backend import QuantizedSVMBackend

__all__ = ["QuantizationConfig", "QuantizedSVM"]


@dataclass
class QuantizationConfig:
    """Quantisation parameters of one fixed-point design point."""

    #: Bits used to represent each feature value (Dbits in the paper).
    feature_bits: int = 9
    #: Bits used to represent each α_i y_i coefficient (Abits in the paper).
    coeff_bits: int = 15
    #: LSBs discarded after the dot product.
    truncate_after_dot: int = 10
    #: LSBs discarded after the squarer.
    truncate_after_square: int = 10
    #: Per-feature power-of-two ranges (True) or one global range (False).
    per_feature_scaling: bool = True
    #: Half-width of the feature ranges in standard deviations of the SV set
    #: (see :data:`repro.quant.ranges.DEFAULT_RANGE_SIGMA`).
    range_margin_sigma: float = 3.0
    #: Width label of a conventional fixed-width datapath (the 64/32/16-bit
    #: pipelines of Figure 7).  It only affects the *hardware cost model*
    #: (the datapath is sized to this width); functionally the accumulators
    #: are given full headroom, as any sane fixed-point design allocates
    #: integer bits so that intermediate results never overflow.
    datapath_cap_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.feature_bits < 2 or self.coeff_bits < 2:
            raise ValueError("feature_bits and coeff_bits must be at least 2")
        if self.truncate_after_dot < 0 or self.truncate_after_square < 0:
            raise ValueError("truncation amounts cannot be negative")


class QuantizedSVM:
    """Integer-only implementation of the quadratic-kernel SVM pipeline."""

    def __init__(self, model: SVMModel, config: Optional[QuantizationConfig] = None) -> None:
        if config is None:
            config = QuantizationConfig()
        kernel = model.kernel
        if not isinstance(kernel, PolynomialKernel) or kernel.degree != 2:
            raise ValueError("the fixed-point pipeline implements the quadratic kernel only")
        if abs(kernel.gamma - 1.0) > 1e-12 or abs(kernel.coef0 - 1.0) > 1e-12:
            raise ValueError("the quadratic kernel must be (x·y + 1)^2 (gamma=1, coef0=1)")

        self.model = model
        self.config = config

        sv = model.scaled_support_vectors()
        self.n_support_vectors, self.n_features = sv.shape

        # ----------------------------------------------------- feature ranges
        if config.per_feature_scaling:
            self.range_exponents = feature_range_exponents(sv, config.range_margin_sigma)
        else:
            self.range_exponents = np.full(
                self.n_features,
                global_range_exponent(sv, config.range_margin_sigma),
                dtype=int,
            )
        self.feature_scales = np.array(
            [scale_for_exponent(r, config.feature_bits) for r in self.range_exponents]
        )

        # Shift that re-aligns each feature product to the scale of the
        # smallest exponent (implemented as a barrel shifter in hardware).
        r_min = int(np.min(self.range_exponents))
        self.product_shifts = 2 * (self.range_exponents - r_min)
        #: Real value of one LSB of the MAC1 accumulator before truncation.
        self.dot_scale = float(
            2.0 ** (2 * (r_min - config.feature_bits + 1))
        )
        #: Real value of one LSB of the dot product after truncation.
        self.dot_scale_truncated = self.dot_scale * (2.0**config.truncate_after_dot)
        #: Real value of one LSB of the kernel value after squaring + truncation.
        self.kernel_scale = (self.dot_scale_truncated**2) * (
            2.0**config.truncate_after_square
        )

        # --------------------------------------------------------- constants
        self.sv_int = self._quantize_features(sv)
        self.kernel_offset_int = int(round(1.0 / self.dot_scale_truncated))

        # ------------------------------------------------------ coefficients
        self.coeff_exponent = coefficient_range_exponent(model.dual_coef)
        self.coeff_scale = scale_for_exponent(self.coeff_exponent, config.coeff_bits)
        self.coeff_int = quantize_to_int(model.dual_coef, self.coeff_scale, config.coeff_bits)

        #: Real value of one LSB of the MAC2 accumulator.
        self.output_scale = self.coeff_scale * self.kernel_scale
        self.bias_int = int(round(model.bias / self.output_scale))

        self._use_fast_path = self._fits_int64()

    # ------------------------------------------------------------------ API
    def _quantize_features(self, values: np.ndarray) -> np.ndarray:
        """Quantise a feature matrix with the per-column feature scales."""
        return quantize_columns(values, self.feature_scales, self.config.feature_bits)

    def quantize_input(self, X: np.ndarray) -> np.ndarray:
        """Quantise raw test vectors exactly as the accelerator front-end does.

        The model's scaler (fitted at training time) is applied first — it is
        part of the feature-extraction stage, not of the inference
        accelerator — then each feature is rounded to its fixed-point grid and
        saturated to its ``[-2^{R_j}, 2^{R_j})`` range.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValueError("expected %d features, got %d" % (self.n_features, X.shape[1]))
        if self.model.scaler is not None:
            X = self.model.scaler.transform(X)
        return self._quantize_features(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Approximate real-valued decision score implied by the integer pipeline."""
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            return acc.astype(float) * self.output_scale
        return np.asarray([float(v) for v in acc], dtype=float) * self.output_scale

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels in ``{-1, +1}`` from the integer pipeline (sign bit).

        Accepts a whole batch of windows at once; on the int64 fast path the
        entire pipeline (quantisation, MAC1, squarer, MAC2 and the final sign)
        stays vectorised across the batch, which is what the
        :class:`~repro.serving.fleet.MonitorFleet` batched drain relies on.
        """
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            return np.where(acc >= 0, 1, -1).astype(int)
        return np.asarray([1 if v >= 0 else -1 for v in acc], dtype=int)

    def scores_and_labels(self, X: np.ndarray) -> tuple:
        """Decision scores and class labels from a single pipeline pass.

        Labels are the sign of the integer accumulator (exactly as
        :meth:`predict`); the batched serving drain uses this to avoid
        running the pipeline twice per window batch.
        """
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            scores = acc.astype(float) * self.output_scale
            labels = np.where(acc >= 0, 1, -1).astype(int)
        else:
            scores = np.asarray([float(v) for v in acc], dtype=float) * self.output_scale
            labels = np.asarray([1 if v >= 0 else -1 for v in acc], dtype=int)
        return scores, labels

    def as_backend(
        self,
        feature_indices: "Optional[Sequence[int]]" = None,
        name: Optional[str] = None,
    ) -> "QuantizedSVMBackend":
        """Wrap this pipeline as a serving-layer inference backend.

        The adapter (:class:`~repro.quant.backend.QuantizedSVMBackend`)
        selects the design point's ``feature_indices`` columns from the
        fleet's full-width window vectors before quantisation, so tailored
        per-patient pipelines can share one
        :class:`~repro.serving.registry.ModelRegistry`.
        """
        from repro.quant.backend import QuantizedSVMBackend

        return QuantizedSVMBackend(self, feature_indices=feature_indices, name=name)

    def accelerator_config(self) -> AcceleratorConfig:
        """Hardware design point matching this functional model."""
        return AcceleratorConfig(
            n_features=self.n_features,
            n_support_vectors=self.n_support_vectors,
            feature_bits=self.config.feature_bits,
            coeff_bits=self.config.coeff_bits,
            truncate_after_dot=self.config.truncate_after_dot,
            truncate_after_square=self.config.truncate_after_square,
            per_feature_scaling=self.config.per_feature_scaling,
            datapath_cap_bits=self.config.datapath_cap_bits,
        )

    # ------------------------------------------------------------- pipeline
    @int_only
    def _fits_int64(self) -> bool:
        """Worst-case overflow check for the int64 fast path.

        Bounds every intermediate of the pipeline with exact integer
        arithmetic on the *stored* constants (support-vector words,
        coefficient words, offset and bias) against the most adverse
        quantised input (every feature saturated, signs aligned), instead of
        the purely symbolic bit-growth estimate used previously — which was
        so conservative that it pushed the paper's own 9/15-bit design point
        onto the slow exact-arithmetic path.
        """
        q_max = 1 << (self.config.feature_bits - 1)
        shifts = [1 << int(s) for s in self.product_shifts]
        acc1_max = 0
        for row in np.asarray(self.sv_int):
            total = sum(q_max * abs(int(v)) * s for v, s in zip(row, shifts))
            acc1_max = max(acc1_max, total)
        # ``>>`` on a negative value floors towards -inf, so the magnitude
        # after truncation can exceed the shifted magnitude bound by one.
        dot_max = (acc1_max >> self.config.truncate_after_dot) + 1
        sum_max = dot_max + abs(self.kernel_offset_int)
        squared_max = sum_max * sum_max
        kernel_max = (squared_max >> self.config.truncate_after_square) + 1
        acc2_max = (
            sum(abs(int(c)) for c in np.asarray(self.coeff_int)) * kernel_max
            + abs(self.bias_int)
        )
        limit = 1 << 62
        return max(acc1_max, squared_max, acc2_max) < limit

    def _accumulate(self, q_test: np.ndarray) -> "np.ndarray | list":
        """Run the integer pipeline for every (already quantised) test row."""
        if self._use_fast_path:
            return self._accumulate_int64(q_test)
        return self._accumulate_exact(q_test)

    @int_only
    def _accumulate_int64(self, q_test: np.ndarray) -> np.ndarray:
        shifts = self.product_shifts.astype(np.int64)
        sv_shifted = (self.sv_int.astype(np.int64)) << shifts[None, :]
        q_test = q_test.astype(np.int64)
        acc1 = q_test @ sv_shifted.T  # (n_test, n_sv)
        dot = acc1 >> self.config.truncate_after_dot
        summed = dot + np.int64(self.kernel_offset_int)
        squared = summed * summed
        kernel_int = squared >> self.config.truncate_after_square
        acc2 = kernel_int @ self.coeff_int.astype(np.int64)
        return acc2 + np.int64(self.bias_int)

    @int_only
    def _accumulate_exact(self, q_test: np.ndarray) -> list:
        """Exact arbitrary-precision path (used by very wide datapaths)."""
        trunc1 = self.config.truncate_after_dot
        trunc2 = self.config.truncate_after_square
        shifts = [int(s) for s in self.product_shifts]
        sv_rows = [[int(v) for v in row] for row in np.asarray(self.sv_int)]
        coeffs = [int(c) for c in np.asarray(self.coeff_int)]
        results = []
        for row in np.asarray(q_test):
            test_ints = [int(v) for v in row]
            acc2 = 0
            for sv_row, coeff in zip(sv_rows, coeffs):
                acc1 = 0
                for t, s, shift in zip(test_ints, sv_row, shifts):
                    acc1 += (t * s) << shift
                dot = acc1 >> trunc1
                summed = dot + self.kernel_offset_int
                kernel_int = (summed * summed) >> trunc2
                acc2 = acc2 + coeff * kernel_int
            results.append(acc2 + self.bias_int)
        return results
