"""Classification figures of merit (Equation 2 of the paper).

Seizure windows are rare, so plain accuracy is meaningless; the paper uses
Sensitivity (recall on seizures), Specificity (recall on background) and their
Geometric Mean, which is high only when *both* classes are detected well,
following Fleming & Wallace's argument for geometric means of normalised
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["confusion_counts", "geometric_mean", "ClassificationMetrics"]


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[int, int, int, int]:
    """(TP, TN, FP, FN) for labels in ``{-1, +1}`` (+1 = seizure)."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    valid = {-1, 1}
    if not set(np.unique(y_true)).issubset(valid) or not set(np.unique(y_pred)).issubset(valid):
        raise ValueError("labels must be -1 or +1")
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == -1) & (y_pred == -1)))
    fp = int(np.sum((y_true == -1) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == -1)))
    return tp, tn, fp, fn


def geometric_mean(sensitivity: float, specificity: float) -> float:
    """GM = sqrt(Se × Sp)."""
    if sensitivity < 0 or specificity < 0:
        raise ValueError("sensitivity and specificity must be non-negative")
    return float(np.sqrt(sensitivity * specificity))


@dataclass(frozen=True)
class ClassificationMetrics:
    """Sensitivity / specificity / GM of one evaluation."""

    true_positives: int
    true_negatives: int
    false_positives: int
    false_negatives: int

    @classmethod
    def from_predictions(cls, y_true: np.ndarray, y_pred: np.ndarray) -> "ClassificationMetrics":
        tp, tn, fp, fn = confusion_counts(y_true, y_pred)
        return cls(true_positives=tp, true_negatives=tn, false_positives=fp, false_negatives=fn)

    @property
    def n_positive(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def n_negative(self) -> int:
        return self.true_negatives + self.false_positives

    @property
    def sensitivity(self) -> Optional[float]:
        """TP / (TP + FN); ``None`` when the evaluation contains no positives."""
        if self.n_positive == 0:
            return None
        return self.true_positives / self.n_positive

    @property
    def specificity(self) -> Optional[float]:
        """TN / (TN + FP); ``None`` when the evaluation contains no negatives."""
        if self.n_negative == 0:
            return None
        return self.true_negatives / self.n_negative

    @property
    def gm(self) -> Optional[float]:
        """Geometric mean of sensitivity and specificity, when both exist."""
        se, sp = self.sensitivity, self.specificity
        if se is None or sp is None:
            return None
        return geometric_mean(se, sp)

    def merged_with(self, other: "ClassificationMetrics") -> "ClassificationMetrics":
        """Pool the confusion counts of two evaluations."""
        return ClassificationMetrics(
            true_positives=self.true_positives + other.true_positives,
            true_negatives=self.true_negatives + other.true_negatives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
        )
