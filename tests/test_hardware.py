"""Unit tests for the hardware area / energy models."""

import pytest

from repro.hardware.accelerator import AcceleratorConfig, evaluate_accelerator
from repro.hardware.arithmetic import (
    adder_area_um2,
    adder_energy_pj,
    multiplier_area_um2,
    multiplier_energy_pj,
    register_area_um2,
    squarer_area_um2,
)
from repro.hardware.memory import sram_model
from repro.hardware.technology import TECH_40NM, TechnologyParams


class TestArithmeticModels:
    def test_multiplier_scales_quadratically(self):
        assert multiplier_area_um2(16, 16) == pytest.approx(4 * multiplier_area_um2(8, 8))
        assert multiplier_energy_pj(32, 32) == pytest.approx(4 * multiplier_energy_pj(16, 16))

    def test_adder_scales_linearly(self):
        assert adder_area_um2(32) == pytest.approx(2 * adder_area_um2(16))
        assert adder_energy_pj(64) == pytest.approx(2 * adder_energy_pj(32))

    def test_squarer_half_of_multiplier(self):
        assert squarer_area_um2(16) == pytest.approx(0.5 * multiplier_area_um2(16, 16))

    def test_register_area_positive(self):
        assert register_area_um2(8) > 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            multiplier_area_um2(0, 8)
        with pytest.raises(ValueError):
            adder_energy_pj(-4)


class TestSramModel:
    def test_capacity_and_area_monotonic(self):
        small = sram_model(1000, 9)
        large = sram_model(10000, 9)
        assert large.capacity_bits == 10 * small.capacity_bits
        assert large.area_um2 > small.area_um2

    def test_read_energy_grows_with_word_and_capacity(self):
        narrow = sram_model(4096, 9)
        wide = sram_model(4096, 64)
        assert wide.read_energy_pj > narrow.read_energy_pj
        small = sram_model(512, 16)
        big = sram_model(65536, 16)
        assert big.read_energy_pj > small.read_energy_pj

    def test_leakage_proportional_to_area(self):
        macro = sram_model(8192, 16)
        expected = TECH_40NM.sram_leakage_uw_per_mm2 * macro.area_mm2
        assert macro.leakage_uw == pytest.approx(expected)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sram_model(0, 8)
        with pytest.raises(ValueError):
            sram_model(8, 0)


class TestAcceleratorModel:
    BASELINE = AcceleratorConfig(
        n_features=53,
        n_support_vectors=120,
        feature_bits=64,
        coeff_bits=64,
        per_feature_scaling=False,
        datapath_cap_bits=64,
    )
    OPTIMISED = AcceleratorConfig(
        n_features=30,
        n_support_vectors=68,
        feature_bits=9,
        coeff_bits=15,
        per_feature_scaling=True,
    )

    def test_baseline_lands_near_paper_axes(self):
        report = evaluate_accelerator(self.BASELINE)
        assert 1000.0 < report.energy_nj < 3000.0
        assert 0.2 < report.area_mm2 < 0.6

    def test_combined_gains_match_paper_order_of_magnitude(self):
        baseline = evaluate_accelerator(self.BASELINE)
        optimised = evaluate_accelerator(self.OPTIMISED)
        energy_gain = baseline.energy_nj / optimised.energy_nj
        area_gain = baseline.area_mm2 / optimised.area_mm2
        assert 8.0 < energy_gain < 25.0
        assert 8.0 < area_gain < 25.0

    def test_energy_decreases_with_fewer_features(self):
        few = AcceleratorConfig(
            n_features=23, n_support_vectors=120, feature_bits=64, coeff_bits=64
        )
        many = AcceleratorConfig(
            n_features=53, n_support_vectors=120, feature_bits=64, coeff_bits=64
        )
        assert evaluate_accelerator(few).energy_nj < evaluate_accelerator(many).energy_nj

    def test_energy_decreases_with_fewer_support_vectors(self):
        few = AcceleratorConfig(
            n_features=53, n_support_vectors=50, feature_bits=64, coeff_bits=64
        )
        many = AcceleratorConfig(
            n_features=53, n_support_vectors=120, feature_bits=64, coeff_bits=64
        )
        assert evaluate_accelerator(few).energy_nj < evaluate_accelerator(many).energy_nj

    def test_area_decreases_with_narrower_words(self):
        narrow = AcceleratorConfig(
            n_features=53, n_support_vectors=120, feature_bits=9, coeff_bits=15
        )
        wide = AcceleratorConfig(
            n_features=53, n_support_vectors=120, feature_bits=32, coeff_bits=32
        )
        assert evaluate_accelerator(narrow).area_mm2 < evaluate_accelerator(wide).area_mm2

    def test_datapath_widths_grow_without_cap(self):
        config = AcceleratorConfig(
            n_features=53, n_support_vectors=100, feature_bits=9, coeff_bits=15
        )
        assert config.dot_accumulator_bits == 2 * 9 + 6
        assert config.dot_output_bits == config.dot_accumulator_bits - 10
        assert config.square_output_bits == 2 * config.dot_output_bits - 10

    def test_datapath_cap_enforced(self):
        config = AcceleratorConfig(
            n_features=53,
            n_support_vectors=100,
            feature_bits=32,
            coeff_bits=32,
            datapath_cap_bits=32,
        )
        assert config.dot_accumulator_bits == 32
        assert config.square_output_bits == 32
        assert config.mac2_accumulator_bits == 32

    def test_cycles_per_classification(self):
        config = AcceleratorConfig(
            n_features=10, n_support_vectors=5, feature_bits=9, coeff_bits=15
        )
        assert config.cycles_per_classification == 10 * 5 + 2 * 5 + 4

    def test_breakdowns_sum_to_totals(self):
        report = evaluate_accelerator(self.OPTIMISED)
        area_um2 = sum(report.area_breakdown_um2.values())
        assert area_um2 * 1e-6 == pytest.approx(report.area_mm2)
        assert sum(report.energy_breakdown_nj.values()) == pytest.approx(report.energy_nj)

    def test_per_feature_scaling_adds_overhead(self):
        base = AcceleratorConfig(
            n_features=30,
            n_support_vectors=68,
            feature_bits=9,
            coeff_bits=15,
            per_feature_scaling=False,
        )
        scaled = AcceleratorConfig(
            n_features=30,
            n_support_vectors=68,
            feature_bits=9,
            coeff_bits=15,
            per_feature_scaling=True,
        )
        assert evaluate_accelerator(scaled).area_mm2 > evaluate_accelerator(base).area_mm2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(n_features=0, n_support_vectors=10)
        with pytest.raises(ValueError):
            AcceleratorConfig(n_features=10, n_support_vectors=10, feature_bits=0)

    def test_custom_technology_scales_results(self):
        cheap = TechnologyParams(full_adder_energy_pj=TECH_40NM.full_adder_energy_pj / 2)
        report_default = evaluate_accelerator(self.BASELINE)
        report_cheap = evaluate_accelerator(self.BASELINE, cheap)
        assert report_cheap.energy_nj < report_default.energy_nj
