"""Area and energy model of the full inference accelerator (Figure 2).

The accelerator classifies one test window as follows:

1. the test feature vector is loaded into a local buffer;
2. for every support vector, MAC1 accumulates the ``N_feat`` feature products
   (one per cycle), the kernel offset is added and the result squared (SQ);
3. MAC2 multiplies the kernel value by the stored ``α_i y_i`` coefficient and
   accumulates across support vectors;
4. the class is the sign of the final accumulator once the bias is added.

The model aggregates the cost of the arithmetic blocks, the SV/coefficient
memories, the test-vector buffer, the optional per-feature scale handling
(scale-factor table plus barrel shifter), a fixed control overhead, and
leakage over the classification interval.  Datapath widths are derived from
the quantisation configuration exactly as the fixed-point functional model of
:mod:`repro.quant.quantized_model` computes them, so functional simulation and
cost estimation always describe the same design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.markers import int_only
from repro.hardware.arithmetic import (
    adder_area_um2,
    adder_energy_pj,
    multiplier_area_um2,
    multiplier_energy_pj,
    register_area_um2,
    register_energy_pj,
    squarer_area_um2,
    squarer_energy_pj,
)
from repro.hardware.memory import sram_model
from repro.hardware.technology import TECH_40NM, TechnologyParams

__all__ = ["AcceleratorConfig", "AcceleratorReport", "evaluate_accelerator"]


@int_only
def _clog2(value: int) -> int:
    # ceil(log2(v)) == (v - 1).bit_length() for v >= 2, computed exactly in
    # integer arithmetic (log2 of a wide int would round through a float).
    return max(1, (max(value, 2) - 1).bit_length())


@dataclass
class AcceleratorConfig:
    """One hardware design point of the inference accelerator."""

    #: Number of features per vector (after feature selection).
    n_features: int
    #: Number of support vectors stored in the local memory.
    n_support_vectors: int
    #: Bit width of the feature words (Dbits in the paper).
    feature_bits: int = 64
    #: Bit width of the α_i y_i coefficients (Abits in the paper).
    coeff_bits: int = 64
    #: Number of least-significant bits discarded after the dot product.
    truncate_after_dot: int = 10
    #: Number of least-significant bits discarded after the squarer.
    truncate_after_square: int = 10
    #: True when each feature has its own power-of-two range (needs a
    #: scale-factor table and a barrel shifter in front of MAC1).
    per_feature_scaling: bool = True
    #: When set, every internal width is capped at this value, modelling a
    #: conventional fixed-width datapath (e.g. the 64/32/16-bit pipelines of
    #: Figure 7).  ``None`` lets the widths grow as needed.
    datapath_cap_bits: Optional[int] = None
    #: Bits used to store each per-feature range exponent R_j.
    range_exponent_bits: int = 6

    def __post_init__(self) -> None:
        if self.n_features <= 0 or self.n_support_vectors <= 0:
            raise ValueError("n_features and n_support_vectors must be positive")
        if self.feature_bits <= 0 or self.coeff_bits <= 0:
            raise ValueError("feature_bits and coeff_bits must be positive")
        if self.truncate_after_dot < 0 or self.truncate_after_square < 0:
            raise ValueError("truncation amounts cannot be negative")

    # ------------------------------------------------------------ datapath
    @int_only
    def _cap(self, width: int) -> int:
        if self.datapath_cap_bits is not None:
            return min(width, self.datapath_cap_bits)
        return width

    @property
    @int_only
    def dot_accumulator_bits(self) -> int:
        """Width of the MAC1 accumulator (before truncation)."""
        width = 2 * self.feature_bits + _clog2(self.n_features)
        return self._cap(max(width, 4))

    @property
    @int_only
    def dot_output_bits(self) -> int:
        """Width of the dot-product value fed to the squarer."""
        width = self.dot_accumulator_bits - self.truncate_after_dot
        return self._cap(max(width, 4))

    @property
    @int_only
    def square_output_bits(self) -> int:
        """Width of the kernel value fed to MAC2."""
        width = 2 * self.dot_output_bits - self.truncate_after_square
        return self._cap(max(width, 4))

    @property
    @int_only
    def mac2_accumulator_bits(self) -> int:
        """Width of the MAC2 accumulator."""
        width = self.square_output_bits + self.coeff_bits + _clog2(self.n_support_vectors)
        return self._cap(max(width, 4))

    @property
    def cycles_per_classification(self) -> int:
        """Cycle count of one classification (one MAC1 product per cycle)."""
        mac1_cycles = self.n_support_vectors * self.n_features
        kernel_cycles = 2 * self.n_support_vectors  # square + MAC2 per SV
        return mac1_cycles + kernel_cycles + 4


@dataclass
class AcceleratorReport:
    """Cost report of one accelerator design point."""

    config: AcceleratorConfig
    area_mm2: float
    energy_nj: float
    latency_ms: float
    area_breakdown_um2: Dict[str, float] = field(default_factory=dict)
    energy_breakdown_nj: Dict[str, float] = field(default_factory=dict)

    @property
    def area_um2(self) -> float:
        return self.area_mm2 * 1e6

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the experiment tables."""
        return {
            "n_features": float(self.config.n_features),
            "n_support_vectors": float(self.config.n_support_vectors),
            "feature_bits": float(self.config.feature_bits),
            "coeff_bits": float(self.config.coeff_bits),
            "area_mm2": self.area_mm2,
            "energy_nj": self.energy_nj,
            "latency_ms": self.latency_ms,
        }


def evaluate_accelerator(
    config: AcceleratorConfig, tech: TechnologyParams = TECH_40NM
) -> AcceleratorReport:
    """Estimate area, energy-per-classification and latency of a design point."""
    n_sv = config.n_support_vectors
    n_feat = config.n_features

    # ------------------------------------------------------------------ area
    area: Dict[str, float] = {}
    sv_memory = sram_model(n_sv * n_feat, config.feature_bits, tech)
    coeff_memory = sram_model(n_sv, config.coeff_bits, tech)
    area["sv_memory"] = sv_memory.area_um2
    area["coeff_memory"] = coeff_memory.area_um2
    area["test_vector_buffer"] = register_area_um2(n_feat * config.feature_bits, tech)
    area["mac1"] = (
        multiplier_area_um2(config.feature_bits, config.feature_bits, tech)
        + adder_area_um2(config.dot_accumulator_bits, tech)
        + register_area_um2(config.dot_accumulator_bits, tech)
    )
    area["square"] = squarer_area_um2(config.dot_output_bits, tech) + register_area_um2(
        config.square_output_bits, tech
    )
    area["mac2"] = (
        multiplier_area_um2(config.coeff_bits, config.square_output_bits, tech)
        + adder_area_um2(config.mac2_accumulator_bits, tech)
        + register_area_um2(config.mac2_accumulator_bits, tech)
    )
    if config.per_feature_scaling:
        scale_table = sram_model(n_feat, config.range_exponent_bits, tech)
        # Barrel shifter ~ one mux level (FA-equivalent) per bit and stage.
        shifter_stages = _clog2(config.dot_accumulator_bits)
        area["scale_handling"] = scale_table.area_um2 + (
            tech.full_adder_area_um2 * config.dot_accumulator_bits * shifter_stages
        )
    area["control"] = tech.control_overhead_um2
    total_area_um2 = float(sum(area.values()))

    # ---------------------------------------------------------------- energy
    energy_pj: Dict[str, float] = {}
    mac1_ops = n_sv * n_feat
    energy_pj["mac1"] = mac1_ops * (
        multiplier_energy_pj(config.feature_bits, config.feature_bits, tech)
        + adder_energy_pj(config.dot_accumulator_bits, tech)
        + register_energy_pj(config.dot_accumulator_bits, tech)
    )
    energy_pj["square"] = n_sv * (
        squarer_energy_pj(config.dot_output_bits, tech)
        + register_energy_pj(config.square_output_bits, tech)
    )
    energy_pj["mac2"] = n_sv * (
        multiplier_energy_pj(config.coeff_bits, config.square_output_bits, tech)
        + adder_energy_pj(config.mac2_accumulator_bits, tech)
        + register_energy_pj(config.mac2_accumulator_bits, tech)
    )
    energy_pj["sv_memory"] = mac1_ops * sv_memory.read_energy_pj
    energy_pj["coeff_memory"] = n_sv * coeff_memory.read_energy_pj
    if config.per_feature_scaling:
        scale_table = sram_model(n_feat, config.range_exponent_bits, tech)
        shifter_stages = _clog2(config.dot_accumulator_bits)
        energy_pj["scale_handling"] = mac1_ops * (
            scale_table.read_energy_pj * 0.25  # scale exponents are tiny and cached per feature
            + tech.full_adder_energy_pj * config.dot_accumulator_bits * shifter_stages * 0.25
        )
    cycles = config.cycles_per_classification
    energy_pj["control"] = cycles * tech.cycle_overhead_energy_pj

    # Leakage over the classification interval.
    latency_s = cycles / (tech.clock_mhz * 1e6)
    logic_area_mm2 = (total_area_um2 - sv_memory.area_um2 - coeff_memory.area_um2) * 1e-6
    sram_area_mm2 = (sv_memory.area_um2 + coeff_memory.area_um2) * 1e-6
    leakage_uw = (
        tech.logic_leakage_uw_per_mm2 * logic_area_mm2
        + tech.sram_leakage_uw_per_mm2 * sram_area_mm2
    )
    energy_pj["leakage"] = leakage_uw * latency_s * 1e6  # µW · s → pJ

    total_energy_nj = float(sum(energy_pj.values())) * 1e-3

    return AcceleratorReport(
        config=config,
        area_mm2=total_area_um2 * 1e-6,
        energy_nj=total_energy_nj,
        latency_ms=latency_s * 1e3,
        area_breakdown_um2=area,
        energy_breakdown_nj={k: v * 1e-3 for k, v in energy_pj.items()},
    )
