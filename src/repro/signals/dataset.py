"""Synthetic cohort of epilepsy-monitoring recordings.

The paper's evaluation data consists of 7 patients with refractory epilepsy,
140 hours of ECG recordings and 34 focal seizures annotated in an epilepsy
monitoring unit, split into recording sessions; each cross-validation fold
holds out one session (24 folds in total).

:func:`generate_cohort` reproduces that structure synthetically:

* a configurable number of patients, each with a patient-specific baseline
  heart rate and autonomic profile,
* several recording sessions per patient (24 sessions by default, matching
  the paper's 24 folds),
* a configurable total number of seizures distributed over the sessions
  (34 by default), and
* per-session RR series, respiration and (optionally) a rendered ECG trace.

Session durations default to values far below the clinical 140 hours so that
the full experiment suite runs on a laptop; the structure of the learning
problem (rare seizure windows, session-wise folds, 53 correlated features) is
what matters for reproducing the paper's trade-off curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.signals.ecg_model import (
    ECGSignal,
    ECGWaveformParams,
    modulated_r_amplitudes,
    synthesize_ecg,
)
from repro.signals.respiration import RespirationParams, RespirationSignal, generate_respiration
from repro.signals.rr_model import RRModelParams, generate_rr_series
from repro.signals.seizures import Seizure, SeizureScheduleParams, schedule_seizures

__all__ = [
    "CohortParams",
    "Recording",
    "Patient",
    "SyntheticCohort",
    "generate_cohort",
]


@dataclass
class CohortParams:
    """Parameters of the synthetic cohort generator.

    The defaults mirror the *structure* of the clinical dataset used in the
    paper (7 patients, 24 sessions, 34 seizures) but with much shorter
    sessions so the full reproduction runs quickly.  Increase
    ``session_duration_s`` towards ``140 * 3600 / 24`` to approach the
    clinical data volume.
    """

    n_patients: int = 7
    n_sessions: int = 24
    session_duration_s: float = 3600.0
    total_seizures: int = 34
    seed: int = 2019
    #: Average number of non-ictal arousal episodes (movement, exertion) per
    #: hour of recording.  These benign tachycardia episodes are what keeps
    #: the detection problem from being solvable on the heart rate alone.
    arousals_per_hour: float = 3.0
    #: Average number of stress / vagal-withdrawal episodes per hour (reduced
    #: variability without the full ictal signature) — the complementary
    #: confounder to the arousals.
    stress_episodes_per_hour: float = 2.0
    #: Render the full ECG waveform for every session (slower, only needed by
    #: the end-to-end signal-path tests and examples).
    render_ecg: bool = False
    rr_params: RRModelParams = field(default_factory=RRModelParams)
    respiration_params: RespirationParams = field(default_factory=RespirationParams)
    seizure_params: SeizureScheduleParams = field(default_factory=SeizureScheduleParams)
    ecg_params: ECGWaveformParams = field(default_factory=ECGWaveformParams)


@dataclass
class Recording:
    """One recording session of one patient."""

    patient_id: int
    session_id: int
    duration_s: float
    beat_times_s: np.ndarray
    rr_s: np.ndarray
    r_amplitudes_mv: np.ndarray
    seizures: List[Seizure]
    respiration: RespirationSignal
    ecg: Optional[ECGSignal] = None
    #: Non-ictal arousal episodes (not part of the expert annotation; kept for
    #: introspection and for the data-exploration example).
    arousals: List[Seizure] = field(default_factory=list)

    @property
    def n_beats(self) -> int:
        return int(self.beat_times_s.shape[0])

    @property
    def n_seizures(self) -> int:
        return len(self.seizures)

    def mean_hr_bpm(self) -> float:
        """Session-average heart rate in beats per minute."""
        if self.rr_s.size == 0:
            return float("nan")
        return float(60.0 / np.mean(self.rr_s))


@dataclass
class Patient:
    """A patient and their recording sessions.

    ``hr_response`` and ``rsa_response`` describe the patient's autonomic
    seizure phenotype: rate-dominant patients (high ``hr_response``) express
    seizures mainly through tachycardia, variability-dominant patients (high
    ``rsa_response``) mainly through the loss of beat-to-beat variability.
    """

    patient_id: int
    base_hr_bpm: float
    hr_response: float = 1.0
    rsa_response: float = 1.0
    recordings: List[Recording] = field(default_factory=list)

    @property
    def n_seizures(self) -> int:
        return sum(recording.n_seizures for recording in self.recordings)

    @property
    def total_duration_s(self) -> float:
        return sum(recording.duration_s for recording in self.recordings)


@dataclass
class SyntheticCohort:
    """The full synthetic dataset."""

    params: CohortParams
    patients: List[Patient]

    @property
    def recordings(self) -> List[Recording]:
        """All recordings, ordered by (patient, session)."""
        out: List[Recording] = []
        for patient in self.patients:
            out.extend(patient.recordings)
        return out

    @property
    def n_recordings(self) -> int:
        return sum(len(patient.recordings) for patient in self.patients)

    @property
    def n_seizures(self) -> int:
        return sum(patient.n_seizures for patient in self.patients)

    @property
    def total_duration_hours(self) -> float:
        return sum(patient.total_duration_s for patient in self.patients) / 3600.0

    def __iter__(self) -> Iterator[Recording]:
        return iter(self.recordings)

    def summary(self) -> Dict[str, float]:
        """Dataset summary comparable to the paper's cohort description."""
        return {
            "n_patients": len(self.patients),
            "n_recordings": self.n_recordings,
            "n_seizures": self.n_seizures,
            "total_duration_hours": self.total_duration_hours,
        }


def _distribute_seizures(
    total_seizures: int, n_sessions: int, rng: np.random.Generator
) -> np.ndarray:
    """Distribute seizures over sessions, leaving some sessions seizure-free.

    Clinical monitoring data typically contains a mix of sessions with zero,
    one or a few seizures.  We sample a multinomial split biased so that about
    a third of the sessions stay seizure-free, then cap per-session counts to
    keep the schedule feasible.
    """
    if n_sessions <= 0:
        raise ValueError("n_sessions must be positive")
    weights = rng.uniform(0.2, 1.0, size=n_sessions)
    # Force roughly one third of sessions to have (almost) no seizure mass.
    quiet = rng.choice(n_sessions, size=max(1, n_sessions // 3), replace=False)
    weights[quiet] *= 0.05
    weights /= weights.sum()
    counts = rng.multinomial(total_seizures, weights)
    # Cap the per-session count at 4 and redistribute the excess greedily.
    excess = 0
    for i in range(n_sessions):
        if counts[i] > 4:
            excess += counts[i] - 4
            counts[i] = 4
    i = 0
    while excess > 0:
        if counts[i % n_sessions] < 4:
            counts[i % n_sessions] += 1
            excess -= 1
        i += 1
    return counts


def generate_cohort(params: CohortParams | None = None) -> SyntheticCohort:
    """Generate the full synthetic cohort.

    The generation is deterministic given ``params.seed``, which makes every
    table and figure of the reproduction exactly re-runnable.

    Returns
    -------
    :class:`SyntheticCohort`
    """
    if params is None:
        params = CohortParams()
    rng = np.random.default_rng(params.seed)

    # Patient-specific baselines and autonomic seizure phenotypes.  The rate
    # and variability responses are anti-correlated across the cohort so that
    # both rate-dominant and variability-dominant patients are present.
    base_hrs = params.rr_params.base_hr_bpm + (
        params.rr_params.hr_between_patient_sd * rng.standard_normal(params.n_patients)
    )
    base_hrs = np.clip(base_hrs, 55.0, 95.0)
    phenotype = rng.uniform(0.0, 1.0, size=params.n_patients)
    patient_noise = rng.standard_normal(params.n_patients)
    hr_responses = np.clip(0.35 + 0.65 * phenotype + 0.1 * patient_noise, 0.2, 1.0)
    patient_noise = rng.standard_normal(params.n_patients)
    rsa_responses = np.clip(0.35 + 0.65 * (1.0 - phenotype) + 0.1 * patient_noise, 0.2, 1.0)
    patients = [
        Patient(
            patient_id=pid,
            base_hr_bpm=float(base_hrs[pid]),
            hr_response=float(hr_responses[pid]),
            rsa_response=float(rsa_responses[pid]),
        )
        for pid in range(params.n_patients)
    ]

    # Assign sessions to patients round-robin, and seizures to sessions.
    session_patient = [s % params.n_patients for s in range(params.n_sessions)]
    seizure_counts = _distribute_seizures(params.total_seizures, params.n_sessions, rng)

    arousal_params = SeizureScheduleParams(
        mean_duration_s=120.0,
        duration_jitter_s=60.0,
        min_duration_s=45.0,
        max_duration_s=300.0,
        preictal_s=30.0,
        postictal_s=60.0,
        min_gap_s=300.0,
        margin_s=200.0,
        min_intensity=0.4,
        max_intensity=1.0,
    )
    stress_params = SeizureScheduleParams(
        mean_duration_s=240.0,
        duration_jitter_s=90.0,
        min_duration_s=90.0,
        max_duration_s=480.0,
        preictal_s=45.0,
        postictal_s=90.0,
        min_gap_s=300.0,
        margin_s=200.0,
        min_intensity=0.5,
        max_intensity=1.0,
    )

    for session_id in range(params.n_sessions):
        patient = patients[session_patient[session_id]]
        seizures = schedule_seizures(
            params.session_duration_s,
            int(seizure_counts[session_id]),
            rng,
            params.seizure_params,
        )
        hours = params.session_duration_s / 3600.0
        n_arousals = int(rng.poisson(max(params.arousals_per_hour * hours, 0.0)))
        arousals = schedule_seizures(
            params.session_duration_s, n_arousals, rng, arousal_params
        )
        n_stress = int(rng.poisson(max(params.stress_episodes_per_hour * hours, 0.0)))
        stress_episodes = schedule_seizures(
            params.session_duration_s, n_stress, rng, stress_params
        )
        respiration = generate_respiration(
            params.session_duration_s,
            seizures,
            rng,
            params.respiration_params,
            arousals=arousals,
        )
        rr_series = generate_rr_series(
            params.session_duration_s,
            seizures,
            respiration,
            rng,
            params.rr_params,
            base_hr_bpm=patient.base_hr_bpm,
            arousals=arousals,
            stress_episodes=stress_episodes,
            hr_response=patient.hr_response,
            rsa_response=patient.rsa_response,
        )
        ecg: Optional[ECGSignal] = None
        if params.render_ecg:
            ecg = synthesize_ecg(
                rr_series.beat_times_s,
                params.session_duration_s,
                respiration,
                rng,
                params.ecg_params,
            )
            r_amplitudes = ecg.r_amplitudes_mv
        else:
            r_amplitudes = modulated_r_amplitudes(
                rr_series.beat_times_s,
                respiration,
                rng,
                base_amplitude_mv=params.ecg_params.morphology["R"][1],
                edr_modulation=params.ecg_params.edr_modulation,
                amplitude_jitter=params.ecg_params.amplitude_jitter,
            )

        recording = Recording(
            patient_id=patient.patient_id,
            session_id=session_id,
            duration_s=params.session_duration_s,
            beat_times_s=rr_series.beat_times_s,
            rr_s=rr_series.rr_s,
            r_amplitudes_mv=r_amplitudes,
            seizures=seizures,
            respiration=respiration,
            ecg=ecg,
            arousals=arousals,
        )
        patient.recordings.append(recording)

    return SyntheticCohort(params=params, patients=patients)
