"""Unit tests for seizure scheduling and the Seizure annotation object."""

import numpy as np
import pytest

from repro.signals.seizures import Seizure, SeizureScheduleParams, schedule_seizures


class TestSeizure:
    def test_offset_is_onset_plus_duration(self):
        seizure = Seizure(onset_s=100.0, duration_s=60.0)
        assert seizure.offset_s == 160.0

    def test_disturbance_window_covers_pre_and_post(self):
        seizure = Seizure(onset_s=300.0, duration_s=60.0, preictal_s=50.0, postictal_s=100.0)
        assert seizure.disturbance_start_s == 250.0
        assert seizure.disturbance_end_s == 460.0

    def test_disturbance_start_clamped_at_zero(self):
        seizure = Seizure(onset_s=20.0, duration_s=30.0, preictal_s=60.0)
        assert seizure.disturbance_start_s == 0.0

    def test_overlaps_true_inside(self):
        seizure = Seizure(onset_s=100.0, duration_s=50.0)
        assert seizure.overlaps(120.0, 130.0)

    def test_overlaps_false_before_and_after(self):
        seizure = Seizure(onset_s=100.0, duration_s=50.0)
        assert not seizure.overlaps(0.0, 99.0)
        assert not seizure.overlaps(151.0, 300.0)

    def test_overlaps_boundary_is_exclusive(self):
        seizure = Seizure(onset_s=100.0, duration_s=50.0)
        assert not seizure.overlaps(150.0, 200.0)

    def test_ictal_fraction_full_window_inside(self):
        seizure = Seizure(onset_s=100.0, duration_s=100.0)
        assert seizure.ictal_fraction(120.0, 170.0) == pytest.approx(1.0)

    def test_ictal_fraction_partial(self):
        seizure = Seizure(onset_s=100.0, duration_s=50.0)
        # Window 90..190 overlaps the seizure 100..150 for 50 of 100 seconds.
        assert seizure.ictal_fraction(90.0, 190.0) == pytest.approx(0.5)

    def test_ictal_fraction_empty_window(self):
        seizure = Seizure(onset_s=100.0, duration_s=50.0)
        assert seizure.ictal_fraction(200.0, 200.0) == 0.0

    def test_default_intensity_is_one(self):
        assert Seizure(onset_s=0.0, duration_s=10.0).intensity == 1.0


class TestScheduleSeizures:
    def test_zero_seizures_returns_empty(self):
        rng = np.random.default_rng(0)
        assert schedule_seizures(3600.0, 0, rng) == []

    def test_count_and_sorted_onsets(self):
        rng = np.random.default_rng(1)
        seizures = schedule_seizures(3600.0, 3, rng)
        assert len(seizures) == 3
        onsets = [s.onset_s for s in seizures]
        assert onsets == sorted(onsets)

    def test_margins_respected(self):
        rng = np.random.default_rng(2)
        params = SeizureScheduleParams(margin_s=500.0)
        seizures = schedule_seizures(3600.0, 2, rng, params)
        for seizure in seizures:
            assert 500.0 <= seizure.onset_s <= 3600.0 - 500.0

    def test_durations_within_bounds(self):
        rng = np.random.default_rng(3)
        params = SeizureScheduleParams(min_duration_s=30.0, max_duration_s=120.0)
        for seizure in schedule_seizures(7200.0, 4, rng, params):
            assert 30.0 <= seizure.duration_s <= 120.0

    def test_intensities_within_bounds(self):
        rng = np.random.default_rng(4)
        params = SeizureScheduleParams(min_intensity=0.6, max_intensity=0.9)
        for seizure in schedule_seizures(7200.0, 4, rng, params):
            assert 0.6 <= seizure.intensity <= 0.9

    def test_min_gap_respected_when_feasible(self):
        rng = np.random.default_rng(5)
        params = SeizureScheduleParams(min_gap_s=600.0, margin_s=400.0)
        seizures = schedule_seizures(7200.0, 4, rng, params)
        onsets = np.array([s.onset_s for s in seizures])
        assert np.all(np.diff(np.sort(onsets)) >= 600.0 * 0.5 - 1e-9)

    def test_too_short_session_raises(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            schedule_seizures(500.0, 1, rng, SeizureScheduleParams(margin_s=400.0))

    def test_deterministic_given_seed(self):
        a = schedule_seizures(3600.0, 3, np.random.default_rng(42))
        b = schedule_seizures(3600.0, 3, np.random.default_rng(42))
        assert [s.onset_s for s in a] == [s.onset_s for s in b]
        assert [s.duration_s for s in a] == [s.duration_s for s in b]
