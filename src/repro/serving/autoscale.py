"""Closed-loop autoscaling: the control plane that drives ``reshard()``.

PR 5 made the topology elastic — :meth:`ShardedFleet.reshard
<repro.serving.sharding.ShardedFleet.reshard>` migrates exactly the
ring-reassigned patients with zero state loss — but nothing *drove* it: an
operator had to watch queue depths and call it by hand.
:class:`AutoscaleController` closes the loop.  It samples the two cheap,
exact signal sources the serving stack already maintains —
:meth:`ShardedFleet.local_stats
<repro.serving.sharding.ShardedFleet.local_stats>` (pending windows,
oldest-pending age) and :class:`~repro.serving.ingest.GatewayStats` (queued
frames, shed/reject counters) — and decides when the fleet should grow or
shrink by one shard.

The control law is deliberately conservative, because a reshard is not free
(moved patients pause for the quiesce window) and a controller that thrashes
is worse than no controller:

* **EWMA** (:class:`Ewma`) — the per-shard load pressure is smoothed with a
  half-life EWMA, so a single burst chunk cannot trigger a scale-up; only
  load that *persists* on the half-life timescale moves the smoothed value
  across a band edge.
* **CUSUM** (:class:`Cusum`) — a one-sided cumulative-sum detector on the
  normalised pressure residual catches the complementary case: a drift that
  is persistent but too small to cross the band quickly.  Classic
  change-point detection, tuned by ``cusum_drift`` (insensitivity slack) and
  ``cusum_threshold`` (evidence required).
* **Hysteresis** — scale-up and scale-down use *different* pressure bands
  (``high_pending_per_shard`` / ``low_pending_per_shard``); between them the
  controller holds.  A scale-down additionally requires that the load the
  fleet would carry afterwards still clears the high band by
  ``down_headroom`` — shrinking must never immediately re-trigger growing.
* **Cooldown** — after any action the controller holds for ``cooldown_s``,
  long enough for the post-reshard stats to reflect the new topology.
* **Cost model** — before committing, the controller prices the migration
  with :meth:`ShardedFleet.preview_reshard
  <repro.serving.sharding.ShardedFleet.preview_reshard>`; if more than
  ``max_move_fraction`` of the fleet's patients would move, the action is
  vetoed unless the situation is an *emergency* (latency bound breached, or
  frames being shed) — latency relief then outranks migration cost.
* **Gap-aware reset** — a controller that was not sampled for
  ``gap_reset_s`` (suspended process, paused soak clock) resets its
  detectors instead of treating the gap as one giant EWMA step or letting a
  stale CUSUM sum fire on resume.

Every decision — including holds, with the reason they held — is a frozen
:class:`AutoscaleDecision`; the actions taken are kept on
:attr:`AutoscaleController.actions`, the audit trail the soak harness and
benchmarks assert over (shards-over-time, migration cost per action).

Two driving modes: :meth:`AutoscaleController.step` is the synchronous loop
for direct-fleet deployments and harnesses, and
:class:`~repro.serving.ingest.IngestGateway` accepts an ``autoscaler=`` and
calls :meth:`plan` / :meth:`note_action` from its pump loop, running the
migration through its own quiescing :meth:`~repro.serving.ingest.IngestGateway.reshard`
so in-flight frames are never lost to an autonomous action.

Like every time-dependent component in the stack, the controller never reads
the ambient clock: ``clock`` is injectable, and :meth:`plan` / :meth:`step`
accept an explicit ``now`` so soak tests are fully deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # typing-only: no runtime import cycle with ingest
    from repro.serving.ingest import GatewayStats
    from repro.serving.sharding import ShardedFleet

__all__ = [
    "AutoscaleConfig",
    "AutoscaleController",
    "AutoscaleDecision",
    "Cusum",
    "Ewma",
]


class Ewma:
    """Half-life exponentially weighted moving average, gap-aware.

    Parameterised by half-life rather than a per-sample ``alpha`` so the
    smoothing is *time*-based and independent of the sampling cadence: after
    ``half_life_s`` seconds of samples, half of the old value's influence is
    gone, whether that was 3 samples or 300.  The first sample seeds the
    average; a gap longer than ``gap_reset_s`` since the previous sample
    re-seeds instead of applying one enormous (and meaningless) step.
    """

    def __init__(self, half_life_s: float, gap_reset_s: float = float("inf")) -> None:
        if half_life_s <= 0.0:
            raise ValueError("half_life_s must be positive")
        if gap_reset_s <= 0.0:
            raise ValueError("gap_reset_s must be positive")
        self.half_life_s = float(half_life_s)
        self.gap_reset_s = float(gap_reset_s)
        #: Current smoothed value (``None`` before the first sample).
        self.value: Optional[float] = None
        self._last_t: Optional[float] = None

    def update(self, x: float, now: float) -> float:
        """Fold one sample taken at monotonic time ``now``; returns the new value."""
        x = float(x)
        now = float(now)
        if (
            self.value is None
            or self._last_t is None
            or now - self._last_t > self.gap_reset_s
        ):
            self.value = x
        else:
            dt = max(0.0, now - self._last_t)
            alpha = 1.0 - 0.5 ** (dt / self.half_life_s)
            self.value += alpha * (x - self.value)
        self._last_t = now
        return self.value

    def reset(self) -> None:
        """Forget everything; the next sample re-seeds."""
        self.value = None
        self._last_t = None


class Cusum:
    """Two one-sided CUSUM accumulators over a normalised residual.

    Feed :meth:`update` a residual already normalised so that 0.0 means "on
    target" and ±1.0 means "at a band edge".  The high-side sum accumulates
    ``residual - drift`` clamped at zero, the low-side sum the mirror image;
    ``drift`` is the slack that makes the detector blind to zero-mean noise,
    ``threshold`` the accumulated evidence that raises an alarm.  The
    classic property this buys over a plain threshold: a *small but
    persistent* shift (say a steady +0.6 residual with drift 0.5) alarms
    after ``threshold / (shift - drift)`` samples, while i.i.d. noise around
    zero almost never does.

    Both sums saturate at ``2 * threshold``: once a shift has alarmed,
    piling on more evidence changes nothing, but an unbounded sum would make
    the *recovery* time after the shift ends proportional to how long (and
    how hard) it ran — a controller pinned at max capacity through a long
    burst could then be blocked from scaling back down for arbitrarily many
    samples.  The cap bounds de-alarm at about ``threshold / drift``
    on-target samples, whatever came before.
    """

    def __init__(self, drift: float = 0.5, threshold: float = 8.0) -> None:
        if drift < 0.0:
            raise ValueError("drift must be non-negative")
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        self.drift = float(drift)
        self.threshold = float(threshold)
        #: Accumulated high-side (load persistently above target) evidence.
        self.pos = 0.0
        #: Accumulated low-side (load persistently below target) evidence.
        self.neg = 0.0

    def update(self, residual: float) -> None:
        residual = float(residual)
        cap = 2.0 * self.threshold
        self.pos = min(cap, max(0.0, self.pos + residual - self.drift))
        self.neg = min(cap, max(0.0, self.neg - residual - self.drift))

    @property
    def alarm_high(self) -> bool:
        """Load has persistently drifted above target."""
        return self.pos >= self.threshold

    @property
    def alarm_low(self) -> bool:
        """Load has persistently drifted below target."""
        return self.neg >= self.threshold

    def reset(self) -> None:
        self.pos = 0.0
        self.neg = 0.0


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tuning knobs of one :class:`AutoscaleController` (all have sane defaults)."""

    #: Shard-count floor / ceiling the controller may move between.
    min_shards: int = 1
    max_shards: int = 16
    #: Hysteresis band on smoothed pressure (pending windows + queued gateway
    #: frames, per shard): scale up above ``high``, consider scaling down
    #: below ``low``, hold in between.
    high_pending_per_shard: float = 256.0
    low_pending_per_shard: float = 64.0
    #: Oldest-pending age that constitutes a latency emergency: scale up
    #: immediately (cost veto waived), cooldown permitting.
    high_age_s: float = 30.0
    #: Hold time after any action, letting post-reshard stats settle.
    cooldown_s: float = 60.0
    #: EWMA half-life of the pressure signal.
    ewma_half_life_s: float = 30.0
    #: Sampling gap after which both detectors reset rather than extrapolate.
    gap_reset_s: float = 300.0
    #: CUSUM insensitivity slack / alarm threshold, in band-half-width units.
    cusum_drift: float = 0.5
    cusum_threshold: float = 8.0
    #: Shed+rejected frames per second the gateway may lose before the
    #: controller treats the load as an emergency (default: any loss is one).
    shed_tolerance: float = 0.0
    #: Cost-model veto: a non-emergency action moving more than this fraction
    #: of the fleet's patients is held back.  (Growing N→N+1 moves ~1/(N+1),
    #: so the 0.6 default lets a 1→2 split through while still vetoing
    #: pathological re-cuts, e.g. from an aggressive re-weighting.)
    max_move_fraction: float = 0.6
    #: A scale-down must leave projected pressure at or below
    #: ``high_pending_per_shard * down_headroom`` — shrinking must never
    #: immediately re-trigger growing.
    down_headroom: float = 0.5

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 < self.low_pending_per_shard < self.high_pending_per_shard:
            raise ValueError(
                "need 0 < low_pending_per_shard < high_pending_per_shard"
            )
        if self.high_age_s < 0.0:
            raise ValueError("high_age_s must be non-negative")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be non-negative")
        if self.ewma_half_life_s <= 0.0:
            raise ValueError("ewma_half_life_s must be positive")
        if self.gap_reset_s <= 0.0:
            raise ValueError("gap_reset_s must be positive")
        if self.shed_tolerance < 0.0:
            raise ValueError("shed_tolerance must be non-negative")
        if not 0.0 < self.max_move_fraction <= 1.0:
            raise ValueError("max_move_fraction must be in (0, 1]")
        if not 0.0 < self.down_headroom <= 1.0:
            raise ValueError("down_headroom must be in (0, 1]")


@dataclass(frozen=True)
class AutoscaleDecision:
    """One controller verdict: what to do, and the evidence it was based on."""

    #: ``"hold"``, ``"up"`` or ``"down"``.
    action: str
    #: Shard count when the decision was planned.
    n_shards: int
    #: Target shard count (equals :attr:`n_shards` on a hold).
    to_shards: int
    #: Human-readable trigger or veto (``"ewma>high"``, ``"cooldown"``, ...).
    reason: str
    #: Patients the action migrates (``preview_reshard`` count; 0 on a hold).
    moved: int
    #: Smoothed pending-per-shard pressure at decision time.
    pressure: float


class AutoscaleController:
    """Closed-loop shard-count controller over a :class:`ShardedFleet`.

    Parameters
    ----------
    fleet:
        The :class:`~repro.serving.sharding.ShardedFleet` to control.  The
        controller only ever *plans* from cheap local state
        (:meth:`~repro.serving.sharding.ShardedFleet.local_stats`,
        :meth:`~repro.serving.sharding.ShardedFleet.preview_reshard`);
        whether it also *acts* directly (:meth:`step`) or hands the action
        to a quiescing gateway (:meth:`plan` + :meth:`note_action`) is the
        caller's choice.
    config:
        An :class:`AutoscaleConfig`; defaults throughout.
    clock:
        Monotonic time source, injectable for deterministic tests; every
        public method also accepts an explicit ``now``.
    """

    def __init__(
        self,
        fleet: "ShardedFleet",
        config: Optional[AutoscaleConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not hasattr(fleet, "preview_reshard") or not hasattr(fleet, "reshard"):
            raise TypeError(
                "fleet %r does not support live resharding" % type(fleet).__name__
            )
        self.fleet = fleet
        self.config = config if config is not None else AutoscaleConfig()
        self._clock = clock
        self.ewma = Ewma(
            self.config.ewma_half_life_s, gap_reset_s=self.config.gap_reset_s
        )
        self.cusum = Cusum(self.config.cusum_drift, self.config.cusum_threshold)
        self._last_sample_t: Optional[float] = None
        self._last_action_t: Optional[float] = None
        # Shed/reject baselines: GatewayStats counters are cumulative, the
        # controller needs the *rate* since its previous sample.
        self._lost_baseline = 0
        #: Every non-hold decision acted on, in order — the audit trail.
        self.actions: List[AutoscaleDecision] = []

    # ------------------------------------------------------------- observation
    def observe(
        self, gateway_stats: Optional["GatewayStats"] = None, now: Optional[float] = None
    ) -> float:
        """Fold one sample into the detectors; returns the smoothed pressure.

        Pressure is ``(pending windows + queued gateway frames) / n_shards``
        — the backlog each shard is carrying.  Sampling and deciding are
        split so a caller may observe at a faster cadence than it is willing
        to act (the gateway pump observes on every poll).
        """
        smoothed, _, _ = self._observe(gateway_stats, self._resolve_now(now))
        return smoothed

    def _resolve_now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else float(now)

    def _observe(
        self, gateway_stats: Optional["GatewayStats"], now: float
    ) -> Tuple[float, float, float]:
        """One sample: returns ``(smoothed_pressure, oldest_age_s, lost_rate)``."""
        cfg = self.config
        if self._last_sample_t is not None and now - self._last_sample_t > cfg.gap_reset_s:
            # The EWMA re-seeds itself on a gap; the CUSUM sums are evidence
            # accumulated about a regime nobody watched end — drop them too.
            self.cusum.reset()
        stats = self.fleet.local_stats()
        queued = 0 if gateway_stats is None else int(gateway_stats.queued_frames)
        pressure = (stats.pending_windows + queued) / max(1, self.fleet.n_shards)
        smoothed = self.ewma.update(pressure, now)
        midpoint = (cfg.high_pending_per_shard + cfg.low_pending_per_shard) / 2.0
        half_band = (cfg.high_pending_per_shard - cfg.low_pending_per_shard) / 2.0
        self.cusum.update((pressure - midpoint) / half_band)
        lost_rate = 0.0
        if gateway_stats is not None:
            lost = int(gateway_stats.frames_shed) + int(gateway_stats.frames_rejected)
            if self._last_sample_t is not None and now > self._last_sample_t:
                delta = max(0, lost - self._lost_baseline)
                lost_rate = delta / (now - self._last_sample_t)
            self._lost_baseline = lost
        self._last_sample_t = now
        return smoothed, stats.oldest_pending_age_s, lost_rate

    # --------------------------------------------------------------- decisions
    def plan(
        self, gateway_stats: Optional["GatewayStats"] = None, now: Optional[float] = None
    ) -> AutoscaleDecision:
        """Observe once and decide; mutates detectors only, never the fleet.

        The caller is responsible for executing a non-hold decision (e.g.
        through the gateway's quiescing reshard) and then reporting it back
        via :meth:`note_action`; :meth:`step` bundles all three for direct
        deployments.
        """
        now = self._resolve_now(now)
        smoothed, age, lost_rate = self._observe(gateway_stats, now)
        cfg = self.config
        n = int(self.fleet.n_shards)

        def hold(reason: str) -> AutoscaleDecision:
            return AutoscaleDecision(
                action="hold", n_shards=n, to_shards=n, reason=reason,
                moved=0, pressure=smoothed,
            )

        emergency = age >= cfg.high_age_s > 0.0 or lost_rate > cfg.shed_tolerance
        want_up = smoothed >= cfg.high_pending_per_shard or self.cusum.alarm_high or emergency
        want_down = (
            not want_up
            and smoothed <= cfg.low_pending_per_shard
            and not self.cusum.alarm_high
        )
        if not want_up and not want_down:
            return hold("in-band")
        in_cooldown = (
            self._last_action_t is not None and now - self._last_action_t < cfg.cooldown_s
        )
        if in_cooldown:
            return hold("cooldown")
        n_patients = max(1, self.fleet.local_stats().n_patients)
        if want_up:
            if n >= cfg.max_shards:
                return hold("at-max-shards")
            to = n + 1
            moved = len(self.fleet.preview_reshard(to))
            if not emergency and moved > cfg.max_move_fraction * n_patients:
                return hold("cost-veto")
            if emergency:
                reason = "age>=high" if age >= cfg.high_age_s else "shedding"
            elif smoothed >= cfg.high_pending_per_shard:
                reason = "ewma>high"
            else:
                reason = "cusum-high"
            return AutoscaleDecision(
                action="up", n_shards=n, to_shards=to, reason=reason,
                moved=moved, pressure=smoothed,
            )
        # Scale down: only when the survivors would still have headroom.
        if n <= cfg.min_shards:
            return hold("at-min-shards")
        to = n - 1
        projected = smoothed * n / to
        if projected > cfg.high_pending_per_shard * cfg.down_headroom:
            return hold("no-down-headroom")
        moved = len(self.fleet.preview_reshard(to))
        if moved > cfg.max_move_fraction * n_patients:
            return hold("cost-veto")
        return AutoscaleDecision(
            action="down", n_shards=n, to_shards=to, reason="ewma<low",
            moved=moved, pressure=smoothed,
        )

    def note_action(self, decision: AutoscaleDecision, now: Optional[float] = None) -> None:
        """Record that ``decision`` was executed: start the cooldown, reset
        the detectors (their history described a topology that no longer
        exists) and append to :attr:`actions`."""
        self._last_action_t = self._resolve_now(now)
        self.ewma.reset()
        self.cusum.reset()
        self.actions.append(decision)

    def step(
        self, gateway_stats: Optional["GatewayStats"] = None, now: Optional[float] = None
    ) -> AutoscaleDecision:
        """Plan, act directly on the fleet, and record — one control tick.

        For direct-fleet deployments and harnesses.  Under an
        :class:`~repro.serving.ingest.IngestGateway`, pass the controller to
        the gateway instead: the pump loop runs this same sequence but
        executes the reshard through the gateway's quiesce path.
        """
        now = self._resolve_now(now)
        decision = self.plan(gateway_stats, now=now)
        if decision.action != "hold":
            self.fleet.reshard(decision.to_shards)
            self.note_action(decision, now=now)
        return decision
