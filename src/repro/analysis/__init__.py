"""Invariant linter: AST-based static enforcement of the serving guarantees.

``python -m repro.analysis [paths]`` lints the tree (default: the installed
``repro`` package's own source) against the project rule set and exits
non-zero on findings; :func:`run_paths` is the same thing as a library call,
and ``tests/test_static_analysis.py`` bridges it into tier-1 so a violation
fails ``pytest`` before any behavioural test gets a chance to miss it.

See :mod:`repro.analysis.framework` for the rule/finding/suppression
machinery and :mod:`repro.analysis.rules` for what each rule protects.
Suppress a finding with ``# repro: allow[rule-id]`` on (or directly above)
the offending line.
"""

from repro.analysis.framework import (
    Finding,
    ModuleSource,
    Report,
    Rule,
    run_paths,
    run_source,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "ModuleSource",
    "Report",
    "Rule",
    "default_rules",
    "run_paths",
    "run_source",
]
