"""Correlation-driven feature-set reduction (Figures 3 and 4 of the paper).

The paper reduces the 53-feature set by exploiting redundancy: the pairwise
Pearson correlation matrix is computed (Figure 3), the coefficients are summed
column-wise, and the feature with the highest aggregated correlation — i.e.
the one whose information is best represented by the others — is removed.
Iterating the two steps yields a nested family of feature subsets; an SVM is
retrained for every subset size and the accelerator re-synthesised, producing
the GM / energy / area curves of Figure 4.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.evaluation import float_svm_factory, leave_one_session_out
from repro.features.extractor import FeatureMatrix
from repro.svm.kernels import Kernel
from repro.svm.model import SVMTrainParams

__all__ = [
    "correlation_matrix",
    "correlation_removal_order",
    "select_features",
    "feature_reduction_sweep",
]


def correlation_matrix(X: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlation matrix of the feature columns (Equation 4).

    Constant columns (zero variance) have undefined correlations; they carry
    no information, so their correlation with every other feature is set to 1
    so that the removal heuristic prunes them first.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] < 2:
        raise ValueError("X must be 2-D with at least two rows")
    std = X.std(axis=0)
    constant = std < 1e-15
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(X, rowvar=False)
    corr = np.atleast_2d(corr)
    corr[np.isnan(corr)] = 1.0
    if np.any(constant):
        corr[constant, :] = 1.0
        corr[:, constant] = 1.0
    np.fill_diagonal(corr, 1.0)
    return corr


def correlation_removal_order(X: np.ndarray) -> List[int]:
    """Order in which features are removed by the iterative heuristic.

    At each step the Pearson matrix of the *remaining* features is recomputed,
    the coefficients are summed column-wise (signed, as in the paper — a
    strongly anti-correlated pair carries complementary information and should
    *not* inflate the redundancy score), and the feature with the largest
    aggregate (the most redundant one) is removed.  The returned list contains
    original column indices, first-removed first; keeping the last ``k``
    features of the reversed order reproduces the paper's subsets.
    """
    X = np.asarray(X, dtype=float)
    remaining = list(range(X.shape[1]))
    removal_order: List[int] = []
    while len(remaining) > 1:
        corr = correlation_matrix(X[:, remaining])
        aggregate = np.sum(corr, axis=0) - 1.0  # exclude the self-correlation
        worst_local = int(np.argmax(aggregate))
        removal_order.append(remaining.pop(worst_local))
    removal_order.extend(remaining)
    return removal_order


def select_features(
    X: np.ndarray, n_keep: int, removal_order: Optional[Sequence[int]] = None
) -> List[int]:
    """Column indices of the ``n_keep`` features retained by the heuristic.

    The returned indices are sorted in their original order so that feature
    group structure (HRV / Lorenz / AR / PSD) remains recognisable.
    """
    X = np.asarray(X, dtype=float)
    n_features = X.shape[1]
    if not 1 <= n_keep <= n_features:
        raise ValueError("n_keep must lie in 1..%d" % n_features)
    order = list(removal_order) if removal_order is not None else correlation_removal_order(X)
    if sorted(order) != list(range(n_features)):
        raise ValueError("removal_order must be a permutation of the feature indices")
    removed = set(order[: n_features - n_keep])
    return [idx for idx in range(n_features) if idx not in removed]


def feature_reduction_sweep(
    features: FeatureMatrix,
    feature_counts: Sequence[int],
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
    feature_bits: int = 64,
    coeff_bits: int = 64,
    removal_order: Optional[Sequence[int]] = None,
    selection_fn: Optional[Callable[[np.ndarray, int], List[int]]] = None,
) -> List[DesignPoint]:
    """GM / energy / area for a series of feature-set sizes (Figure 4).

    Parameters
    ----------
    features:
        Full 53-feature matrix.
    feature_counts:
        Subset sizes to evaluate (e.g. ``[53, 45, ..., 5]``).
    kernel, train_params:
        Training configuration (defaults to the paper's quadratic kernel).
    feature_bits, coeff_bits:
        Word widths of the hardware model; Figure 4 uses a 64-bit
        implementation, "which has the same accuracy as an equivalent floating
        point version".
    removal_order:
        Pre-computed removal order (avoids recomputation across sweeps).
    selection_fn:
        Alternative selection strategy ``(X, n_keep) -> indices``; used by the
        ablation benchmarks (e.g. random selection).  When provided,
        ``removal_order`` is ignored.

    Returns
    -------
    list of :class:`DesignPoint`, one per requested subset size.
    """
    if removal_order is None and selection_fn is None:
        removal_order = correlation_removal_order(features.X)

    points: List[DesignPoint] = []
    for count in feature_counts:
        if selection_fn is not None:
            kept = selection_fn(features.X, int(count))
        else:
            kept = select_features(features.X, int(count), removal_order)
        reduced = features.select_features(kept)
        cv = leave_one_session_out(reduced, float_svm_factory(kernel, train_params))
        hardware = hardware_cost(
            n_features=len(kept),
            n_support_vectors=cv.mean_support_vectors,
            feature_bits=feature_bits,
            coeff_bits=coeff_bits,
            per_feature_scaling=False,
            datapath_cap_bits=max(feature_bits, coeff_bits),
        )
        points.append(
            DesignPoint.from_evaluation(
                name="features=%d" % count,
                cv_result=cv,
                hardware=hardware,
                extras={"kept_indices": list(map(float, kept))},
            )
        )
    return points
