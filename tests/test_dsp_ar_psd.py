"""Unit tests for AR estimation and Welch PSD."""

import numpy as np
import pytest

from repro.dsp.ar import ar_burg, ar_power_spectrum, ar_yule_walker, levinson_durbin
from repro.dsp.psd import band_power, band_powers, welch_psd


def _ar2_process(a1, a2, n, seed=0, noise=1.0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    e = noise * rng.standard_normal(n)
    for i in range(2, n):
        x[i] = a1 * x[i - 1] + a2 * x[i - 2] + e[i]
    return x[200:]


class TestBurg:
    def test_recovers_ar2_coefficients(self):
        x = _ar2_process(0.75, -0.5, 6000)
        coeffs, variance = ar_burg(x, 2)
        assert coeffs[0] == pytest.approx(0.75, abs=0.05)
        assert coeffs[1] == pytest.approx(-0.5, abs=0.05)
        assert variance == pytest.approx(1.0, rel=0.2)

    def test_sinusoid_pole_near_unit_circle(self):
        t = np.arange(2000)
        x = np.sin(2 * np.pi * 0.1 * t) + 0.01 * np.random.default_rng(1).standard_normal(2000)
        coeffs, _ = ar_burg(x, 2)
        # For a sinusoid at frequency f, a1 ≈ 2 cos(2π f).
        assert coeffs[0] == pytest.approx(2 * np.cos(2 * np.pi * 0.1), abs=0.05)
        assert coeffs[1] == pytest.approx(-1.0, abs=0.05)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ar_burg(np.zeros(10), 0)
        with pytest.raises(ValueError):
            ar_burg(np.zeros(5), 5)

    def test_white_noise_gives_small_coefficients(self):
        x = np.random.default_rng(2).standard_normal(5000)
        coeffs, variance = ar_burg(x, 4)
        assert np.all(np.abs(coeffs) < 0.1)
        assert variance == pytest.approx(1.0, rel=0.1)

    def test_output_shape(self):
        x = np.random.default_rng(3).standard_normal(100)
        coeffs, _ = ar_burg(x, 9)
        assert coeffs.shape == (9,)


class TestYuleWalkerAndLevinson:
    def test_yule_walker_close_to_burg_on_long_series(self):
        x = _ar2_process(0.6, -0.3, 8000, seed=4)
        burg, _ = ar_burg(x, 2)
        yw, _ = ar_yule_walker(x, 2)
        assert np.allclose(burg, yw, atol=0.05)

    def test_levinson_requires_enough_lags(self):
        with pytest.raises(ValueError):
            levinson_durbin(np.array([1.0, 0.5]), 3)

    def test_levinson_white_noise(self):
        coeffs, err = levinson_durbin(np.array([1.0, 0.0, 0.0, 0.0]), 3)
        assert np.allclose(coeffs, 0.0)
        assert err == pytest.approx(1.0)


class TestARPowerSpectrum:
    def test_peak_at_process_resonance(self):
        # AR(2) with resonance near 0.1 of the sampling rate.
        a1 = 2 * 0.95 * np.cos(2 * np.pi * 0.1)
        a2 = -0.95**2
        freqs, psd = ar_power_spectrum(np.array([a1, a2]), 1.0, fs=1.0, n_freqs=512)
        assert freqs[np.argmax(psd)] == pytest.approx(0.1, abs=0.01)

    def test_white_noise_flat_spectrum(self):
        freqs, psd = ar_power_spectrum(np.zeros(0), 1.0, fs=2.0, n_freqs=64)
        assert np.allclose(psd, psd[0])


class TestWelch:
    def test_peak_frequency_detected(self):
        fs = 4.0
        t = np.arange(0, 300.0, 1.0 / fs)
        x = np.sin(2 * np.pi * 0.3 * t) + 0.1 * np.random.default_rng(5).standard_normal(t.size)
        freqs, psd = welch_psd(x, fs)
        assert freqs[np.argmax(psd)] == pytest.approx(0.3, abs=0.02)

    def test_parseval_total_power(self):
        fs = 4.0
        rng = np.random.default_rng(6)
        x = rng.standard_normal(4096)
        freqs, psd = welch_psd(x, fs, segment_length=512)
        total_power = np.trapezoid(psd, freqs) if hasattr(np, "trapezoid") else np.trapz(psd, freqs)
        assert total_power == pytest.approx(np.var(x), rel=0.2)

    def test_short_signal_raises(self):
        with pytest.raises(ValueError):
            welch_psd(np.zeros(4), 4.0)

    def test_invalid_overlap_raises(self):
        with pytest.raises(ValueError):
            welch_psd(np.zeros(100), 4.0, overlap=1.0)

    def test_band_power_sums_to_total(self):
        fs = 4.0
        x = np.random.default_rng(7).standard_normal(2048)
        freqs, psd = welch_psd(x, fs)
        full = band_power(freqs, psd, 0.0, fs / 2)
        halves = band_powers(freqs, psd, [(0.0, 1.0), (1.0, 2.0)])
        assert halves.sum() == pytest.approx(full, rel=0.05)

    def test_band_power_outside_range_is_zero(self):
        freqs = np.linspace(0, 2, 100)
        psd = np.ones_like(freqs)
        assert band_power(freqs, psd, 5.0, 6.0) == 0.0
