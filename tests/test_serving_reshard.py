"""Fleet-churn parity harness: live resharding is *invisible*.

The contract under test — the serving layer's largest cross-layer guarantee:
for ANY schedule of ``push`` / ``drain`` / ``reshard`` / ``add_shard`` /
``remove_shard`` operations interleaved with traffic, a
:class:`~repro.serving.sharding.ShardedFleet`'s decisions are identical
(bit-exact fixed-point scores) to a never-resharded single
:class:`~repro.serving.fleet.MonitorFleet` replaying the same pushes and
drains.  Migration is zero-loss: DSP carry-over, partial windows, sequence
positions and queued pending windows all follow the patient, across all
three executor backends and through the TCP gateway (whose
:class:`~repro.serving.ingest.GatewayStats` ledger must balance at every
step of a reshard).

Like the sharding/gateway parity suites this one is hypothesis-fuzzed: the
churn schedule itself is the fuzzed input.
"""

import asyncio
import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import QuantizationConfig, QuantizedSVM
from repro.serving import (
    MONITOR_STATE_VERSION,
    DuplicateChunkError,
    HashRing,
    IngestGateway,
    LatencyPolicy,
    MonitorFleet,
    MonitorState,
    PendingWindow,
    ShardDrainError,
    ShardedFleet,
    StreamingMonitor,
    decision_sort_key,
    encode_chunk,
)
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.windows import WindowingParams

FS = 64.0
#: One-minute windows keep the fuzz workload short while still emitting
#: several usable (feature-complete) windows per patient.
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


@pytest.fixture(scope="module")
def workload():
    """A small multi-patient raw-ECG workload as an interleaved frame list.

    Frames are ``(patient_id, seq, chunk)`` triples in round-robin arrival
    order — the order every fleet and the reference replay them in.
    """
    params = CohortParams(
        n_patients=4,
        n_sessions=4,
        session_duration_s=420.0,
        total_seizures=0,
        seed=51,
        ecg_params=ECGWaveformParams(fs=FS),
    )
    cohort = generate_cohort(params)
    rng = np.random.default_rng(52)
    streams = {}
    for recording in cohort.recordings:
        ecg = synthesize_ecg(
            recording.beat_times_s,
            recording.duration_s,
            recording.respiration,
            rng,
            params=ECGWaveformParams(fs=FS),
        )
        chunks = []
        lo = 0
        while lo < ecg.ecg_mv.size:
            size = int(rng.integers(400, 4000))
            chunks.append(ecg.ecg_mv[lo : lo + size])
            lo += size
        streams[recording.patient_id] = chunks
    frames = []
    sequence = {pid: 0 for pid in streams}
    iterators = {pid: iter(chunks) for pid, chunks in streams.items()}
    while iterators:
        for pid in list(iterators):
            try:
                chunk = next(iterators[pid])
            except StopIteration:
                del iterators[pid]
                continue
            frames.append((pid, sequence[pid], chunk))
            sequence[pid] += 1
    return dict(streams=streams, frames=frames)


@pytest.fixture(scope="module")
def quantized_detector(quadratic_model):
    return QuantizedSVM(quadratic_model, QuantizationConfig(feature_bits=9, coeff_bits=15))


def _apply_schedule(fleet, frames, schedule, *, churn):
    """Replay ``schedule`` against ``fleet``; return per-drain decision lists.

    The reference fleet runs with ``churn=False``: the topology operations
    become no-ops, so it sees the exact same pushes and drains and never
    reshards.  Whatever frames the schedule did not push are pushed at the
    end, followed by a flush and a final drain — every run covers the whole
    workload, so the final parity is always meaningful.
    """
    drains = []
    cursor = 0
    for op in schedule:
        if op[0] == "push":
            for _ in range(op[1]):
                if cursor >= len(frames):
                    break
                pid, seq, chunk = frames[cursor]
                cursor += 1
                fleet.push(pid, chunk, seq=seq)
        elif op[0] == "drain":
            drains.append(sorted(fleet.drain(), key=decision_sort_key))
        elif churn:
            if op[0] == "reshard":
                fleet.reshard(op[1])
            elif op[0] == "add_shard":
                fleet.add_shard()
            elif op[0] == "remove_shard" and fleet.n_shards > 1:
                fleet.remove_shard()
    while cursor < len(frames):
        pid, seq, chunk = frames[cursor]
        cursor += 1
        fleet.push(pid, chunk, seq=seq)
    fleet.finish()
    drains.append(sorted(fleet.drain(), key=decision_sort_key))
    return drains


def _assert_drains_identical(reference, candidate, *, exact_scores=True):
    assert len(candidate) == len(reference)
    for ref_drain, got_drain in zip(reference, candidate):
        assert len(got_drain) == len(ref_drain)
        for expected, got in zip(ref_drain, got_drain):
            assert got.patient_id == expected.patient_id
            assert got.start_s == expected.start_s
            assert got.end_s == expected.end_s
            assert got.n_beats == expected.n_beats
            assert got.usable == expected.usable
            assert got.alarm == expected.alarm
            if expected.score is None:
                assert got.score is None
            elif exact_scores:
                assert got.score == expected.score
            else:
                assert math.isclose(got.score, expected.score, rel_tol=1e-9, abs_tol=1e-12)


#: One churn-schedule operation.  reshard targets stay within 1..4 shards so
#: schedules exercise both directions (1↔2↔4) plus single-step add/remove.
SCHEDULE_OPS = st.one_of(
    st.tuples(st.just("push"), st.integers(1, 12)),
    st.tuples(st.just("drain")),
    st.tuples(st.just("reshard"), st.sampled_from([1, 2, 4])),
    st.tuples(st.just("add_shard")),
    st.tuples(st.just("remove_shard")),
)


class TestChurnParityFuzz:
    """Random churn schedules vs a never-resharded reference fleet."""

    _reference_cache: dict = {}

    def _reference(self, workload, classifier, schedule):
        """Per-drain reference decisions for the schedule's push/drain shape."""
        key = (
            id(classifier),
            tuple(op for op in schedule if op[0] in ("push", "drain")),
        )
        if key not in self._reference_cache:
            fleet = MonitorFleet(classifier, FS, windowing=WINDOWING)
            self._reference_cache[key] = _apply_schedule(
                fleet, workload["frames"], schedule, churn=False
            )
        return self._reference_cache[key]

    @given(
        schedule=st.lists(SCHEDULE_OPS, min_size=3, max_size=14),
        backend=st.sampled_from(["serial", "thread"]),
        n_shards=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_quantized_churn_parity_is_bit_exact(
        self, workload, quantized_detector, schedule, backend, n_shards
    ):
        reference = self._reference(workload, quantized_detector, schedule)
        assert any(d.usable for drain in reference for d in drain)
        with ShardedFleet(
            quantized_detector,
            FS,
            n_shards=n_shards,
            windowing=WINDOWING,
            backend=backend,
        ) as fleet:
            drains = _apply_schedule(fleet, workload["frames"], schedule, churn=True)
        _assert_drains_identical(reference, drains, exact_scores=True)

    @given(schedule=st.lists(SCHEDULE_OPS, min_size=3, max_size=10))
    @settings(max_examples=5, deadline=None)
    def test_float_churn_parity(self, workload, quadratic_model, schedule):
        reference = self._reference(workload, quadratic_model, schedule)
        with ShardedFleet(quadratic_model, FS, n_shards=2, windowing=WINDOWING) as fleet:
            drains = _apply_schedule(fleet, workload["frames"], schedule, churn=True)
        _assert_drains_identical(reference, drains, exact_scores=False)

    def test_process_backend_churn_parity(self, workload, quantized_detector):
        """The worker-pipe migration path: states pickle across processes."""
        schedule = [
            ("push", 10),
            ("reshard", 4),
            ("push", 8),
            ("drain",),
            ("remove_shard",),
            ("push", 8),
            ("reshard", 1),
            ("drain",),
            ("add_shard",),
            ("push", 8),
            ("reshard", 2),
        ]
        reference = self._reference(workload, quantized_detector, schedule)
        with ShardedFleet(
            quantized_detector, FS, n_shards=2, windowing=WINDOWING, backend="process"
        ) as fleet:
            drains = _apply_schedule(fleet, workload["frames"], schedule, churn=True)
        _assert_drains_identical(reference, drains, exact_scores=True)


class TestGatewayReshard:
    """Resharding through the TCP gateway: parity plus the ledger invariant."""

    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_gateway_churn_parity_and_ledger(self, workload, quantized_detector, data):
        frames = workload["frames"]
        reshard_points = sorted(
            data.draw(
                st.lists(
                    st.tuples(st.integers(0, len(frames) - 1), st.sampled_from([1, 2, 4])),
                    max_size=4,
                    unique_by=lambda t: t[0],
                )
            )
        )
        reshard_at = dict(reshard_points)

        async def run():
            fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
            gateway = IngestGateway(fleet, queue_depth=8, backpressure="block")
            await gateway.start()
            for k, (pid, seq, chunk) in enumerate(frames):
                await gateway.submit(encode_chunk(pid, seq, FS, chunk))
                if k in reshard_at:
                    await gateway.reshard(reshard_at[k])
                    stats = gateway.stats()
                    assert stats.fully_accounted  # ledger holds mid-churn
            decisions = await gateway.stop()
            return decisions, gateway.stats()

        decisions, stats = asyncio.run(run())
        reference_fleet = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
        reference = _apply_schedule(reference_fleet, frames, [], churn=False)
        _assert_drains_identical(reference, [sorted(decisions, key=decision_sort_key)])
        assert stats.fully_accounted
        assert stats.frames_errored == 0  # seq enforcement survived migration
        assert stats.frames_delivered == len(frames)
        assert stats.reshards == len(reshard_points)

    def test_quiesced_patients_buffer_while_others_flow(self, quantized_detector):
        """The pump skips exactly the quiesced patients; their frames queue
        under the ledger and delivery resumes in order when thawed."""

        async def run():
            fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
            gateway = IngestGateway(fleet, queue_depth=8)
            await gateway.start()
            # Simulate the quiesce window of a reshard migrating patient 0.
            gateway._quiesced.add(0)
            for seq in range(3):
                await gateway.submit(encode_chunk(0, seq, FS, np.zeros(64)))
                await gateway.submit(encode_chunk(1, seq, FS, np.zeros(64)))
            for _ in range(50):
                await asyncio.sleep(0.01)
                if gateway.stats().frames_delivered == 3:
                    break
            frozen = gateway.stats()
            gateway._quiesced.discard(0)
            gateway._data.set()
            for _ in range(50):
                await asyncio.sleep(0.01)
                if gateway.stats().frames_delivered == 6:
                    break
            thawed = gateway.stats()
            await gateway.stop()
            return frozen, thawed, fleet

        frozen, thawed, fleet = asyncio.run(run())
        # While quiesced: only patient 1's frames reached the fleet, patient
        # 0's stayed queued — and the ledger balanced throughout.
        assert frozen.frames_delivered == 3
        assert frozen.queued_frames == 3
        assert frozen.fully_accounted
        # After the thaw the held frames were delivered in order (no seq
        # errors under strict block-policy sequencing).
        assert thawed.frames_delivered == 6
        assert thawed.frames_errored == 0
        assert thawed.fully_accounted

    def test_reshard_requires_a_reshardable_fleet(self, quantized_detector):
        async def run():
            fleet = MonitorFleet(quantized_detector, FS)
            gateway = IngestGateway(fleet)
            await gateway.start()
            with pytest.raises(TypeError, match="live resharding"):
                await gateway.reshard(4)
            await gateway.stop()

        asyncio.run(run())


class TestMonitorStateRoundTrip:
    """snapshot() → (pickle) → from_snapshot() is lossless and exact."""

    def test_snapshot_restore_round_trip_equality(self, workload):
        pid, chunks = next(iter(workload["streams"].items()))
        original = StreamingMonitor(pid, FS, windowing=WINDOWING)
        half = len(chunks) // 2
        for seq, chunk in enumerate(chunks[:half]):
            original.push(chunk, seq=seq)
        state = original.snapshot()
        assert state.version == MONITOR_STATE_VERSION
        assert state.has_monitor
        # The pickle round trip is exactly what the process backend ships
        # over its worker pipes.
        revived_state = pickle.loads(pickle.dumps(state))
        assert revived_state == state
        revived = StreamingMonitor.from_snapshot(revived_state)
        assert revived.last_seq == original.last_seq
        assert revived.time_seen_s == original.time_seen_s
        # Identical continuations: every later window is bit-identical.
        for seq, chunk in enumerate(chunks[half:], start=half):
            for got, expected in zip(
                revived.push(chunk, seq=seq), original.push(chunk, seq=seq)
            ):
                assert got.start_s == expected.start_s
                assert got.n_beats == expected.n_beats
                assert got.usable == expected.usable
                if expected.usable:
                    assert np.array_equal(got.features, expected.features)
        for got, expected in zip(revived.finish(), original.finish()):
            assert got.start_s == expected.start_s
            assert got.usable == expected.usable
            if expected.usable:
                assert np.array_equal(got.features, expected.features)
        # Snapshots of behaviourally identical monitors are equal too.
        assert revived.snapshot() == original.snapshot()

    def test_snapshot_is_isolated_from_the_live_monitor(self, workload):
        pid, chunks = next(iter(workload["streams"].items()))
        monitor = StreamingMonitor(pid, FS, windowing=WINDOWING)
        for seq, chunk in enumerate(chunks[:3]):
            monitor.push(chunk, seq=seq)
        state = monitor.snapshot()
        reference = pickle.dumps(state)
        for seq, chunk in enumerate(chunks[3:6], start=3):
            monitor.push(chunk, seq=seq)
        assert pickle.loads(reference) == state  # streaming on did not mutate it

    def test_version_and_pending_only_states_are_rejected(self):
        monitor = StreamingMonitor(0, FS, windowing=WINDOWING)
        state = monitor.snapshot()
        from dataclasses import replace

        with pytest.raises(ValueError, match="version"):
            StreamingMonitor.from_snapshot(replace(state, version=99))
        with pytest.raises(ValueError, match="no monitor DSP state"):
            StreamingMonitor.from_snapshot(
                MonitorState(
                    version=MONITOR_STATE_VERSION,
                    patient_id=0,
                    fs=FS,
                    detector=None,
                    windower=None,
                    sequence=None,
                    n_windows=0,
                    n_usable=0,
                )
            )


def _feature_window(patient_id, start_s, features):
    return PendingWindow(
        patient_id=patient_id,
        start_s=start_s,
        end_s=start_s + 60.0,
        n_beats=80,
        features=features,
    )


class TestFleetExportImport:
    """MonitorFleet.export_patient / import_patient contracts."""

    def test_export_detaches_monitor_and_queued_windows(self, quantized_detector, feature_matrix):
        source = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
        target = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
        source.push(5, np.zeros(256), seq=0)
        source.enqueue(
            [
                _feature_window(5, 0.0, feature_matrix.X[0]),
                _feature_window(6, 0.0, feature_matrix.X[1]),
                _feature_window(5, 60.0, feature_matrix.X[2]),
            ]
        )
        state = source.export_patient(5)
        # Atomic detach: monitor gone, only patient 5's windows travelled.
        assert not source.has_patient(5)
        assert source.pending_count == 1
        assert [w.start_s for w in state.pending] == [0.0, 60.0]
        target.import_patient(state)
        assert target.has_patient(5)
        assert target.pending_count == 2
        decisions = target.drain()
        assert [d.start_s for d in decisions] == [0.0, 60.0]
        # The migrated sequence position still polices the stream.
        with pytest.raises(DuplicateChunkError):
            target.push(5, np.zeros(64), seq=0)
        target.push(5, np.zeros(64), seq=1)

    def test_pending_only_patient_exports_without_a_monitor(
        self, quantized_detector, feature_matrix
    ):
        source = MonitorFleet(quantized_detector, FS)
        source.enqueue([_feature_window(9, 0.0, feature_matrix.X[0])])
        state = source.export_patient(9)
        assert not state.has_monitor and len(state.pending) == 1
        target = MonitorFleet(quantized_detector, FS)
        assert target.import_patient(state) == 1
        assert not target.has_patient(9)  # no monitor to revive
        assert len(target.drain()) == 1

    def test_export_import_validation(self, quantized_detector):
        fleet = MonitorFleet(quantized_detector, FS)
        with pytest.raises(KeyError):
            fleet.export_patient(123)
        fleet.push(1, np.zeros(64))
        state = fleet.export_patient(1)
        fleet.import_patient(state)
        with pytest.raises(KeyError, match="already monitored"):
            fleet.import_patient(state)
        other = MonitorFleet(quantized_detector, 2 * FS)
        with pytest.raises(ValueError, match="does not match"):
            other.import_patient(state)
        with pytest.raises(ValueError, match="MonitorState"):
            fleet.import_patient("not a state")

    def test_reshard_survives_drained_enqueue_only_patients(
        self, quantized_detector, feature_matrix
    ):
        """Regression: a patient known only through enqueued windows that
        were since drained has nothing to export — a reshard reassigning
        them must skip them, not crash mid-migration (which would destroy
        the states of patients exported before the crash)."""
        fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
        for pid in range(4):
            fleet.push(pid, np.zeros(256), seq=0)
        fleet.enqueue([_feature_window(pid, 0.0, feature_matrix.X[pid]) for pid in range(100, 108)])
        fleet.drain()  # the enqueue-only patients now hold no state at all
        moved = fleet.reshard(4)
        assert any(pid >= 100 for pid in moved)  # some drained patients reassigned
        # The pushed patients' monitors survived the migration intact.
        for pid in range(4):
            assert fleet.has_patient(pid)
            fleet.push(pid, np.zeros(256), seq=1)

    def test_migration_preserves_sequence_tracker_across_reshard(self, quantized_detector):
        """Regression: a reshard must carry every moving patient's
        SequenceTracker — a forgotten tracker would re-accept seq 0 and
        silently corrupt the DSP stream."""
        fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
        for pid in range(8):
            fleet.push(pid, np.zeros(256), seq=0)
            fleet.push(pid, np.zeros(256), seq=1)
        moved = fleet.reshard(4)
        assert moved  # the fuzz seed must actually migrate someone
        for pid in range(8):
            with pytest.raises(DuplicateChunkError):
                fleet.push(pid, np.zeros(256), seq=1)
            fleet.push(pid, np.zeros(256), seq=2)


class TestHashRingReshard:
    """HashRing.with_n_shards: correctness and the minimal-movement bound."""

    def test_new_ring_matches_a_fresh_ring(self):
        ring, _ = HashRing(4).with_n_shards(5)
        fresh = HashRing(5)
        ids = range(500)
        assert [ring.shard_of(i) for i in ids] == [fresh.shard_of(i) for i in ids]

    def test_growth_moves_a_bounded_minority_to_the_new_shard_only(self):
        ids = range(2000)
        ring = HashRing(4)
        new_ring, moved = ring.with_n_shards(5, ids)
        # Expected fraction for 4→5 shards is 1/5; allow generous variance
        # headroom but stay far below what a modulo reshuffle (~4/5) would do.
        assert 0 < len(moved) <= 0.35 * 2000
        for pid, (old, new) in moved.items():
            assert old != new
            assert new == 4  # growth: every mover lands on the new shard
            assert ring.shard_of(pid) == old
            assert new_ring.shard_of(pid) == new
        # Completeness: nobody moved without being reported.
        for pid in ids:
            if pid not in moved:
                assert ring.shard_of(pid) == new_ring.shard_of(pid)

    def test_shrink_moves_exactly_the_removed_shards_patients(self):
        ids = range(2000)
        ring = HashRing(5)
        _, moved = ring.with_n_shards(4, ids)
        on_removed = {pid for pid in ids if ring.shard_of(pid) == 4}
        assert set(moved) == on_removed
        assert all(old == 4 for old, _ in moved.values())

    def test_reshard_validation(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=1)
        with pytest.raises(ValueError):
            fleet.reshard(0)
        with pytest.raises(ValueError):
            fleet.preview_reshard(-1)
        with pytest.raises(ValueError, match="last shard"):
            fleet.remove_shard()
        assert fleet.reshard(1) == {}

    def test_preview_matches_the_real_reshard(self, quantized_detector):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
        for pid in range(16):
            fleet.push(pid, np.zeros(128))
        preview = fleet.preview_reshard(4)
        assert fleet.n_shards == 2  # preview never acts
        assert fleet.reshard(4) == preview
        assert fleet.n_shards == 4
        for pid in range(16):
            assert fleet.shard_of(pid) == fleet.ring.shard_of(pid)


class TestReshardAtomicity:
    """Satellite bugfix: a failed migration must leave the fleet untouched.

    Before the fix, ``reshard`` decremented ``_pending_by_shard`` inside the
    export loop and mutated the topology before any import — a raising
    ``export_patient`` (e.g. a dead process worker) left counters corrupt
    and already-exported patients destroyed.  Now every state is collected
    before any mutation, an export failure rolls the collected states back
    to their old shards, and pending counts are asserted non-negative.
    """

    def _loaded_fleet(self, quantized_detector, feature_matrix, n_shards=4):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=n_shards, windowing=WINDOWING)
        for pid in range(24):
            fleet.push(pid, np.zeros(256), seq=0)
        fleet.enqueue(
            [
                _feature_window(pid, 0.0, feature_matrix.X[pid % feature_matrix.X.shape[0]])
                for pid in range(24)
            ]
        )
        return fleet

    def test_export_fault_rolls_back_and_is_retryable(
        self, quantized_detector, feature_matrix
    ):
        fleet = self._loaded_fleet(quantized_detector, feature_matrix)
        before = fleet.local_stats()
        assert before.pending_windows == 24
        ring_before = fleet.ring
        original_call = fleet._backend.call
        exports = {"n": 0}

        def flaky_call(shard, method, *args, **kwargs):
            if method == "export_patient":
                exports["n"] += 1
                if exports["n"] > 2:  # some exports succeed first
                    raise RuntimeError("worker died")
            return original_call(shard, method, *args, **kwargs)

        fleet._backend.call = flaky_call
        with pytest.raises(RuntimeError, match="worker died"):
            fleet.reshard(2)
        assert exports["n"] > 2  # the fault actually fired mid-migration
        fleet._backend.call = original_call
        # Nothing moved, nothing counted: topology, ring, counters, patients.
        assert fleet.n_shards == 4
        assert fleet.ring is ring_before
        assert all(count >= 0 for count in fleet._pending_by_shard.values())
        assert fleet.local_stats().pending_windows == 24
        assert fleet.stats().pending_windows == 24
        for pid in range(24):
            assert fleet.has_patient(pid)
        # The call is retryable, and the retried fleet still drains exactly
        # what a never-resharded fleet would.
        fleet.reshard(2)
        assert fleet.n_shards == 2
        assert fleet.local_stats().pending_windows == 24
        reference = MonitorFleet(quantized_detector, FS, windowing=WINDOWING)
        for pid in range(24):
            reference.push(pid, np.zeros(256), seq=0)
        reference.enqueue(
            [
                _feature_window(pid, 0.0, feature_matrix.X[pid % feature_matrix.X.shape[0]])
                for pid in range(24)
            ]
        )
        _assert_drains_identical(
            [sorted(reference.drain(), key=decision_sort_key)],
            [sorted(fleet.drain(), key=decision_sort_key)],
        )

    def test_import_fault_names_the_orphans(self, quantized_detector, feature_matrix):
        fleet = self._loaded_fleet(quantized_detector, feature_matrix)

        def dead_import(state, pending_age_s=0.0):
            raise RuntimeError("import worker died")

        # Patch the surviving shard *fleets* (they outlive the executor
        # rebuild a reshard performs): every 4→2 mover lands on one of them.
        for shard_fleet in fleet._backend.shards[:2]:
            shard_fleet.import_patient = dead_import
        with pytest.raises(RuntimeError, match="orphaned patients") as excinfo:
            fleet.reshard(2)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # The exceptional half of the contract: the new topology is in
        # place, the failure is loud, and every orphan is named.
        assert fleet.n_shards == 2


class TestPendingAgeSurvivesMigration:
    """Satellite bugfix: migrated windows must not look freshly arrived.

    ``MonitorFleet.import_patient`` used to seed the target shard's
    oldest-pending clock at import time, so a reshard *extended* the latency
    bound a :class:`LatencyPolicy` (and the autoscale controller) relies on.
    The source shard's queue age now travels with the migration.
    """

    def _moving_patient(self):
        ring2 = HashRing(2)
        return next(p for p in range(100) if ring2.shard_of(p) == 1)

    def test_reshard_mid_wait_does_not_extend_the_latency_bound(
        self, quantized_detector, feature_matrix
    ):
        t = {"now": 1000.0}
        fleet = ShardedFleet(
            quantized_detector,
            FS,
            n_shards=1,
            windowing=WINDOWING,
            clock=lambda: t["now"],
        )
        pid = self._moving_patient()
        fleet.enqueue([_feature_window(pid, 0.0, feature_matrix.X[0])])
        t["now"] += 30.0
        moved = fleet.reshard(2)
        assert pid in moved  # the only pending window migrated to shard 1
        # Both snapshots still report the full 30 s wait.
        assert fleet.local_stats().oldest_pending_age_s >= 30.0
        assert fleet.stats().oldest_pending_age_s >= 30.0
        # A 40 s latency bound fires 40 s after arrival, not 40 s after the
        # migration: 15 more seconds and the swept stats trigger it.
        policy = LatencyPolicy(40.0)
        assert not policy.should_drain(fleet.stats())
        t["now"] += 15.0
        assert policy.should_drain(fleet.stats())
        assert policy.should_drain(fleet.local_stats())

    def test_import_patient_backdates_the_pending_clock(
        self, quantized_detector, feature_matrix
    ):
        t = {"now": 50.0}
        source = MonitorFleet(quantized_detector, FS, clock=lambda: t["now"])
        target = MonitorFleet(quantized_detector, FS, clock=lambda: t["now"])
        source.enqueue([_feature_window(3, 0.0, feature_matrix.X[0])])
        t["now"] += 12.0
        age = source.stats().oldest_pending_age_s
        state = source.export_patient(3)
        target.import_patient(state, pending_age_s=age)
        assert target.stats().oldest_pending_age_s == pytest.approx(12.0)
        # A fleet that already holds an older window keeps its own clock.
        other = MonitorFleet(quantized_detector, FS, clock=lambda: t["now"])
        other.enqueue([_feature_window(4, 0.0, feature_matrix.X[1])])
        t["now"] += 20.0
        other.import_patient(target.export_patient(3), pending_age_s=5.0)
        assert other.stats().oldest_pending_age_s == pytest.approx(20.0)


class TestStatsReconcileAfterDrainError:
    """Satellite bugfix: ``stats()`` and ``local_stats()`` agree on
    ``chunks_since_drain`` after a partial drain failure.

    Healthy shards reset their own counters when they drain; fleet-level the
    drain has not happened until every shard succeeds.  The wrapper counter
    is the authority and now overlays the swept sum, so a controller (or a
    ``ChunkCountPolicy``) reads the same backlog from either snapshot.
    """

    def test_failed_then_retried_drain_keeps_the_snapshots_agreeing(
        self, quantized_detector, feature_matrix
    ):
        fleet = ShardedFleet(quantized_detector, FS, n_shards=2, windowing=WINDOWING)
        for pid in range(8):
            fleet.push(pid, np.zeros(256), seq=0)
        fleet.enqueue(
            [_feature_window(pid, 0.0, feature_matrix.X[pid % 4]) for pid in range(8)]
        )
        assert fleet.local_stats().chunks_since_drain == 8
        shard0 = fleet._backend.shards[0]
        original_drain = shard0.drain
        fails = {"n": 0}

        def failing_drain():
            if fails["n"] == 0:
                fails["n"] += 1
                raise RuntimeError("classifier fault")
            return original_drain()

        shard0.drain = failing_drain
        with pytest.raises(ShardDrainError) as excinfo:
            fleet.drain()
        assert set(excinfo.value.errors) == {0}
        # Shard 1 drained (and reset its own counter); fleet-level the drain
        # failed, and both snapshots must say so identically.
        local, swept = fleet.local_stats(), fleet.stats()
        assert local.chunks_since_drain == swept.chunks_since_drain == 8
        assert local.pending_windows == swept.pending_windows > 0
        # The retry succeeds (shard 0's windows were kept) and both
        # snapshots reset together.
        decisions = fleet.drain()
        assert decisions  # shard 0's kept windows classified on the retry
        local, swept = fleet.local_stats(), fleet.stats()
        assert local.chunks_since_drain == swept.chunks_since_drain == 0
        assert local.pending_windows == swept.pending_windows == 0
