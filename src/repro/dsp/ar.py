"""Auto-regressive model estimation (Burg and Yule–Walker).

Features 16–24 of the paper's feature set are the linear coefficients of an
auto-regressive model fitted to the ECG-derived respiration time series.  This
module provides two classic estimators:

* **Burg's method** — minimises forward and backward prediction errors and is
  the usual choice for short physiological segments because it guarantees a
  stable model and behaves well with few samples.
* **Yule–Walker** — solves the normal equations built from the biased
  autocorrelation sequence via Levinson–Durbin recursion; provided mainly as a
  cross-check and for the property-based tests.

Both return coefficients in the convention

    x[n] = sum_{k=1..p} a[k] * x[n-k] + e[n]

i.e. *positive* prediction coefficients, plus the white-noise driving
variance.  :func:`ar_power_spectrum` evaluates the implied parametric PSD.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ar_burg", "ar_yule_walker", "ar_power_spectrum", "levinson_durbin"]


def ar_burg(x: np.ndarray, order: int) -> Tuple[np.ndarray, float]:
    """Fit an AR(p) model with Burg's method.

    Parameters
    ----------
    x:
        Input signal (1-D).  It is not demeaned internally; callers should
        detrend/demean beforehand if appropriate.
    order:
        Model order ``p`` (must satisfy ``0 < p < len(x)``).

    Returns
    -------
    (coefficients, noise_variance):
        ``coefficients`` has shape ``(order,)`` with the convention above.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if order <= 0:
        raise ValueError("order must be positive")
    if n <= order:
        raise ValueError("need more samples than the AR order")

    # Forward and backward prediction errors; both shrink by one sample per
    # model order as in the classic Burg recursion.  The recursion runs on a
    # fixed set of scratch buffers (ping-pong pairs for f/b, one temporary
    # for the scaled cross term) so each iteration performs zero allocations;
    # every arithmetic step matches the allocating formulation operation for
    # operation, so the coefficients are bit-identical.
    f = x.copy()
    b = x.copy()
    f_spare = np.empty(max(n - 1, 1))
    b_spare = np.empty(max(n - 1, 1))
    scratch = np.empty(max(n - 1, 1))
    energy = np.dot(x, x) / n

    coeffs = np.zeros(order)
    prev = np.empty(order)
    k = 0
    length = n
    for _ in range(order):
        m = length - 1
        ef = f[1:length]
        eb = b[: length - 1]
        den = np.dot(ef, ef) + np.dot(eb, eb)
        reflection = 0.0 if den <= 1e-30 else -2.0 * np.dot(eb, ef) / den
        # Update the error-filter coefficients (Levinson-style recursion):
        # new[:k] = coeffs[:k] + reflection * coeffs[:k][::-1].
        if k > 0:
            prev[:k] = coeffs[:k]
            np.multiply(prev[k - 1 :: -1], reflection, out=coeffs[:k])
            np.add(coeffs[:k], prev[:k], out=coeffs[:k])
        coeffs[k] = reflection
        k += 1
        # Update the prediction errors: f' = ef + r*eb, b' = eb + r*ef.
        np.multiply(eb, reflection, out=scratch[:m])
        np.add(ef, scratch[:m], out=f_spare[:m])
        np.multiply(ef, reflection, out=scratch[:m])
        np.add(eb, scratch[:m], out=b_spare[:m])
        f, f_spare = f_spare, f
        b, b_spare = b_spare, b
        length = m
        energy *= 1.0 - reflection**2

    # Convert from the "error filter" convention (1 + c1 z^-1 + ...) to the
    # prediction convention x[n] = sum a_k x[n-k] + e[n].
    a = -coeffs
    return a, float(max(energy, 0.0))


def levinson_durbin(autocorr: np.ndarray, order: int) -> Tuple[np.ndarray, float]:
    """Levinson–Durbin recursion on an autocorrelation sequence.

    Returns the prediction coefficients (positive convention) and the final
    prediction-error variance.
    """
    autocorr = np.asarray(autocorr, dtype=float)
    if autocorr.size < order + 1:
        raise ValueError("autocorrelation sequence too short for the requested order")
    error = autocorr[0]
    if error <= 0:
        return np.zeros(order), 0.0
    a = np.zeros(order)
    for k in range(order):
        acc = autocorr[k + 1] - np.dot(a[:k], autocorr[k:0:-1][:k])
        reflection = acc / error
        new_a = a.copy()
        new_a[k] = reflection
        new_a[:k] = a[:k] - reflection * a[:k][::-1]
        a = new_a
        error *= 1.0 - reflection**2
        if error <= 1e-30:
            error = 1e-30
    return a, float(error)


def ar_yule_walker(x: np.ndarray, order: int) -> Tuple[np.ndarray, float]:
    """Fit an AR(p) model with the Yule–Walker (autocorrelation) method."""
    x = np.asarray(x, dtype=float)
    n = x.size
    if order <= 0:
        raise ValueError("order must be positive")
    if n <= order:
        raise ValueError("need more samples than the AR order")
    x = x - x.mean()
    autocorr = np.array([np.dot(x[: n - lag], x[lag:]) / n for lag in range(order + 1)])
    return levinson_durbin(autocorr, order)


def ar_power_spectrum(
    coefficients: np.ndarray, noise_variance: float, fs: float, n_freqs: int = 256
) -> Tuple[np.ndarray, np.ndarray]:
    """Parametric PSD implied by an AR model.

    Returns the frequency grid (0 .. fs/2) and the PSD values.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    freqs = np.linspace(0.0, fs / 2.0, n_freqs)
    omega = 2.0 * np.pi * freqs / fs
    # Denominator |1 - sum a_k e^{-j w k}|^2
    k = np.arange(1, coefficients.size + 1)
    phases = np.exp(-1j * np.outer(omega, k))
    denom = np.abs(1.0 - phases @ coefficients) ** 2
    psd = noise_variance / np.maximum(denom, 1e-30) / fs
    return freqs, psd
