"""Selection of power-of-two ranges for features and coefficients.

The paper restricts every feature ``j`` to a range ``[-2^{R_j}, 2^{R_j}]``
where ``R_j`` is the smallest exponent compatible with the statistics of the
support-vector set (Equation 6):

    avg(F_j) - σ(F_j) > -2^{R_j}     and     avg(F_j) + σ(F_j) < 2^{R_j} - 1

Values outside the range are saturated.  The reproduction keeps the spirit of
the rule — the smallest power of two that covers ``avg ± σ`` — but drops the
``- 1`` term, which presupposes feature magnitudes larger than one; our
features live in the standardised space of the trained model where magnitudes
are of order one, so ``2^{R_j} ≥ max(|avg ± σ|)`` is the meaningful condition.
The deviation is recorded in DESIGN.md / EXPERIMENTS.md.

For the homogeneous-scaling baseline of Figure 7 a single exponent shared by
all features (the maximum of the per-feature exponents, so no feature needs
more saturation than before) and a single exponent for all coefficients are
used instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RangeSelection",
    "feature_range_exponents",
    "global_range_exponent",
    "coefficient_range_exponent",
]

#: Exponents are stored in a small signed field in hardware; clamp to it.
_MIN_EXPONENT = -16
_MAX_EXPONENT = 15


@dataclass(frozen=True)
class RangeSelection:
    """Per-feature (or global) range exponents for one model."""

    feature_exponents: np.ndarray
    coefficient_exponent: int
    per_feature: bool

    @property
    def n_features(self) -> int:
        return int(self.feature_exponents.shape[0])


#: Default width of the range window in standard deviations.  The paper's
#: Equation 6 uses exactly one standard deviation around the mean; on the
#: (normalised) synthetic features that saturates roughly a third of the
#: values and visibly hurts GM, so the reproduction defaults to three standard
#: deviations, which keeps saturation rare while preserving the power-of-two
#: structure of the ranges.  The deviation is recorded in EXPERIMENTS.md and
#: can be reverted by passing ``n_sigma=1.0``.
DEFAULT_RANGE_SIGMA: float = 3.0


def _exponent_for_bound(bound: float) -> int:
    """Smallest integer ``R`` with ``2^R >= bound`` (clamped)."""
    if bound <= 0.0 or not np.isfinite(bound):
        return _MIN_EXPONENT
    exponent = int(np.ceil(np.log2(bound)))
    return int(np.clip(exponent, _MIN_EXPONENT, _MAX_EXPONENT))


def feature_range_exponents(
    sv_matrix: np.ndarray, n_sigma: float = DEFAULT_RANGE_SIGMA
) -> np.ndarray:
    """Per-feature exponents ``R_j`` from the support-vector statistics.

    Parameters
    ----------
    sv_matrix:
        The support vectors as stored in the accelerator memory, shape
        ``(n_sv, n_features)``.
    n_sigma:
        Half-width of the admissible range in standard deviations around the
        per-feature mean (Equation 6 of the paper uses 1).

    Returns
    -------
    int ndarray of shape ``(n_features,)``.
    """
    sv_matrix = np.atleast_2d(np.asarray(sv_matrix, dtype=float))
    mean = sv_matrix.mean(axis=0)
    std = sv_matrix.std(axis=0, ddof=0)
    bounds = np.maximum(np.abs(mean - n_sigma * std), np.abs(mean + n_sigma * std))
    # Never saturate a stored support-vector value: the range must cover the
    # full extent of the SV set, otherwise the accelerator memory itself would
    # hold clipped vectors and the kernel values would be biased.
    bounds = np.maximum(bounds, np.abs(sv_matrix).max(axis=0))
    return np.array([_exponent_for_bound(b) for b in bounds], dtype=int)


def global_range_exponent(
    sv_matrix: np.ndarray, n_sigma: float = DEFAULT_RANGE_SIGMA
) -> int:
    """Single exponent shared by all features (homogeneous scaling baseline)."""
    return int(np.max(feature_range_exponents(sv_matrix, n_sigma)))


def coefficient_range_exponent(dual_coef: np.ndarray) -> int:
    """Exponent of the single power-of-two range covering all ``α_i y_i``.

    With the paper's unweighted C = 1 training the coefficients are bounded by
    construction in ``[-1, 1]`` and this returns 0; with class-weighted
    penalties (needed by the imbalanced seizure data) the bound grows to the
    positive-class penalty and the exponent follows it.
    """
    dual_coef = np.asarray(dual_coef, dtype=float)
    if dual_coef.size == 0:
        return 0
    return _exponent_for_bound(float(np.max(np.abs(dual_coef))))
