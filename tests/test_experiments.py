"""Integration tests for the experiment harness (tables / figures)."""

import pytest

from repro.experiments import (
    fig3_correlation,
    fig4_features,
    fig5_svbudget,
    fig6_bitwidth,
    fig7_combined,
    table1_kernels,
)
from repro.experiments.data import PROFILES, get_experiment_data


class TestExperimentData:
    def test_profiles_defined(self):
        assert set(PROFILES) == {"quick", "paper"}
        assert PROFILES["paper"].n_patients == 7
        assert PROFILES["paper"].n_sessions == 24
        assert PROFILES["paper"].total_seizures == 34

    def test_quick_profile_cached(self):
        a = get_experiment_data("quick")
        b = get_experiment_data("quick")
        assert a is b
        assert a.features.n_samples > 100

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_experiment_data("huge")


class TestTable1:
    def test_rows_for_each_kernel(self, feature_matrix):
        rows = table1_kernels.run(feature_matrix, kernels=("linear", "quadratic"))
        assert [r.kernel for r in rows] == ["linear", "quadratic"]
        for row in rows:
            assert 0.0 <= row.gm <= 1.0

    def test_format_table_mentions_all_kernels(self, feature_matrix):
        rows = table1_kernels.run(feature_matrix, kernels=("linear", "quadratic"))
        text = table1_kernels.format_table(rows)
        assert "linear" in text and "quadratic" in text

    def test_paper_reference_table_complete(self):
        assert set(table1_kernels.PAPER_TABLE1) == {"linear", "quadratic", "cubic", "gaussian"}


class TestFig3:
    def test_matrix_shape(self, feature_matrix):
        summary = fig3_correlation.run(feature_matrix)
        assert summary.matrix.shape == (53, 53)

    def test_psd_block_most_redundant(self, feature_matrix):
        summary = fig3_correlation.run(feature_matrix)
        assert summary.within_group["psd"] >= max(
            summary.within_group["hrv"], summary.within_group["ar"]
        ) - 0.2

    def test_format_summary_runs(self, feature_matrix):
        summary = fig3_correlation.run(feature_matrix)
        text = fig3_correlation.format_summary(summary)
        assert "Figure 3" in text


class TestFig4:
    def test_run_and_summary(self, feature_matrix):
        result = fig4_features.run(feature_matrix, feature_counts=(53, 23, 10), selected_count=23)
        assert len(result.points) == 3
        summary = result.selected_summary()
        assert summary["energy_reduction_pct"] > 0
        assert summary["area_reduction_pct"] > 0
        text = fig4_features.format_series(result)
        assert "Figure 4" in text


class TestFig5:
    def test_run_and_summary(self, feature_matrix):
        result = fig5_svbudget.run(feature_matrix, budgets=(60, 25), selected_budget=25)
        assert len(result.points) == 2
        summary = result.selected_summary()
        assert summary["energy_reduction_pct"] > 0
        text = fig5_svbudget.format_series(result)
        assert "Figure 5" in text


class TestFig6:
    def test_run_and_selected_point(self, feature_matrix):
        result = fig6_bitwidth.run(
            feature_matrix,
            feature_bit_options=(7, 9),
            coeff_bit_options=(15,),
            homogeneous_widths=(16,),
        )
        assert len(result.grid_points) == 2
        assert result.selected_feature_bits == 9
        summary = result.selected_summary()
        assert "gm_loss_pct_vs_float" in summary
        text = fig6_bitwidth.format_grid(result)
        assert "Figure 6" in text


class TestFig7:
    def test_run_and_headline(self, feature_matrix):
        from repro.core.combined import CombinedFlowConfig

        config = CombinedFlowConfig(n_features=30, sv_budget=30, uniform_reference_widths=(16,))
        result = fig7_combined.run(feature_matrix, config=config)
        headline = result.headline()
        assert headline["energy_gain_x"] > 3.0
        assert headline["area_gain_x"] > 3.0
        text = fig7_combined.format_bars(result)
        assert "Figure 7" in text
        assert len(result.normalised_rows) == 5
