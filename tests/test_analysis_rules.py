"""Rule-level tests of the invariant linter against the fixture corpus.

Each ``*_bad.py`` file under ``tests/analysis_fixtures/`` marks its expected
violations with ``# expect[rule-id]`` comments; the corpus test runs the full
default rule set over the file and requires the reported ``(line, rule_id)``
set to match the markers exactly — so a rule that fires on the wrong line,
or a new false positive anywhere in the corpus, fails loudly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.analysis import default_rules, run_paths, run_source
from repro.analysis.framework import (
    Finding,
    ModuleSource,
    iter_python_files,
    parse_suppressions,
)

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect\[([^\]]+)\]")

BAD_FIXTURES = (
    "int_purity_bad.py",
    "snapshot_incomplete_bad.py",
    "snapshot_registry_drift_bad.py",
    "wire_version_bad.py",
    "frame_kinds_bad.py",
    "determinism_bad.py",
    "repro/serving/async_safety_bad.py",
)


def _expected_findings(text: str) -> List[Tuple[int, str]]:
    """The ``(line, rule_id)`` pairs declared by ``# expect[...]`` markers."""
    expected = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                expected.append((lineno, rule_id.strip()))
    return sorted(expected)


# --------------------------------------------------------------------- corpus
@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_bad_fixture_fires_exactly_where_marked(fixture):
    path = FIXTURES / fixture
    expected = _expected_findings(path.read_text(encoding="utf-8"))
    assert expected, "fixture %s declares no # expect[...] markers" % fixture

    report = run_paths([path])
    actual = sorted((f.line, f.rule_id) for f in report.findings)
    assert actual == expected, "\n" + report.format()
    assert all(f.hint for f in report.findings), "every finding needs a fix hint"
    assert report.suppressed == 0


def test_every_rule_is_covered_by_the_corpus():
    """Each shipped rule id must fire somewhere in the fixture corpus."""
    report = run_paths([FIXTURES])
    fired = {f.rule_id for f in report.findings}
    shipped = {rule.rule_id for rule in default_rules()}
    assert shipped == {
        "int-purity",
        "snapshot-completeness",
        "async-safety",
        "wire-version",
        "determinism",
    }
    assert fired == shipped


def test_suppression_corpus_is_clean_but_counted():
    report = run_paths([FIXTURES / "suppressed_ok.py"])
    assert report.ok, "\n" + report.format()
    assert report.suppressed == 3


# ----------------------------------------------------------- rule edge cases
def test_async_rule_is_path_gated():
    """The same bad coroutine outside repro/serving/ raises no findings."""
    text = (FIXTURES / "repro" / "serving" / "async_safety_bad.py").read_text(
        encoding="utf-8"
    )
    gated = run_source(text, path="repro/serving/async_safety_bad.py")
    elsewhere = run_source(text, path="examples/async_demo.py")
    assert not gated.ok
    assert elsewhere.ok, "\n" + elsewhere.format()


def test_snapshot_registry_detects_stale_pin_after_bump():
    text = (
        "MONITOR_STATE_VERSION = 4\n"
        "\n"
        "class MonitorState:\n"
        "    version: int\n"
        "    patient_id: str\n"
        "    fs: float\n"
        "    detector: dict\n"
        "    windower: dict\n"
        "    sequence: int\n"
        "    n_windows: int\n"
        "    n_usable: int\n"
        "    pending: tuple\n"
        "    n_gaps: int\n"
        "    windows_lost: int\n"
        "    extra: int\n"
    )
    report = run_source(text, path="repro/serving/streaming.py")
    assert len(report.findings) == 1
    assert "still records version 3" in report.findings[0].message


def test_snapshot_registry_detects_bump_without_layout_change():
    text = (
        "MONITOR_STATE_VERSION = 4\n"
        "\n"
        "class MonitorState:\n"
        "    version: int\n"
        "    patient_id: str\n"
        "    fs: float\n"
        "    detector: dict\n"
        "    windower: dict\n"
        "    sequence: int\n"
        "    n_windows: int\n"
        "    n_usable: int\n"
        "    pending: tuple\n"
        "    n_gaps: int\n"
        "    windows_lost: int\n"
    )
    report = run_source(text, path="repro/serving/streaming.py")
    assert len(report.findings) == 1
    assert "pins MonitorState at version 3" in report.findings[0].message


def test_wire_rule_rejects_unregistered_version():
    report = run_source("WIRE_VERSION = 99\n", path="repro/serving/wire.py")
    assert len(report.findings) == 1
    assert "no pinned fingerprint" in report.findings[0].message


def test_wire_rule_requires_literal_version():
    report = run_source("BASE = 1\nWIRE_VERSION = BASE + 1\n", path="wire.py")
    assert len(report.findings) == 1
    assert "integer literal" in report.findings[0].message


def test_wire_rule_ignores_modules_without_wire_constants():
    report = run_source("x = 1\n", path="repro/serving/wire.py")
    assert report.ok


def test_int_purity_clock_reference_in_default_is_fine():
    """A ``clock=time.monotonic`` default is a reference, not a call."""
    text = (
        "import time\n"
        "from typing import Callable\n"
        "\n"
        "def run(clock: Callable[[], float] = time.monotonic) -> float:\n"
        "    return clock()\n"
    )
    report = run_source(text, path="repro/experiments/runner.py")
    assert report.ok, "\n" + report.format()


# ------------------------------------------------------------- framework bits
def test_parse_suppressions_table():
    table = parse_suppressions(
        "x = 1  # repro: allow[determinism]\n"
        "y = 2\n"
        "z = 3  # repro: allow[int-purity, async-safety]\n"
        "w = 4  # repro: allow[*]\n"
    )
    assert table == {
        1: frozenset({"determinism"}),
        3: frozenset({"int-purity", "async-safety"}),
        4: frozenset({"*"}),
    }


def test_suppression_covers_line_above():
    module = ModuleSource.from_text(
        "# repro: allow[determinism]\nimport time\n", path="m.py"
    )
    finding = Finding("determinism", "m.py", 2, 0, "msg")
    other = Finding("int-purity", "m.py", 2, 0, "msg")
    assert module.is_suppressed(finding)
    assert not module.is_suppressed(other)


def test_finding_format_includes_location_and_hint():
    text = Finding("wire-version", "a/b.py", 7, 4, "drift", hint="bump it").format()
    assert text.splitlines()[0] == "a/b.py:7:4 [wire-version] drift"
    assert "hint: bump it" in text


def test_iter_python_files_deduplicates(tmp_path):
    target = tmp_path / "pkg"
    target.mkdir()
    file_a = target / "a.py"
    file_a.write_text("x = 1\n")
    (target / "notes.txt").write_text("ignored\n")
    files = iter_python_files([target, file_a])
    assert files == [file_a]
    with pytest.raises(FileNotFoundError):
        iter_python_files([target / "notes.txt"])


def test_run_source_uses_default_rules():
    report = run_source("import random\n", path="anywhere.py")
    assert [f.rule_id for f in report.findings] == ["determinism"]
    assert report.files_checked == 1
