"""Support Vector Machine substrate (training and inference, from scratch).

scikit-learn is not available in the offline environment, so this package
re-implements everything the paper needs:

* :mod:`repro.svm.kernels` — linear, polynomial (quadratic / cubic) and
  Gaussian kernels, matching Table I of the paper.
* :mod:`repro.svm.scaling` — per-feature standardisation fitted on the
  training fold only.
* :mod:`repro.svm.smo` — a Sequential Minimal Optimization solver for the
  soft-margin C-SVC dual with per-class penalties (maximal-violating-pair
  working-set selection, full kernel caching).
* :mod:`repro.svm.model` — the trained-model container
  (:class:`~repro.svm.model.SVMModel`), decision function and prediction.
* :mod:`repro.svm.budget` — support-vector budgeting by iterative removal of
  the least significant SV (``‖α_i‖² · k(x_i, x_i)``) followed by re-training,
  the strategy of Section III of the paper.
"""

from repro.svm.kernels import (
    GaussianKernel,
    Kernel,
    LinearKernel,
    PolynomialKernel,
    kernel_from_name,
)
from repro.svm.scaling import StandardScaler
from repro.svm.smo import SMOParams, SMOResult, smo_solve
from repro.svm.model import SVMModel, SVMTrainParams, train_svm
from repro.svm.budget import BudgetParams, budget_training_set, train_budgeted_svm
from repro.svm.backend import FloatSVMBackend, project_features

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "GaussianKernel",
    "kernel_from_name",
    "StandardScaler",
    "SMOParams",
    "SMOResult",
    "smo_solve",
    "SVMModel",
    "SVMTrainParams",
    "train_svm",
    "BudgetParams",
    "budget_training_set",
    "train_budgeted_svm",
    "FloatSVMBackend",
    "project_features",
]
