"""Zero-cost source markers read by the static analyzer.

These decorators change nothing at runtime — they exist so that a guarantee
lives *next to the code that carries it* and the analyzer can find it from
the AST alone.  The module is dependency-free on purpose: marking a function
in :mod:`repro.quant` or :mod:`repro.hardware` must not pull any analyzer
machinery into the inference import path.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["int_only"]

F = TypeVar("F", bound=Callable[..., object])


def int_only(func: F) -> F:
    """Declare ``func`` part of the integer-only datapath.

    The ``int-purity`` rule of :mod:`repro.analysis` rejects float literals,
    true division, ``float(...)`` / float-dtype conversions and other
    float-producing constructs anywhere in the body of a function carrying
    this marker: the paper's bit-exact fixed-point guarantee means a float
    creeping into the quantized hot path is a correctness bug, not a style
    issue.  No runtime behaviour is attached.
    """
    return func
