"""Sequential Minimal Optimization solver for the soft-margin C-SVC dual.

The solver follows the structure of LIBSVM's working-set-selection algorithm
(maximal violating pair):

* dual problem:  minimise  ``f(α) = ½ αᵀQα − eᵀα``  subject to
  ``0 ≤ α_i ≤ C_i`` and ``Σ y_i α_i = 0``, with ``Q_ij = y_i y_j k(x_i, x_j)``;
* per-sample penalties ``C_i`` implement class weighting, which matters here
  because seizure windows are heavily outnumbered by background windows;
* at every iteration the pair of indices that most violates the KKT
  conditions is selected and the corresponding two-variable sub-problem is
  solved analytically; the gradient is maintained incrementally;
* convergence is declared when the maximal KKT violation falls below ``tol``.

The full kernel matrix is precomputed and cached: the reproduction's training
sets contain at most a few thousand windows, for which an ``n × n`` float64
Gram matrix is far cheaper than recomputing kernel rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SMOParams", "SMOResult", "smo_solve"]


@dataclass
class SMOParams:
    """Solver configuration."""

    #: Soft-margin penalty for the positive class.
    c_positive: float = 1.0
    #: Soft-margin penalty for the negative class.
    c_negative: float = 1.0
    #: KKT violation tolerance used as the stopping criterion.
    tol: float = 1e-3
    #: Hard cap on the number of SMO iterations (pair updates).
    max_iter: int = 200_000
    #: Numerical floor below which an α is treated as exactly zero.
    alpha_floor: float = 1e-8


@dataclass
class SMOResult:
    """Solution of the dual problem."""

    alpha: np.ndarray
    bias: float
    n_iterations: int
    converged: bool
    #: Final maximal KKT violation (m(α) − M(α)).
    final_violation: float

    def support_mask(self, floor: float = 1e-8) -> np.ndarray:
        """Boolean mask of the training samples with non-negligible α."""
        return self.alpha > floor


def _per_sample_c(y: np.ndarray, params: SMOParams) -> np.ndarray:
    c = np.where(y > 0, params.c_positive, params.c_negative)
    return c.astype(float)


def _select_working_pair(
    grad: np.ndarray,
    alpha: np.ndarray,
    y: np.ndarray,
    c: np.ndarray,
    tol: float,
) -> Tuple[int, int, float]:
    """Maximal-violating-pair selection (LIBSVM WSS1).

    Returns ``(i, j, violation)``; ``i`` or ``j`` is ``-1`` when the problem is
    already optimal within ``tol``.
    """
    # I_up: y=+1 & alpha<C  or  y=-1 & alpha>0
    up_mask = ((y > 0) & (alpha < c)) | ((y < 0) & (alpha > 0))
    # I_low: y=+1 & alpha>0  or  y=-1 & alpha<C
    low_mask = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < c))
    if not np.any(up_mask) or not np.any(low_mask):
        return -1, -1, 0.0

    score = -y * grad
    up_scores = np.where(up_mask, score, -np.inf)
    low_scores = np.where(low_mask, score, np.inf)
    i = int(np.argmax(up_scores))
    j = int(np.argmin(low_scores))
    violation = float(up_scores[i] - low_scores[j])
    if violation <= tol:
        return -1, -1, violation
    return i, j, violation


def _compute_bias(grad: np.ndarray, alpha: np.ndarray, y: np.ndarray, c: np.ndarray) -> float:
    """Bias from the KKT conditions of the final iterate.

    Free support vectors (0 < α < C) pin the bias exactly; when none exists the
    midpoint of the admissible interval is used, as in LIBSVM.
    """
    free = (alpha > 1e-8) & (alpha < c - 1e-8)
    score = -y * grad
    if np.any(free):
        return float(np.mean(score[free]))
    up_mask = ((y > 0) & (alpha < c)) | ((y < 0) & (alpha > 0))
    low_mask = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < c))
    hi = np.max(score[up_mask]) if np.any(up_mask) else 0.0
    lo = np.min(score[low_mask]) if np.any(low_mask) else 0.0
    return float((hi + lo) / 2.0)


def smo_solve(
    kernel_matrix: np.ndarray,
    y: np.ndarray,
    params: Optional[SMOParams] = None,
) -> SMOResult:
    """Solve the C-SVC dual for a precomputed kernel matrix.

    Parameters
    ----------
    kernel_matrix:
        The ``(n, n)`` Gram matrix ``k(x_i, x_j)`` of the training samples.
    y:
        Labels in ``{-1, +1}``.
    params:
        Solver configuration (per-class penalties, tolerance, iteration cap).

    Returns
    -------
    :class:`SMOResult` with the dual variables and the bias term of
    Equation 1 of the paper.
    """
    if params is None:
        params = SMOParams()
    K = np.asarray(kernel_matrix, dtype=float)
    y = np.asarray(y, dtype=float)
    n = y.shape[0]
    if K.shape != (n, n):
        raise ValueError("kernel_matrix must be square and match len(y)")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be -1 or +1")
    if not (np.any(y > 0) and np.any(y < 0)):
        raise ValueError("both classes must be present in the training set")

    c = _per_sample_c(y, params)
    Q = (y[:, None] * y[None, :]) * K

    alpha = np.zeros(n)
    grad = -np.ones(n)  # gradient of ½αᵀQα − eᵀα at α = 0

    n_iter = 0
    converged = False
    violation = np.inf
    while n_iter < params.max_iter:
        i, j, violation = _select_working_pair(grad, alpha, y, c, params.tol)
        if i < 0:
            converged = True
            break

        # Analytic solution of the two-variable sub-problem (see Fan, Chen,
        # Lin, "Working set selection using second order information").
        quad = Q[i, i] + Q[j, j] - 2.0 * y[i] * y[j] * Q[i, j]
        quad = max(quad, 1e-12)
        if y[i] != y[j]:
            delta = (-grad[i] - grad[j]) / quad
            diff = alpha[i] - alpha[j]
            alpha_i_new = alpha[i] + delta
            alpha_j_new = alpha[j] + delta
            if diff > 0:
                if alpha_j_new < 0:
                    alpha_j_new = 0.0
                    alpha_i_new = diff
            else:
                if alpha_i_new < 0:
                    alpha_i_new = 0.0
                    alpha_j_new = -diff
            if diff > c[i] - c[j]:
                if alpha_i_new > c[i]:
                    alpha_i_new = c[i]
                    alpha_j_new = c[i] - diff
            else:
                if alpha_j_new > c[j]:
                    alpha_j_new = c[j]
                    alpha_i_new = c[j] + diff
        else:
            delta = (grad[i] - grad[j]) / quad
            summ = alpha[i] + alpha[j]
            alpha_i_new = alpha[i] - delta
            alpha_j_new = alpha[j] + delta
            if summ > c[i]:
                if alpha_i_new > c[i]:
                    alpha_i_new = c[i]
                    alpha_j_new = summ - c[i]
            else:
                if alpha_j_new < 0:
                    alpha_j_new = 0.0
                    alpha_i_new = summ
            if summ > c[j]:
                if alpha_j_new > c[j]:
                    alpha_j_new = c[j]
                    alpha_i_new = summ - c[j]
            else:
                if alpha_i_new < 0:
                    alpha_i_new = 0.0
                    alpha_j_new = summ

        delta_i = alpha_i_new - alpha[i]
        delta_j = alpha_j_new - alpha[j]
        if abs(delta_i) < 1e-14 and abs(delta_j) < 1e-14:
            # Numerically stuck on this pair: declare convergence at the
            # current violation level rather than spinning.
            converged = violation <= max(params.tol * 10.0, 1e-2)
            break
        alpha[i] = alpha_i_new
        alpha[j] = alpha_j_new
        grad += Q[:, i] * delta_i + Q[:, j] * delta_j
        n_iter += 1

    alpha[alpha < params.alpha_floor] = 0.0
    bias = _compute_bias(grad, alpha, y, c)
    return SMOResult(
        alpha=alpha,
        bias=bias,
        n_iterations=n_iter,
        converged=converged,
        final_violation=float(violation if np.isfinite(violation) else 0.0),
    )
