"""``snapshot-completeness``: every bit of mutable state survives migration.

:class:`~repro.serving.streaming.MonitorState` is the unit of live
resharding — PR 5's zero-loss migration guarantee only holds while the
snapshot really is *complete*.  A new ``self._x`` added to a streaming
class's ``__init__`` but forgotten in ``snapshot()`` produces a monitor that
revives subtly wrong after its next migration, and nothing crashes.  This
rule makes that a commit-time error, twice over:

1. **Completeness** — in any class defining both ``snapshot()`` and
   ``from_snapshot()``, every attribute assigned on ``self`` in
   ``__init__`` must be read somewhere in ``snapshot()``, unless it is
   listed in the class's ``_SNAPSHOT_EXCLUDE`` tuple (the documented,
   reviewable way to say "derived/stateless, recomputed on revive").

2. **Version pinning** — the layouts of the committed snapshot value
   classes are fingerprinted in :data:`DEFAULT_SNAPSHOT_REGISTRY`.  Changing
   a registered class's field set without bumping the matching
   ``*_STATE_VERSION`` constant (and consciously re-pinning the registry) is
   an error: an old pickle must never be silently misread by a new build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.framework import Finding, ModuleSource, Rule

__all__ = ["SnapshotSpec", "DEFAULT_SNAPSHOT_REGISTRY", "SnapshotCompletenessRule"]


@dataclass(frozen=True)
class SnapshotSpec:
    """Pinned layout of one snapshot value class."""

    #: Name of the guarding version constant (module-level int).
    version_const: str
    #: The version the pinned field set belongs to.
    version: int
    #: The exact, ordered field names of the class at that version.
    fields: Tuple[str, ...]


#: The committed snapshot layouts of the serving stack.  Editing any of the
#: pinned classes' fields requires bumping the guarding ``*_STATE_VERSION``
#: constant *and* re-pinning the entry here — two deliberate edits for one
#: incompatible layout change.  ``PeakDetectorState`` and ``WindowerState``
#: are nested inside ``MonitorState`` pickles, so they are guarded by
#: ``MONITOR_STATE_VERSION`` too.
DEFAULT_SNAPSHOT_REGISTRY: Dict[str, SnapshotSpec] = {
    # Version 3: the lossy transport mode added the gap counters
    # ``MonitorState.n_gaps`` / ``MonitorState.windows_lost`` and the
    # adaptive-level seed anchor ``PeakDetectorState.seed_from`` (where the
    # post-gap level re-seed window starts).  The nested states share the
    # guard constant, so all three entries are re-pinned at the bumped
    # version (``WindowerState``'s fields are unchanged since version 2).
    "MonitorState": SnapshotSpec(
        version_const="MONITOR_STATE_VERSION",
        version=3,
        fields=(
            "version",
            "patient_id",
            "fs",
            "detector",
            "windower",
            "sequence",
            "n_windows",
            "n_usable",
            "pending",
            "n_gaps",
            "windows_lost",
        ),
    ),
    "PeakDetectorState": SnapshotSpec(
        version_const="MONITOR_STATE_VERSION",
        version=3,
        fields=(
            "fs",
            "params",
            "buffer",
            "buffer_start",
            "n_seen",
            "finalized",
            "level",
            "last_peak",
            "seed_from",
        ),
    ),
    "WindowerState": SnapshotSpec(
        version_const="MONITOR_STATE_VERSION",
        version=3,
        fields=(
            "params",
            "beat_times_s",
            "r_amplitudes_mv",
            "window_start_s",
            "clock_s",
            "base_beat_index",
        ),
    ),
}


def _self_attribute_writes(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Dict[str, int]:
    """``self.<attr>`` names assigned anywhere in ``func`` → first line."""
    writes: Dict[str, int] = {}
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                writes.setdefault(target.attr, target.lineno)
    return writes


def _self_attribute_reads(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Set[str]:
    """``self.<attr>`` names referenced anywhere in ``func``."""
    reads: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return reads


def _string_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """Literal tuple/list of strings, or ``None`` when not that shape."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int literal>`` assignments."""
    constants: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                constants[target.id] = value.value
    return constants


def _dataclass_fields(cls: ast.ClassDef) -> Tuple[str, ...]:
    """Annotated field names of a (data)class body, in declaration order."""
    fields = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields.append(node.target.id)
    return tuple(fields)


class SnapshotCompletenessRule(Rule):
    """Init-state must reach ``snapshot()``; pinned layouts must stay pinned."""

    rule_id = "snapshot-completeness"
    description = (
        "every __init__-assigned attribute of a snapshot-capable class is "
        "captured (or explicitly excluded), and pinned snapshot layouts only "
        "change together with their *_STATE_VERSION"
    )
    invariant = (
        "zero-loss live migration: MonitorState snapshots are complete and "
        "version-guarded (ROADMAP: resharding is invisible in output)"
    )

    exclude_attr = "_SNAPSHOT_EXCLUDE"

    def __init__(self, registry: Optional[Dict[str, SnapshotSpec]] = None) -> None:
        self.registry = DEFAULT_SNAPSHOT_REGISTRY if registry is None else registry

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        constants = _module_int_constants(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_completeness(module, node))
                findings.extend(self._check_registry(module, node, constants))
        return findings

    # ---------------------------------------------------------- completeness
    def _check_completeness(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        init = methods.get("__init__")
        snapshot = methods.get("snapshot")
        if init is None or snapshot is None or "from_snapshot" not in methods:
            return
        excluded: Tuple[str, ...] = ()
        for item in cls.body:
            if (
                isinstance(item, ast.Assign)
                and len(item.targets) == 1
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id == self.exclude_attr
            ):
                literal = _string_tuple(item.value)
                if literal is None:
                    yield self.finding(
                        module,
                        item,
                        "%s.%s must be a literal tuple of attribute-name strings"
                        % (cls.name, self.exclude_attr),
                        "spell the excluded attribute names out as string literals",
                    )
                else:
                    excluded = literal
        captured = _self_attribute_reads(snapshot)
        for attr, lineno in sorted(_self_attribute_writes(init).items(), key=lambda kv: kv[1]):
            if attr in captured or attr in excluded:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=lineno,
                col=0,
                message=(
                    "%s.__init__ assigns self.%s but %s.snapshot() never captures it"
                    % (cls.name, attr, cls.name)
                ),
                hint=(
                    "add the attribute to the snapshot state (and bump the state "
                    "version), or list it in %s.%s with a comment explaining why "
                    "it is derived/stateless" % (cls.name, self.exclude_attr)
                ),
            )

    # --------------------------------------------------------- version pinning
    def _check_registry(
        self, module: ModuleSource, cls: ast.ClassDef, constants: Dict[str, int]
    ) -> Iterable[Finding]:
        spec = self.registry.get(cls.name)
        if spec is None:
            return
        fields = _dataclass_fields(cls)
        declared_version = constants.get(spec.version_const)
        if fields != spec.fields:
            if declared_version is None or declared_version == spec.version:
                yield self.finding(
                    module,
                    cls,
                    "%s's field set changed (now %s, pinned %s) without bumping %s"
                    % (cls.name, list(fields), list(spec.fields), spec.version_const),
                    "bump %s and re-pin the new layout in "
                    "repro.analysis.rules.snapshots.DEFAULT_SNAPSHOT_REGISTRY"
                    % spec.version_const,
                )
            else:
                yield self.finding(
                    module,
                    cls,
                    "%s's layout changed and %s was bumped to %d, but the pinned "
                    "registry still records version %d"
                    % (cls.name, spec.version_const, declared_version, spec.version),
                    "re-pin the new (version, fields) in "
                    "repro.analysis.rules.snapshots.DEFAULT_SNAPSHOT_REGISTRY",
                )
        elif declared_version is not None and declared_version != spec.version:
            yield self.finding(
                module,
                cls,
                "%s is %d but the snapshot registry pins %s at version %d"
                % (spec.version_const, declared_version, cls.name, spec.version),
                "a version bump without a layout change is suspicious; update "
                "DEFAULT_SNAPSHOT_REGISTRY if the bump is intentional",
            )
