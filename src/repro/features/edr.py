"""ECG-Derived Respiration (EDR) series.

Two of the paper's four feature groups (the AR coefficients, features 16–24,
and the PSD band powers, features 25–53) are computed from the ECG-derived
respiration signal.  Amplitude-based EDR exploits the fact that chest
impedance and heart orientation change with lung volume, modulating the
projection of the R wave on the measurement lead; the sequence of R-wave
amplitudes, resampled onto a uniform grid, is therefore a surrogate of the
respiration waveform.

Two entry points are provided:

* :func:`edr_series_from_amplitudes` — from per-beat R amplitudes (the fast
  path used by the cohort-level feature extractor), and
* :func:`edr_series_from_ecg` — from a raw ECG trace, running the R-peak
  detector first (the full signal path, exercised by the end-to-end tests and
  the ``wearable_monitor`` example).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dsp.filters import detrend, moving_average
from repro.dsp.peaks import PanTompkinsParams, detect_r_peaks
from repro.dsp.resample import resample_beats_to_uniform

__all__ = ["EDR_FS", "edr_series_from_amplitudes", "edr_series_from_ecg"]

#: Uniform sampling rate of the EDR series (Hz).  4 Hz comfortably covers the
#: respiratory band (0.1 – 0.6 Hz).
EDR_FS: float = 4.0


def edr_series_from_amplitudes(
    beat_times_s: np.ndarray,
    r_amplitudes: np.ndarray,
    fs: float = EDR_FS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a uniformly sampled EDR series from per-beat R-wave amplitudes.

    The amplitude sequence is interpolated onto a uniform grid, detrended and
    lightly smoothed (3-sample moving average) to suppress beat-detection
    jitter while preserving the respiratory oscillation.

    Returns
    -------
    (t, edr): uniform time grid and the EDR waveform (zero-mean).
    """
    beat_times_s = np.asarray(beat_times_s, dtype=float)
    r_amplitudes = np.asarray(r_amplitudes, dtype=float)
    if beat_times_s.size < 4:
        raise ValueError("need at least four beats to derive an EDR series")
    t, series = resample_beats_to_uniform(beat_times_s, r_amplitudes, fs=fs)
    series = detrend(series)
    series = moving_average(series, 3)
    return t, series


def edr_series_from_ecg(
    ecg: np.ndarray,
    fs_ecg: float,
    fs_edr: float = EDR_FS,
    detector_params: PanTompkinsParams | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the EDR series directly from a raw ECG trace.

    Runs the Pan–Tompkins-style detector, reads the ECG value at each detected
    R peak as the beat amplitude and then proceeds as
    :func:`edr_series_from_amplitudes`.

    Returns
    -------
    (t, edr): uniform time grid and the EDR waveform (zero-mean).
    """
    ecg = np.asarray(ecg, dtype=float)
    peak_indices, peak_times = detect_r_peaks(ecg, fs_ecg, detector_params)
    if peak_indices.size < 4:
        raise ValueError("too few R peaks detected to derive an EDR series")
    amplitudes = ecg[peak_indices]
    return edr_series_from_amplitudes(peak_times, amplitudes, fs=fs_edr)
