"""Welch power spectral density estimation and band-power helpers.

Features 25–53 of the paper's feature set are obtained from the power spectral
analysis of the ECG-derived respiration series; the HRV features also use the
classical LF/HF band powers of the RR tachogram.  This module implements the
Welch method (segment averaging of windowed periodograms) without relying on
``scipy.signal`` so that the numerical behaviour is fully under the
repository's control.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["welch_psd", "band_power", "band_powers"]

#: ``np.trapz`` was renamed to ``np.trapezoid`` in NumPy 2.0; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def welch_psd(
    x: np.ndarray,
    fs: float,
    segment_length: int = 256,
    overlap: float = 0.5,
    detrend_segments: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD estimate of a uniformly sampled signal.

    Parameters
    ----------
    x:
        Input signal (1-D).
    fs:
        Sampling frequency in Hz.
    segment_length:
        Length of each segment; shortened automatically if the signal is
        shorter than one segment.
    overlap:
        Fractional overlap between consecutive segments (0 ≤ overlap < 1).
    detrend_segments:
        Remove the mean of every segment before windowing (recommended for
        physiological series whose mean dwarfs the oscillatory content).

    Returns
    -------
    (freqs, psd):
        One-sided frequency grid and PSD (power per Hz).
    """
    x = np.asarray(x, dtype=float)
    if x.size < 8:
        raise ValueError("signal too short for PSD estimation")
    if not (0.0 <= overlap < 1.0):
        raise ValueError("overlap must lie in [0, 1)")
    segment_length = int(min(segment_length, x.size))
    step = max(1, int(segment_length * (1.0 - overlap)))

    window = np.hanning(segment_length)
    window_power = np.sum(window**2)

    psd_acc = None
    count = 0
    for start in range(0, x.size - segment_length + 1, step):
        segment = x[start : start + segment_length]
        if detrend_segments:
            segment = segment - segment.mean()
        spectrum = np.fft.rfft(segment * window)
        periodogram = (np.abs(spectrum) ** 2) / (fs * window_power)
        # One-sided correction (all bins except DC and Nyquist count twice).
        if segment_length % 2 == 0:
            periodogram[1:-1] *= 2.0
        else:
            periodogram[1:] *= 2.0
        psd_acc = periodogram if psd_acc is None else psd_acc + periodogram
        count += 1

    if psd_acc is None or count == 0:
        raise ValueError("could not form any Welch segment")
    freqs = np.fft.rfftfreq(segment_length, d=1.0 / fs)
    return freqs, psd_acc / count


def band_power(freqs: np.ndarray, psd: np.ndarray, low_hz: float, high_hz: float) -> float:
    """Integrated power of a PSD between two frequencies (trapezoidal rule)."""
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        return 0.0
    return float(_trapezoid(psd[mask], freqs[mask]))


def band_powers(
    freqs: np.ndarray, psd: np.ndarray, edges: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """Integrated power for a sequence of ``(low_hz, high_hz)`` bands."""
    return np.array([band_power(freqs, psd, lo, hi) for lo, hi in edges])
