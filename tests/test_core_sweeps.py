"""Integration tests for the SV-budget sweep, bitwidth search and combined flow.

These tests exercise the paper's optimisation flows end-to-end on the small
test cohort, with trimmed sweep axes so they stay fast.
"""

import pytest

from repro.core.bitwidth_search import bitwidth_grid_search, homogeneous_width_search
from repro.core.combined import CombinedFlowConfig, combined_optimisation_flow
from repro.core.sv_budgeting import sv_budget_sweep


class TestSvBudgetSweep:
    @pytest.fixture(scope="class")
    def sweep(self, feature_matrix):
        return sv_budget_sweep(feature_matrix, budgets=[60, 25, 10])

    def test_one_point_per_budget(self, sweep):
        assert [int(p.extras["budget"]) for p in sweep] == [60, 25, 10]

    def test_sv_counts_respect_budgets(self, sweep):
        for point in sweep:
            assert point.n_support_vectors <= point.extras["budget"] + 1e-9

    def test_energy_and_area_decrease_with_budget(self, sweep):
        energies = [p.energy_nj for p in sweep]
        areas = [p.area_mm2 for p in sweep]
        assert energies[0] >= energies[-1]
        assert areas[0] >= areas[-1]

    def test_gm_still_reasonable_at_moderate_budget(self, sweep):
        assert sweep[1].gm > sweep[0].gm - 0.2


class TestBitwidthSearch:
    @pytest.fixture(scope="class")
    def grid(self, feature_matrix):
        return bitwidth_grid_search(
            feature_matrix, feature_bit_options=[7, 9], coeff_bit_options=[13, 15]
        )

    def test_grid_size(self, grid):
        assert len(grid) == 4

    def test_grid_extras_record_coordinates(self, grid):
        coords = {(int(p.extras["feature_bits"]), int(p.extras["coeff_bits"])) for p in grid}
        assert coords == {(7, 13), (7, 15), (9, 13), (9, 15)}

    def test_energy_grows_with_bits(self, grid):
        by_coords = {(int(p.extras["feature_bits"]), int(p.extras["coeff_bits"])): p for p in grid}
        assert by_coords[(9, 15)].energy_nj > by_coords[(7, 13)].energy_nj

    def test_gm_in_unit_interval(self, grid):
        for point in grid:
            assert 0.0 <= point.gm <= 1.0

    def test_homogeneous_search_runs(self, feature_matrix):
        points = homogeneous_width_search(feature_matrix, widths=[12, 24])
        assert [int(p.extras["uniform_width"]) for p in points] == [12, 24]
        assert points[1].gm >= points[0].gm - 0.05  # more bits never much worse


class TestCombinedFlow:
    @pytest.fixture(scope="class")
    def flow(self, feature_matrix):
        config = CombinedFlowConfig(
            n_features=30,
            sv_budget=30,
            feature_bits=9,
            coeff_bits=15,
            uniform_reference_widths=(16,),
        )
        return combined_optimisation_flow(feature_matrix, config=config)

    def test_four_stages_present(self, flow):
        names = [p.name for p in flow.stages]
        assert names == [
            "baseline-64bit",
            "feature-reduction",
            "feature+sv-reduction",
            "feature+sv+bit-reduction",
        ]

    def test_costs_monotonically_decrease_along_stages(self, flow):
        energies = [p.energy_nj for p in flow.stages]
        areas = [p.area_mm2 for p in flow.stages]
        assert all(a >= b for a, b in zip(energies, energies[1:]))
        assert all(a >= b for a, b in zip(areas, areas[1:]))

    def test_headline_gains_positive(self, flow):
        gains = flow.headline_gains()
        assert gains["energy_gain"] > 3.0
        assert gains["area_gain"] > 3.0
        # GM loss should stay moderate (paper: 3.2% on the clinical data).
        assert gains["gm_loss"] < 0.2

    def test_normalised_rows_reference_baseline(self, flow):
        rows = flow.normalised_rows()
        assert rows[0]["energy"] == pytest.approx(1.0)
        assert rows[0]["area"] == pytest.approx(1.0)
        for row in rows[1:4]:
            assert row["energy"] <= 1.0 + 1e-9
            assert row["area"] <= 1.0 + 1e-9

    def test_uniform_reference_present(self, flow):
        assert len(flow.uniform_references) == 1
        assert int(flow.uniform_references[0].extras["uniform_width"]) == 16
