"""Combined optimisation flow (Figure 7 of the paper).

The three approximation techniques compose naturally because they act on
orthogonal resources: the feature count (MAC1 workload + memory words per SV),
the SV count (memory depth + kernel evaluations) and the word widths
(arithmetic and memory width).  The paper applies them in sequence —

  1. reduce the feature set from 53 to 30 features,
  2. budget the support-vector set to 68 vectors,
  3. quantise features to 9 bits and coefficients to 15 bits

— and reports GM / energy / area after every stage, normalised to the 64-bit,
unreduced baseline, together with two reference pipelines (32-bit and 16-bit)
that only apply homogeneous scaling.  The combined gains are 12.5× energy and
16× area for a GM loss below 3.2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.bitwidth_search import homogeneous_width_search
from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.evaluation import (
    budgeted_svm_factory,
    float_svm_factory,
    leave_one_session_out,
    quantized_svm_factory,
)
from repro.core.feature_selection import correlation_removal_order, select_features
from repro.features.extractor import FeatureMatrix
from repro.quant.quantized_model import QuantizationConfig
from repro.svm.kernels import Kernel
from repro.svm.model import SVMTrainParams

__all__ = ["CombinedFlowConfig", "CombinedFlowResult", "combined_optimisation_flow"]


@dataclass
class CombinedFlowConfig:
    """Design choices of the combined flow (the paper's Figure 7 settings)."""

    #: Feature-set size after correlation-driven reduction.
    n_features: int = 30
    #: Support-vector budget.
    sv_budget: int = 68
    #: Feature word width of the final fixed-point pipeline.
    feature_bits: int = 9
    #: Coefficient word width of the final fixed-point pipeline.
    coeff_bits: int = 15
    #: LSBs discarded after the dot product / the squarer.
    truncate_after_dot: int = 10
    truncate_after_square: int = 10
    #: Word width of the reference (un-optimised) implementation.
    baseline_bits: int = 64
    #: Homogeneous-scaling reference pipelines to evaluate alongside.
    uniform_reference_widths: Sequence[int] = (32, 16)
    #: Removal schedule of the SV budgeting loop.
    chunk_fraction: float = 0.25


@dataclass
class CombinedFlowResult:
    """Design points of every stage of the combined flow."""

    baseline: DesignPoint
    feature_reduced: DesignPoint
    feature_and_sv_reduced: DesignPoint
    fully_optimised: DesignPoint
    uniform_references: List[DesignPoint] = field(default_factory=list)

    @property
    def stages(self) -> List[DesignPoint]:
        """The four sequential stages, baseline first."""
        return [
            self.baseline,
            self.feature_reduced,
            self.feature_and_sv_reduced,
            self.fully_optimised,
        ]

    def normalised_rows(self) -> List[Dict[str, float]]:
        """GM / energy / area of every point normalised to the baseline."""
        rows: List[Dict[str, float]] = []
        for point in self.stages + self.uniform_references:
            row = {"name": point.name}
            row.update(point.normalised_to(self.baseline))
            rows.append(row)
        return rows

    def headline_gains(self) -> Dict[str, float]:
        """The paper's headline numbers: ×-gains and absolute GM loss."""
        return {
            "energy_gain": self.fully_optimised.energy_gain_over(self.baseline),
            "area_gain": self.fully_optimised.area_gain_over(self.baseline),
            "gm_loss": self.baseline.gm - self.fully_optimised.gm,
        }


def combined_optimisation_flow(
    features: FeatureMatrix,
    config: Optional[CombinedFlowConfig] = None,
    kernel: Optional[Kernel] = None,
    train_params: Optional[SVMTrainParams] = None,
) -> CombinedFlowResult:
    """Run the full optimisation sequence and the reference pipelines.

    Parameters
    ----------
    features:
        The full 53-feature matrix of the cohort.
    config:
        Stage parameters; defaults follow the paper (30 features, 68 SVs,
        9-bit features, 15-bit coefficients, 64-bit baseline).
    kernel, train_params:
        Training configuration shared by every stage.

    Returns
    -------
    :class:`CombinedFlowResult`
    """
    if config is None:
        config = CombinedFlowConfig()

    # Stage 0 — 64-bit baseline on the full feature set, unbudgeted.
    baseline_cv = leave_one_session_out(features, float_svm_factory(kernel, train_params))
    baseline_hw = hardware_cost(
        n_features=features.n_features,
        n_support_vectors=baseline_cv.mean_support_vectors,
        feature_bits=config.baseline_bits,
        coeff_bits=config.baseline_bits,
        per_feature_scaling=False,
        datapath_cap_bits=config.baseline_bits,
    )
    baseline = DesignPoint.from_evaluation("baseline-64bit", baseline_cv, baseline_hw)

    # Stage 1 — feature reduction.
    removal_order = correlation_removal_order(features.X)
    kept = select_features(features.X, config.n_features, removal_order)
    reduced = features.select_features(kept)
    stage1_cv = leave_one_session_out(reduced, float_svm_factory(kernel, train_params))
    stage1_hw = hardware_cost(
        n_features=reduced.n_features,
        n_support_vectors=stage1_cv.mean_support_vectors,
        feature_bits=config.baseline_bits,
        coeff_bits=config.baseline_bits,
        per_feature_scaling=False,
        datapath_cap_bits=config.baseline_bits,
    )
    stage1 = DesignPoint.from_evaluation("feature-reduction", stage1_cv, stage1_hw)

    # Stage 2 — feature reduction + SV budgeting.
    stage2_cv = leave_one_session_out(
        reduced,
        budgeted_svm_factory(
            budget=config.sv_budget,
            kernel=kernel,
            train_params=train_params,
            chunk_fraction=config.chunk_fraction,
        ),
    )
    stage2_hw = hardware_cost(
        n_features=reduced.n_features,
        n_support_vectors=stage2_cv.mean_support_vectors,
        feature_bits=config.baseline_bits,
        coeff_bits=config.baseline_bits,
        per_feature_scaling=False,
        datapath_cap_bits=config.baseline_bits,
    )
    stage2 = DesignPoint.from_evaluation("feature+sv-reduction", stage2_cv, stage2_hw)

    # Stage 3 — feature reduction + SV budgeting + bitwidth reduction.
    quantization = QuantizationConfig(
        feature_bits=config.feature_bits,
        coeff_bits=config.coeff_bits,
        truncate_after_dot=config.truncate_after_dot,
        truncate_after_square=config.truncate_after_square,
        per_feature_scaling=True,
    )
    stage3_cv = leave_one_session_out(
        reduced,
        quantized_svm_factory(
            quantization,
            budget=config.sv_budget,
            kernel=kernel,
            train_params=train_params,
            chunk_fraction=config.chunk_fraction,
        ),
    )
    stage3_hw = hardware_cost(
        n_features=reduced.n_features,
        n_support_vectors=stage3_cv.mean_support_vectors,
        feature_bits=config.feature_bits,
        coeff_bits=config.coeff_bits,
        per_feature_scaling=True,
        truncate_after_dot=config.truncate_after_dot,
        truncate_after_square=config.truncate_after_square,
    )
    stage3 = DesignPoint.from_evaluation("feature+sv+bit-reduction", stage3_cv, stage3_hw)

    # Reference pipelines: homogeneous scaling at fixed uniform widths, on the
    # full feature set and unbudgeted SV set (the paper's "more limited
    # strategy where two global scale parameters are the only optimisation").
    references = homogeneous_width_search(
        features,
        config.uniform_reference_widths,
        kernel=kernel,
        train_params=train_params,
        truncate_after_dot=config.truncate_after_dot,
        truncate_after_square=config.truncate_after_square,
    )

    return CombinedFlowResult(
        baseline=baseline,
        feature_reduced=stage1,
        feature_and_sv_reduced=stage2,
        fully_optimised=stage3,
        uniform_references=references,
    )
