#!/usr/bin/env python3
"""Regenerate the golden-trace regression fixture.

Produces, next to this script:

* ``golden_trace.npz``     — a deterministic single-patient raw ECG trace
  (float32 samples + sampling frequency + the fixed replay chunk size);
* ``golden_model.npz``     — the trained quadratic SVM as plain arrays
  (support vectors, signed dual coefficients, bias, scaler moments), so the
  replay classifier is reconstructed *without* re-training — the fixture
  must not depend on SMO convergence reproducing bit-identically forever;
* ``golden_decisions.json``— the expected :class:`WindowDecision` list of
  the paper's 9/15-bit fixed-point detector over the trace.

``tests/test_golden_trace.py`` replays the committed trace through the
monitor, the sharded fleet (with a mid-stream reshard) and the TCP gateway
and compares against the committed JSON — any drift in the DSP, windowing,
feature extraction or serving layers fails loudly.  Regenerate (and review
the diff like code!) only when an intentional numerical change lands:

    PYTHONPATH=src python tests/data/make_golden.py
"""

import json
import pathlib

import numpy as np

from repro.features.extractor import extract_cohort_features
from repro.serving import StreamingMonitor, classify_windows
from repro.signals.dataset import CohortParams, generate_cohort
from repro.signals.ecg_model import ECGWaveformParams, synthesize_ecg
from repro.signals.windows import WindowingParams
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import SVMTrainParams, train_svm

HERE = pathlib.Path(__file__).parent

#: Replay constants — mirrored by tests/test_golden_trace.py.
FS = 64.0
CHUNK_SAMPLES = 4096
PATIENT_ID = 17
WINDOWING = WindowingParams(window_s=60.0, step_s=60.0, min_beats=40)


def load_golden_detector():
    """The committed classifier: arrays → SVMModel → 9/15-bit QuantizedSVM.

    Mirrored by ``tests/test_golden_trace.py`` (which must stay standalone).
    """
    from repro.quant import QuantizationConfig, QuantizedSVM
    from repro.svm.model import SVMModel
    from repro.svm.scaling import StandardScaler

    with np.load(HERE / "golden_model.npz") as data:
        scaler = StandardScaler()
        scaler.mean_ = data["scaler_mean"].copy()
        scaler.scale_ = data["scaler_scale"].copy()
        model = SVMModel(
            support_vectors=data["support_vectors"].copy(),
            dual_coef=data["dual_coef"].copy(),
            bias=float(data["bias"]),
            kernel=PolynomialKernel(degree=2),
            alpha=data["alpha"].copy(),
            sv_labels=data["sv_labels"].copy(),
            scaler=scaler,
        )
    return QuantizedSVM(model, QuantizationConfig(feature_bits=9, coeff_bits=15))


def main() -> None:
    # ------------------------------------------------ deterministic ECG trace
    trace_params = CohortParams(
        n_patients=1,
        n_sessions=1,
        session_duration_s=900.0,
        total_seizures=1,
        seed=517,
        ecg_params=ECGWaveformParams(fs=FS),
    )
    recording = generate_cohort(trace_params).recordings[0]
    ecg = synthesize_ecg(
        recording.beat_times_s,
        recording.duration_s,
        recording.respiration,
        np.random.default_rng(518),
        params=ECGWaveformParams(fs=FS),
    )
    np.savez_compressed(
        HERE / "golden_trace.npz",
        ecg_mv=ecg.ecg_mv.astype(np.float32),
        fs=np.float64(FS),
        chunk_samples=np.int64(CHUNK_SAMPLES),
        patient_id=np.int64(PATIENT_ID),
    )

    # ------------------------------------------------------- frozen classifier
    # Trained once, committed as arrays: the replay never re-trains.
    cohort = generate_cohort(
        CohortParams(
            n_patients=3,
            n_sessions=6,
            session_duration_s=1500.0,
            total_seizures=8,
            seed=7,
        )
    )
    features = extract_cohort_features(cohort)
    model = train_svm(
        features.X,
        features.y,
        kernel=PolynomialKernel(degree=2),
        params=SVMTrainParams(),
    )
    np.savez_compressed(
        HERE / "golden_model.npz",
        support_vectors=model.support_vectors,
        dual_coef=model.dual_coef,
        bias=np.float64(model.bias),
        alpha=model.alpha,
        sv_labels=model.sv_labels,
        scaler_mean=model.scaler.mean_,
        scaler_scale=model.scaler.scale_,
    )

    # ----------------------------------------------------- expected decisions
    detector = load_golden_detector()
    monitor = StreamingMonitor(PATIENT_ID, FS, windowing=WINDOWING)
    chunks = [
        ecg.ecg_mv[lo : lo + CHUNK_SAMPLES].astype(np.float32).astype(np.float64)
        for lo in range(0, ecg.ecg_mv.size, CHUNK_SAMPLES)
    ]
    pending = []
    for seq, chunk in enumerate(chunks):
        pending.extend(monitor.push(chunk, seq=seq))
    pending.extend(monitor.finish())
    decisions = classify_windows(detector, pending)
    payload = [
        dict(
            patient_id=d.patient_id,
            start_s=d.start_s,
            end_s=d.end_s,
            n_beats=d.n_beats,
            usable=d.usable,
            score=d.score,
            alarm=d.alarm,
        )
        for d in decisions
    ]
    with open(HERE / "golden_decisions.json", "w") as fh:
        json.dump(payload, fh, indent=1)
    print(
        "golden fixture written: %d samples, %d chunks, %d decisions (%d usable)"
        % (ecg.ecg_mv.size, len(chunks), len(decisions), sum(d.usable for d in decisions))
    )


if __name__ == "__main__":
    main()
