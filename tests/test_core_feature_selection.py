"""Unit tests for correlation-based feature selection and the Figure 4 sweep."""

import numpy as np
import pytest

from repro.core.design_point import DesignPoint, hardware_cost
from repro.core.feature_selection import (
    correlation_matrix,
    correlation_removal_order,
    feature_reduction_sweep,
    select_features,
)
from repro.features.catalog import FeatureGroup, group_indices


class TestCorrelationMatrix:
    def test_diagonal_is_one(self, feature_matrix):
        corr = correlation_matrix(feature_matrix.X)
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetric_and_bounded(self, feature_matrix):
        corr = correlation_matrix(feature_matrix.X)
        assert np.allclose(corr, corr.T)
        assert np.all(corr <= 1.0 + 1e-9) and np.all(corr >= -1.0 - 1e-9)

    def test_duplicate_columns_fully_correlated(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100)
        X = np.column_stack([x, x, rng.standard_normal(100)])
        corr = correlation_matrix(X)
        assert corr[0, 1] == pytest.approx(1.0)
        assert abs(corr[0, 2]) < 0.4

    def test_constant_column_treated_as_redundant(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        corr = correlation_matrix(X)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_psd_block_highly_correlated(self, feature_matrix):
        """The PSD features should form the bright redundant block of Figure 3."""
        corr = np.abs(correlation_matrix(feature_matrix.X))
        psd = group_indices(FeatureGroup.PSD)
        hrv = group_indices(FeatureGroup.HRV)
        psd_block = corr[np.ix_(psd, psd)]
        cross_block = corr[np.ix_(psd, hrv)]
        psd_mean = (psd_block.sum() - len(psd)) / (len(psd) ** 2 - len(psd))
        assert psd_mean > cross_block.mean()

    def test_requires_two_rows(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.zeros((1, 5)))


class TestRemovalOrder:
    def test_is_permutation(self, feature_matrix):
        order = correlation_removal_order(feature_matrix.X)
        assert sorted(order) == list(range(feature_matrix.n_features))

    def test_duplicate_column_removed_first(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(200)
        X = np.column_stack(
            [
                x,
                x + 1e-9 * rng.standard_normal(200),
                rng.standard_normal(200),
                rng.standard_normal(200),
            ]
        )
        order = correlation_removal_order(X)
        assert order[0] in (0, 1)

    def test_select_features_keeps_requested_count(self, feature_matrix):
        kept = select_features(feature_matrix.X, 23)
        assert len(kept) == 23
        assert kept == sorted(kept)

    def test_select_features_nested_subsets(self, feature_matrix):
        order = correlation_removal_order(feature_matrix.X)
        kept_30 = set(select_features(feature_matrix.X, 30, order))
        kept_15 = set(select_features(feature_matrix.X, 15, order))
        assert kept_15.issubset(kept_30)

    def test_select_features_bounds(self, feature_matrix):
        with pytest.raises(ValueError):
            select_features(feature_matrix.X, 0)
        with pytest.raises(ValueError):
            select_features(feature_matrix.X, feature_matrix.n_features + 1)

    def test_select_features_rejects_bad_order(self, feature_matrix):
        with pytest.raises(ValueError):
            select_features(feature_matrix.X, 10, removal_order=[0, 1, 2])

    def test_psd_features_pruned_before_hrv(self, feature_matrix):
        """Redundant PSD bands should be removed earlier than the HRV features."""
        order = correlation_removal_order(feature_matrix.X)
        psd = set(group_indices(FeatureGroup.PSD))
        hrv = set(group_indices(FeatureGroup.HRV))
        first_removed = order[:15]
        psd_removed = sum(1 for idx in first_removed if idx in psd)
        hrv_removed = sum(1 for idx in first_removed if idx in hrv)
        assert psd_removed > hrv_removed


class TestFeatureReductionSweep:
    def test_sweep_produces_one_point_per_count(self, feature_matrix):
        points = feature_reduction_sweep(feature_matrix, [53, 23, 10])
        assert [p.n_features for p in points] == [53, 23, 10]

    def test_energy_and_area_decrease_with_fewer_features(self, feature_matrix):
        points = feature_reduction_sweep(feature_matrix, [53, 23])
        assert points[1].energy_nj < points[0].energy_nj
        assert points[1].area_mm2 < points[0].area_mm2

    def test_gm_degrades_gracefully_at_23_features(self, feature_matrix):
        points = feature_reduction_sweep(feature_matrix, [53, 23])
        assert points[1].gm > points[0].gm - 0.15

    def test_custom_selection_function(self, feature_matrix):
        def take_first(X, n_keep):
            return list(range(n_keep))

        points = feature_reduction_sweep(feature_matrix, [10], selection_fn=take_first)
        assert points[0].extras["kept_indices"] == [float(i) for i in range(10)]


class TestDesignPointHelpers:
    def test_hardware_cost_reasonable(self):
        report = hardware_cost(53, 120, 64, 64, per_feature_scaling=False, datapath_cap_bits=64)
        assert report.energy_nj > 0 and report.area_mm2 > 0

    def test_gain_ratios(self):
        baseline = DesignPoint("base", 53, 120, 64, 64, 0.9, 0.9, 0.9, 2000.0, 0.4)
        optimised = DesignPoint("opt", 30, 68, 9, 15, 0.88, 0.88, 0.88, 160.0, 0.025)
        assert optimised.energy_gain_over(baseline) == pytest.approx(12.5)
        assert optimised.area_gain_over(baseline) == pytest.approx(16.0)
        assert baseline.gm - optimised.gm == pytest.approx(0.02)

    def test_normalised_to_baseline(self):
        baseline = DesignPoint("base", 53, 120, 64, 64, 0.9, 0.9, 0.9, 2000.0, 0.4)
        point = DesignPoint("p", 53, 120, 32, 32, 0.9, 0.9, 0.9, 1000.0, 0.2)
        normalised = point.normalised_to(baseline)
        assert normalised["energy"] == pytest.approx(0.5)
        assert normalised["area"] == pytest.approx(0.5)
        assert normalised["gm"] == pytest.approx(1.0)

    def test_as_row_contains_extras(self):
        point = DesignPoint("p", 10, 10, 8, 8, 0.5, 0.5, 0.5, 1.0, 0.1, extras={"budget": 3.0})
        row = point.as_row()
        assert row["budget"] == 3.0
        assert row["name"] == "p"
