"""Benchmark: regenerate Figure 3 (feature correlation matrix).

Paper reference: the 53×53 Pearson matrix shows that most PSD features, some
HRV and some Lorenz features are highly mutually correlated (bright blocks),
which is the redundancy exploited by the feature-reduction step.
"""

import numpy as np

from repro.experiments import fig3_correlation

from benchmarks.conftest import run_once


def test_bench_fig3_correlation_matrix(benchmark, experiment_data):
    summary = run_once(benchmark, fig3_correlation.run, experiment_data.features)

    print()
    print(fig3_correlation.format_summary(summary))

    assert summary.matrix.shape == (53, 53)
    assert np.allclose(np.diag(summary.matrix), 1.0)
    # The PSD block must be the dominant redundant block, as in the paper.
    assert summary.within_group["psd"] > summary.between_groups[("hrv", "psd")]
    # PSD bands should figure prominently among the most redundant features.
    psd_share = sum(1 for name in summary.most_redundant if name.startswith("edr_psd"))
    assert psd_share >= 3
