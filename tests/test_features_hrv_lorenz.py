"""Unit tests for the HRV and Lorenz-plot feature groups."""

import numpy as np
import pytest

from repro.features.hrv import HRV_FEATURE_NAMES, hrv_features
from repro.features.lorenz import LORENZ_FEATURE_NAMES, lorenz_features, poincare_sd


def _rr_from_hr(hr_bpm, n=200, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    rr = 60.0 / hr_bpm * (1.0 + jitter * rng.standard_normal(n))
    times = np.concatenate(([0.0], np.cumsum(rr)))
    return rr, times


class TestHRVFeatures:
    def test_vector_length_and_names(self):
        rr, times = _rr_from_hr(70.0, jitter=0.02)
        vec = hrv_features(rr, times)
        assert vec.shape == (len(HRV_FEATURE_NAMES),) == (8,)

    def test_mean_rr_and_hr(self):
        rr, times = _rr_from_hr(60.0, jitter=0.0)
        vec = hrv_features(rr, times)
        assert vec[0] == pytest.approx(1.0)      # mean RR = 1 s
        assert vec[4] == pytest.approx(60.0)     # mean HR = 60 bpm

    def test_constant_rr_has_zero_variability(self):
        rr, times = _rr_from_hr(75.0, jitter=0.0)
        vec = hrv_features(rr, times)
        assert vec[1] == pytest.approx(0.0)      # SDNN
        assert vec[2] == pytest.approx(0.0)      # RMSSD
        assert vec[3] == pytest.approx(0.0)      # pNN50

    def test_jitter_increases_variability(self):
        rr_lo, t_lo = _rr_from_hr(70.0, jitter=0.01, seed=1)
        rr_hi, t_hi = _rr_from_hr(70.0, jitter=0.08, seed=1)
        assert hrv_features(rr_hi, t_hi)[2] > hrv_features(rr_lo, t_lo)[2]

    def test_pnn50_definition(self):
        # Alternating RR of 0.8 / 0.9 s: every successive difference is 100 ms.
        rr = np.tile([0.8, 0.9], 50)
        times = np.concatenate(([0.0], np.cumsum(rr)))
        vec = hrv_features(rr, times)
        assert vec[3] == pytest.approx(1.0)

    def test_max_hr_reflects_shortest_rr(self):
        rr = np.full(100, 0.8)
        rr[50] = 0.5
        times = np.concatenate(([0.0], np.cumsum(rr)))
        vec = hrv_features(rr, times)
        assert vec[5] == pytest.approx(120.0)

    def test_requires_minimum_beats(self):
        with pytest.raises(ValueError):
            hrv_features(np.array([0.8, 0.8]), np.array([0.0, 0.8, 1.6]))

    def test_all_finite(self):
        rr, times = _rr_from_hr(80.0, jitter=0.05, seed=2)
        assert np.all(np.isfinite(hrv_features(rr, times)))


class TestLorenzFeatures:
    def test_vector_length(self):
        rr, _ = _rr_from_hr(70.0, jitter=0.03)
        assert lorenz_features(rr).shape == (len(LORENZ_FEATURE_NAMES),) == (7,)

    def test_sd1_sd2_for_uncorrelated_jitter(self):
        rng = np.random.default_rng(3)
        rr = 0.8 + 0.05 * rng.standard_normal(5000)
        sd1, sd2 = poincare_sd(rr)
        # For white jitter SD1 ≈ SD2 ≈ the sample standard deviation.
        assert sd1 == pytest.approx(0.05, rel=0.1)
        assert sd2 == pytest.approx(0.05, rel=0.1)

    def test_slow_oscillation_gives_sd2_greater_than_sd1(self):
        t = np.arange(2000)
        rr = 0.8 + 0.1 * np.sin(2 * np.pi * t / 200.0)
        sd1, sd2 = poincare_sd(rr)
        assert sd2 > 3 * sd1

    def test_alternans_gives_sd1_greater_than_sd2(self):
        rr = np.tile([0.75, 0.85], 1000)
        sd1, sd2 = poincare_sd(rr)
        assert sd1 > 3 * sd2

    def test_csi_is_sd2_over_sd1(self):
        rng = np.random.default_rng(4)
        rr = 0.8 + 0.03 * rng.standard_normal(1000)
        vec = lorenz_features(rr)
        sd1, sd2, ratio, area, csi, cvi, mcsi = vec
        assert csi == pytest.approx(sd2 / sd1, rel=1e-6)
        assert ratio == pytest.approx(sd1 / sd2, rel=1e-6)
        assert area == pytest.approx(np.pi * sd1 * sd2, rel=1e-6)
        assert mcsi == pytest.approx(sd2**2 / sd1, rel=1e-6)

    def test_units_are_milliseconds(self):
        rng = np.random.default_rng(5)
        rr = 0.8 + 0.02 * rng.standard_normal(1000)
        vec = lorenz_features(rr)
        # SD1/SD2 of a 20 ms jitter should be of order 20 (ms), not 0.02 (s).
        assert 5.0 < vec[0] < 60.0

    def test_requires_minimum_beats(self):
        with pytest.raises(ValueError):
            lorenz_features(np.array([0.8, 0.8]))

    def test_all_finite_for_constant_series(self):
        vec = lorenz_features(np.full(50, 0.8))
        assert np.all(np.isfinite(vec))
