"""Unit tests for the feature catalogue and the cohort-level extractor."""

import numpy as np
import pytest

from repro.features.catalog import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    N_FEATURES,
    FeatureGroup,
    feature_group_of,
    group_indices,
    paper_feature_number,
)
from repro.features.extractor import (
    FeatureExtractor,
    FeatureMatrix,
    extract_cohort_features,
)
from repro.signals.windows import extract_windows


class TestCatalog:
    def test_total_feature_count_is_53(self):
        assert N_FEATURES == 53
        assert len(FEATURE_NAMES) == 53

    def test_group_sizes_match_paper(self):
        assert len(group_indices(FeatureGroup.HRV)) == 8
        assert len(group_indices(FeatureGroup.LORENZ)) == 7
        assert len(group_indices(FeatureGroup.AR)) == 9
        assert len(group_indices(FeatureGroup.PSD)) == 29

    def test_groups_partition_all_columns(self):
        all_indices = sorted(sum((group_indices(g) for g in FEATURE_GROUPS), []))
        assert all_indices == list(range(53))

    def test_feature_group_of(self):
        assert feature_group_of(0) == FeatureGroup.HRV
        assert feature_group_of(8) == FeatureGroup.LORENZ
        assert feature_group_of(15) == FeatureGroup.AR
        assert feature_group_of(24) == FeatureGroup.PSD
        assert feature_group_of(52) == FeatureGroup.PSD

    def test_feature_group_of_out_of_range(self):
        with pytest.raises(IndexError):
            feature_group_of(53)

    def test_paper_feature_number_is_one_based(self):
        assert paper_feature_number(0) == 1
        assert paper_feature_number(52) == 53
        with pytest.raises(IndexError):
            paper_feature_number(-1)

    def test_names_unique(self):
        assert len(set(FEATURE_NAMES)) == 53


class TestFeatureMatrix:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            FeatureMatrix(
                X=np.zeros((4, 53)),
                y=np.ones(3),
                session_ids=np.zeros(4),
                patient_ids=np.zeros(4),
            )

    def test_select_features_subsets_columns(self, feature_matrix):
        reduced = feature_matrix.select_features([0, 5, 10])
        assert reduced.X.shape == (feature_matrix.n_samples, 3)
        assert reduced.feature_names == [feature_matrix.feature_names[i] for i in (0, 5, 10)]
        assert np.allclose(reduced.X[:, 1], feature_matrix.X[:, 5])

    def test_split_session_partitions_rows(self, feature_matrix):
        session = int(feature_matrix.sessions[0])
        train, test = feature_matrix.split_session(session)
        assert train.n_samples + test.n_samples == feature_matrix.n_samples
        assert np.all(test.session_ids == session)
        assert not np.any(train.session_ids == session)

    def test_split_unknown_session_raises(self, feature_matrix):
        with pytest.raises(KeyError):
            feature_matrix.split_session(10**6)

    def test_class_counts(self, feature_matrix):
        assert feature_matrix.n_positive + feature_matrix.n_negative == feature_matrix.n_samples
        assert feature_matrix.n_positive > 0
        assert feature_matrix.n_negative > 0


class TestExtractor:
    def test_window_vector_length(self, small_cohort):
        extractor = FeatureExtractor()
        recording = small_cohort.recordings[0]
        window = extract_windows(recording)[0]
        vec = extractor.extract_window(recording, window)
        assert vec.shape == (53,)
        assert np.all(np.isfinite(vec))

    def test_recording_matrix_consistent(self, small_cohort):
        extractor = FeatureExtractor()
        recording = small_cohort.recordings[0]
        X, y, windows = extractor.extract_recording(recording)
        assert X.shape[0] == y.shape[0] == len(windows)
        assert X.shape[1] == 53

    def test_cohort_matrix_covers_all_sessions(self, small_cohort, feature_matrix):
        assert set(feature_matrix.sessions) == {r.session_id for r in small_cohort.recordings}

    def test_cohort_matrix_has_both_classes(self, feature_matrix):
        assert feature_matrix.n_positive > 0
        assert feature_matrix.n_negative > 0

    def test_mean_hr_feature_higher_in_seizure_windows(self, feature_matrix):
        # Feature 4 is the mean heart rate; ictal tachycardia should raise its
        # class-conditional mean even in the presence of confounders.
        hr = feature_matrix.X[:, 4]
        assert hr[feature_matrix.y == 1].mean() > hr[feature_matrix.y == -1].mean()

    def test_extraction_deterministic(self, small_cohort):
        a = extract_cohort_features(small_cohort)
        b = extract_cohort_features(small_cohort)
        assert np.allclose(a.X, b.X)
        assert np.array_equal(a.y, b.y)
