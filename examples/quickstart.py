#!/usr/bin/env python3
"""Quickstart: train the seizure detector and size its hardware accelerator.

This walks through the full pipeline of the paper on a small synthetic cohort:

1. generate the cohort (patients, sessions, seizures, confounders),
2. extract the 53-feature vectors of every three-minute window,
3. train and evaluate the quadratic-kernel SVM with leave-one-session-out
   cross-validation (sensitivity / specificity / GM, as in Table I),
4. convert the detector to the 9-bit / 15-bit fixed-point pipeline, and
5. estimate the area and energy of the corresponding hardware accelerator.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    float_svm_factory,
    hardware_cost,
    leave_one_session_out,
    quantized_svm_factory,
)
from repro.experiments.data import get_experiment_data
from repro.quant import QuantizationConfig


def main() -> None:
    # ------------------------------------------------------------------ data
    data = get_experiment_data("quick")
    features = data.features
    print("Synthetic cohort:", data.cohort.summary())
    print(
        "Feature matrix: %d windows x %d features (%d seizure windows)"
        % (features.n_samples, features.n_features, features.n_positive)
    )

    # -------------------------------------------------- float (reference) SVM
    float_cv = leave_one_session_out(features, float_svm_factory())
    print("\nFloating-point quadratic SVM (leave-one-session-out):")
    print(
        "  sensitivity %.1f%%   specificity %.1f%%   GM %.1f%%   avg support vectors %.0f"
        % (
            100 * float_cv.sensitivity,
            100 * float_cv.specificity,
            100 * float_cv.gm,
            float_cv.mean_support_vectors,
        )
    )

    # -------------------------------------------------- fixed-point pipeline
    quantization = QuantizationConfig(feature_bits=9, coeff_bits=15)
    quant_cv = leave_one_session_out(features, quantized_svm_factory(quantization))
    print("\nFixed-point pipeline (9-bit features, 15-bit coefficients):")
    print(
        "  sensitivity %.1f%%   specificity %.1f%%   GM %.1f%%   (GM loss %.1f%% vs float)"
        % (
            100 * quant_cv.sensitivity,
            100 * quant_cv.specificity,
            100 * quant_cv.gm,
            100 * (float_cv.gm - quant_cv.gm),
        )
    )

    # ------------------------------------------------------ hardware costs
    baseline_hw = hardware_cost(
        n_features=features.n_features,
        n_support_vectors=float_cv.mean_support_vectors,
        feature_bits=64,
        coeff_bits=64,
        per_feature_scaling=False,
        datapath_cap_bits=64,
    )
    optimised_hw = hardware_cost(
        n_features=features.n_features,
        n_support_vectors=quant_cv.mean_support_vectors,
        feature_bits=9,
        coeff_bits=15,
        per_feature_scaling=True,
    )
    print("\nAccelerator cost (analytical 40 nm model):")
    print(
        "  64-bit baseline : %7.0f nJ / classification, %6.3f mm2"
        % (baseline_hw.energy_nj, baseline_hw.area_mm2)
    )
    print(
        "  9/15-bit design : %7.0f nJ / classification, %6.3f mm2"
        % (optimised_hw.energy_nj, optimised_hw.area_mm2)
    )
    print(
        "  -> %.1fx energy and %.1fx area reduction from bitwidth tailoring alone"
        % (
            baseline_hw.energy_nj / optimised_hw.energy_nj,
            baseline_hw.area_mm2 / optimised_hw.area_mm2,
        )
    )


if __name__ == "__main__":
    main()
