"""Figure 6 — GM / energy / area over the (Dbits, Abits) grid.

The paper explores feature word widths (Dbits) between 7 and 11 bits and
coefficient widths (Abits) between 13 and 17 bits, with the ten least
significant bits discarded after the dot product and after the squarer and
per-feature power-of-two ranges.  It selects Dbits = 9 / Abits = 15 (red
circle in the figure), which loses about 1% GM compared to floating point,
and reports that a homogeneously scaled pipeline needs 64 bits to match that
GM, costing 2.4× more energy and 6.2× more area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bitwidth_search import bitwidth_grid_search, homogeneous_width_search
from repro.core.design_point import DesignPoint
from repro.features.extractor import FeatureMatrix
from repro.svm.model import SVMTrainParams

__all__ = [
    "PAPER_REFERENCE",
    "DEFAULT_FEATURE_BITS",
    "DEFAULT_COEFF_BITS",
    "Fig6Result",
    "run",
    "format_grid",
]

#: Reference behaviour reported by the paper.
PAPER_REFERENCE: Dict[str, float] = {
    "selected_feature_bits": 9,
    "selected_coeff_bits": 15,
    "gm_loss_pct_vs_float": 1.0,
    "homogeneous_width_for_same_gm": 64,
    "homogeneous_energy_overhead_x": 2.4,
    "homogeneous_area_overhead_x": 6.2,
}

#: Grid axes of the paper's Figure 6.
DEFAULT_FEATURE_BITS: Sequence[int] = (7, 8, 9, 10, 11)
DEFAULT_COEFF_BITS: Sequence[int] = (13, 14, 15, 16, 17)


@dataclass
class Fig6Result:
    """The Figure 6 grid plus the selected point and the homogeneous baseline."""

    grid_points: List[DesignPoint]
    homogeneous_points: List[DesignPoint]
    float_gm: float
    selected_feature_bits: int
    selected_coeff_bits: int

    @property
    def selected(self) -> DesignPoint:
        for point in self.grid_points:
            if (
                int(point.extras.get("feature_bits", -1)) == self.selected_feature_bits
                and int(point.extras.get("coeff_bits", -1)) == self.selected_coeff_bits
            ):
                return point
        raise KeyError("selected grid point not present")

    def selected_summary(self) -> Dict[str, float]:
        selected = self.selected
        summary = {
            "selected_feature_bits": float(self.selected_feature_bits),
            "selected_coeff_bits": float(self.selected_coeff_bits),
            "gm_loss_pct_vs_float": 100.0 * (self.float_gm - selected.gm),
            "energy_nj": selected.energy_nj,
            "area_mm2": selected.area_mm2,
        }
        matching = self.matching_homogeneous_point()
        if matching is not None:
            summary["homogeneous_width_for_same_gm"] = float(
                matching.extras.get("uniform_width", matching.feature_bits)
            )
            summary["homogeneous_energy_overhead_x"] = matching.energy_nj / selected.energy_nj
            summary["homogeneous_area_overhead_x"] = matching.area_mm2 / selected.area_mm2
        return summary

    def matching_homogeneous_point(self, tolerance: float = 0.01) -> Optional[DesignPoint]:
        """Smallest homogeneous width whose GM is within ``tolerance`` of the
        selected per-feature design (None when no evaluated width reaches it)."""
        target = self.selected.gm - tolerance
        candidates = [p for p in self.homogeneous_points if p.gm >= target]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.extras.get("uniform_width", p.feature_bits))


def run(
    features: FeatureMatrix,
    feature_bit_options: Sequence[int] = DEFAULT_FEATURE_BITS,
    coeff_bit_options: Sequence[int] = DEFAULT_COEFF_BITS,
    homogeneous_widths: Sequence[int] = (8, 12, 16, 24, 32, 48, 64),
    selected_feature_bits: int = 9,
    selected_coeff_bits: int = 15,
    float_gm: Optional[float] = None,
    train_params: Optional[SVMTrainParams] = None,
    budget: Optional[int] = None,
) -> Fig6Result:
    """Run the Figure 6 grid search and the homogeneous-scaling baseline.

    ``float_gm`` is the GM of the floating-point reference; when omitted it is
    approximated by the best GM observed on the grid (the paper's grid
    contains near-float points at the largest widths).
    """
    grid_points = bitwidth_grid_search(
        features,
        feature_bit_options,
        coeff_bit_options,
        budget=budget,
        train_params=train_params,
    )
    homogeneous_points = homogeneous_width_search(
        features,
        homogeneous_widths,
        budget=budget,
        train_params=train_params,
    )
    if float_gm is None:
        float_gm = max(point.gm for point in grid_points)
    if selected_feature_bits in feature_bit_options:
        sel_d = selected_feature_bits
    else:
        sel_d = list(feature_bit_options)[len(feature_bit_options) // 2]
    if selected_coeff_bits in coeff_bit_options:
        sel_a = selected_coeff_bits
    else:
        sel_a = list(coeff_bit_options)[len(coeff_bit_options) // 2]
    return Fig6Result(
        grid_points=grid_points,
        homogeneous_points=homogeneous_points,
        float_gm=float(float_gm),
        selected_feature_bits=sel_d,
        selected_coeff_bits=sel_a,
    )


def format_grid(result: Fig6Result) -> str:
    """Text rendering of the (Dbits, Abits) surfaces."""
    d_values = sorted({int(p.extras["feature_bits"]) for p in result.grid_points})
    a_values = sorted({int(p.extras["coeff_bits"]) for p in result.grid_points})
    by_coords = {
        (int(p.extras["feature_bits"]), int(p.extras["coeff_bits"])): p for p in result.grid_points
    }

    def grid_block(title: str, getter) -> List[str]:
        lines = [title, "%8s " % "D\\A" + " ".join("%9d" % a for a in a_values)]
        for d in d_values:
            cells = " ".join("%9.3f" % getter(by_coords[(d, a)]) for a in a_values)
            lines.append("%8d %s" % (d, cells))
        return lines

    lines: List[str] = ["Figure 6: bitwidth exploration (per-feature scaling)"]
    lines += grid_block("GM [%]:", lambda p: 100.0 * p.gm)
    lines += grid_block("Energy [nJ]:", lambda p: p.energy_nj)
    lines += grid_block("Area [mm2]:", lambda p: p.area_mm2)
    lines.append("")
    lines.append("Homogeneous (global scaling) baseline:")
    lines.append("%8s %8s %12s %10s" % ("width", "GM %", "energy [nJ]", "area [mm2]"))
    for point in result.homogeneous_points:
        lines.append(
            "%8d %8.1f %12.1f %10.4f"
            % (
                int(point.extras.get("uniform_width", point.feature_bits)),
                100.0 * point.gm,
                point.energy_nj,
                point.area_mm2,
            )
        )
    summary = result.selected_summary()
    lines.append(
        "selected point: Dbits=%d, Abits=%d, GM loss vs float %.1f%% (paper: ~1%%)"
        % (
            result.selected_feature_bits,
            result.selected_coeff_bits,
            summary["gm_loss_pct_vs_float"],
        )
    )
    return "\n".join(lines)
