"""Synthetic single-lead ECG waveform synthesis.

The inference accelerator studied in the paper sits *after* a feature
extraction stage that starts from the raw ECG (Figure 1 of the paper).  For a
faithful reproduction of the whole chain the repository therefore also
contains an ECG waveform synthesiser and an R-peak detector
(:mod:`repro.dsp.peaks`): given the beat times produced by the RR model, the
synthesiser renders a morphologically plausible ECG trace by summing
Gaussian-shaped P, Q, R, S and T waves for every cardiac cycle, adds baseline
wander driven by respiration and measurement noise, and modulates the R-wave
amplitude with the respiration waveform — the mechanism exploited by
amplitude-based ECG-Derived Respiration (EDR).

The full-rate waveform is optional in the cohort generator (beat times and
R amplitudes are sufficient for feature extraction) but it is exercised by the
end-to-end tests and by the ``wearable_monitor`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.signals.respiration import RespirationSignal

__all__ = ["ECGWaveformParams", "ECGSignal", "synthesize_ecg", "modulated_r_amplitudes"]


#: Default morphology: per-wave (time offset relative to the R peak as a
#: fraction of the current RR interval, amplitude in millivolts, width in
#: seconds).
_DEFAULT_MORPHOLOGY: Dict[str, Tuple[float, float, float]] = {
    "P": (-0.22, 0.12, 0.025),
    "Q": (-0.035, -0.12, 0.010),
    "R": (0.0, 1.00, 0.012),
    "S": (0.035, -0.22, 0.012),
    "T": (0.30, 0.28, 0.045),
}


@dataclass
class ECGWaveformParams:
    """Parameters of the ECG waveform synthesiser."""

    #: Output sampling frequency in Hz.  128 Hz is typical of wearable ECG.
    fs: float = 128.0
    #: Gaussian morphology of each wave: offset (fraction of RR), amplitude
    #: (mV) and width (s).
    morphology: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: dict(_DEFAULT_MORPHOLOGY)
    )
    #: Peak-to-peak amplitude of the respiration-driven baseline wander (mV).
    baseline_wander_mv: float = 0.08
    #: Standard deviation of the additive measurement noise (mV).
    noise_mv: float = 0.02
    #: Fractional modulation of the R-wave amplitude by respiration (EDR).
    edr_modulation: float = 0.12
    #: Additional random beat-to-beat amplitude jitter (fraction).
    amplitude_jitter: float = 0.01


@dataclass
class ECGSignal:
    """A synthetic single-lead ECG trace."""

    t: np.ndarray
    ecg_mv: np.ndarray
    fs: float
    beat_times_s: np.ndarray
    r_amplitudes_mv: np.ndarray

    @property
    def duration_s(self) -> float:
        return float(self.t[-1]) if self.t.size else 0.0


def modulated_r_amplitudes(
    beat_times_s: np.ndarray,
    respiration: RespirationSignal,
    rng: np.random.Generator,
    base_amplitude_mv: float = 1.0,
    edr_modulation: float = 0.12,
    amplitude_jitter: float = 0.01,
) -> np.ndarray:
    """R-wave amplitude for every beat, modulated by respiration.

    Amplitude-based EDR works because chest impedance changes with lung volume
    modulate the projection of the cardiac electrical axis on the measurement
    lead.  We reproduce that coupling directly: the R amplitude follows the
    respiration waveform (scaled by ``edr_modulation``) plus a small random
    jitter.  This is the signal from which :mod:`repro.features.edr` rebuilds
    the respiration surrogate.
    """
    resp = respiration.value_at(beat_times_s)
    jitter = amplitude_jitter * rng.standard_normal(beat_times_s.shape[0])
    return base_amplitude_mv * (1.0 + edr_modulation * resp + jitter)


def synthesize_ecg(
    beat_times_s: np.ndarray,
    duration_s: float,
    respiration: RespirationSignal,
    rng: np.random.Generator,
    params: ECGWaveformParams | None = None,
) -> ECGSignal:
    """Render a synthetic ECG trace from beat times and respiration.

    Parameters
    ----------
    beat_times_s:
        R-peak instants produced by the RR model, in seconds.
    duration_s:
        Total length of the rendered trace.
    respiration:
        The session respiration process (drives baseline wander and EDR).
    rng:
        NumPy random generator.
    params:
        Waveform parameters.

    Returns
    -------
    :class:`ECGSignal` with the rendered trace and the per-beat R amplitudes.
    """
    if params is None:
        params = ECGWaveformParams()
    fs = params.fs
    n = int(np.ceil(duration_s * fs)) + 1
    t = np.arange(n) / fs
    ecg = np.zeros(n)

    beat_times = np.asarray(beat_times_s, dtype=float)
    if beat_times.size < 2:
        raise ValueError("at least two beats are required to synthesise an ECG")

    r_amplitudes = modulated_r_amplitudes(
        beat_times,
        respiration,
        rng,
        base_amplitude_mv=params.morphology["R"][1],
        edr_modulation=params.edr_modulation,
        amplitude_jitter=params.amplitude_jitter,
    )

    # Per-beat RR interval used to scale the wave offsets (last beat reuses
    # the previous interval).
    rr = np.diff(beat_times)
    rr_per_beat = np.concatenate((rr, rr[-1:]))

    for beat_idx, (r_time, beat_rr, r_amp) in enumerate(zip(beat_times, rr_per_beat, r_amplitudes)):
        for wave, (offset_frac, amplitude, width) in params.morphology.items():
            if wave == "R":
                amplitude = r_amp
            centre = r_time + offset_frac * beat_rr
            # Only render the +/- 4 sigma neighbourhood of the wave.
            lo = max(0, int((centre - 4 * width) * fs))
            hi = min(n, int((centre + 4 * width) * fs) + 1)
            if hi <= lo:
                continue
            local_t = t[lo:hi]
            ecg[lo:hi] += amplitude * np.exp(-0.5 * ((local_t - centre) / width) ** 2)

    # Baseline wander coherent with respiration, plus measurement noise.
    ecg += params.baseline_wander_mv * respiration.value_at(t)
    ecg += params.noise_mv * rng.standard_normal(n)

    return ECGSignal(
        t=t,
        ecg_mv=ecg,
        fs=fs,
        beat_times_s=beat_times,
        r_amplitudes_mv=r_amplitudes,
    )
