"""Horizontally sharded monitor fleets with consistent patient routing.

One :class:`~repro.serving.fleet.MonitorFleet` is one worker's worth of
patients.  :class:`ShardedFleet` scales the same interface across N such
shards: every chunk is routed by a :class:`HashRing` (consistent hashing of
the patient id, stable across runs and processes, minimal reassignment when
the shard count changes), each shard streams and featurises its own patients
independently, and drains merge the per-shard batched classifications into
one canonically ordered decision list.

The headline guarantee — enforced by the parity fuzz suite in
``tests/test_serving_sharding.py`` — is that sharding is *invisible* in the
output: for any shard count, backend and drain policy, a sharded fleet
produces decision-for-decision identical output to a single unsharded
:class:`~repro.serving.fleet.MonitorFleet` over the same streams.  This
holds because each patient's DSP state lives on exactly one shard and the
batched classifiers are batch-composition invariant (bit-exactly so on the
integer fixed-point path).

Three executor backends:

* ``"serial"`` — shards are plain in-process objects, calls run inline.
  Zero overhead; also the fastest drain on a single core, because shard-
  sized classification batches are kinder to the cache than one monolithic
  batch (see ``benchmarks/test_bench_serving.py``).
* ``"thread"`` — drains / flushes / stat polls fan out over a thread pool;
  the NumPy kernels release the GIL, so shards classify concurrently on
  multi-core hosts.
* ``"process"`` — one dedicated worker process per shard, each hosting its
  own :class:`~repro.serving.fleet.MonitorFleet`; chunks, stats and
  decisions travel over pipes.  This is the multi-host deployment shape in
  miniature (the pipe protocol is the same role a socket would play, and
  ECG payloads are shipped in the :mod:`repro.serving.wire` frame format by
  :meth:`ShardedFleet.push_wire` upstream of it).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.peaks import PanTompkinsParams
from repro.serving.fleet import MonitorFleet, decision_sort_key, run_streams
from repro.serving.registry import InferenceBackend, ModelRegistry
from repro.serving.scheduler import DrainPolicy, DrainStats, merge_stats
from repro.serving.streaming import GapStats, PendingWindow, WindowDecision
from repro.serving.wire import decode_chunk_checked
from repro.signals.windows import WindowingParams

__all__ = ["HashRing", "ShardedFleet", "ShardDrainError", "TopologyPlan"]


class ShardDrainError(RuntimeError):
    """One or more shards failed while draining.

    The windows of every *failed* shard remain queued there (a fleet drain is
    retryable), and the decisions the healthy shards already produced are not
    thrown away — they are carried on :attr:`decisions`, canonically sorted.
    :attr:`errors` maps shard index to the exception it raised.
    """

    def __init__(
        self, errors: Mapping[int, Exception], decisions: Iterable[WindowDecision]
    ) -> None:
        super().__init__(
            "drain failed on shard(s) %s: %s"
            % (sorted(errors), "; ".join(repr(errors[s]) for s in sorted(errors)))
        )
        self.errors = dict(errors)
        self.decisions = list(decisions)


@dataclass(frozen=True)
class TopologyPlan:
    """One planned topology change: the target ring plus its migration set.

    The single plan/apply currency of every topology-changing surface —
    :meth:`ShardedFleet.plan_topology` / :meth:`ShardedFleet.apply_topology`,
    the gateway's quiescing wrappers
    (:meth:`~repro.serving.ingest.IngestGateway.plan_topology`), and the
    federated cluster's node rebalancing
    (:meth:`~repro.serving.cluster.GatewayCluster.plan_topology`).  A plan
    is pure data: inspect :attr:`movers` for the migration cost, then hand
    the plan to ``apply_topology`` — or drop it, which touches nothing.

    ``movers`` maps each patient the target ring reassigns to their
    ``(old_shard, new_shard)`` pair, computed against the membership at
    planning time; ``apply_topology`` recomputes the exact set against the
    membership at apply time (patients may have appeared in between), so the
    plan's set is the *preview* and the apply's return value is the truth.
    """

    #: Target shard / node count.
    n_shards: int
    #: Target per-shard ring weights.
    weights: Tuple[float, ...]
    #: Preview migration set: ``{patient_id: (old, new)}`` at planning time.
    movers: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: The target :class:`HashRing` itself.
    ring: Optional["HashRing"] = None

    @property
    def is_noop(self) -> bool:
        """Whether applying this plan would change nothing."""
        return self.ring is None

    @property
    def n_movers(self) -> int:
        return len(self.movers)


class HashRing:
    """Consistent hashing of patient ids onto shard indices.

    Each shard owns ``replicas`` pseudo-random points on a 64-bit ring
    (BLAKE2b of ``"shard:<index>:<replica>"`` — deterministic, unlike
    Python's salted ``hash``); a patient id maps to the shard owning the
    first ring point at or after the hash of the id.  With R replicas per
    shard the load spread is ~``1/sqrt(R)`` and growing the fleet from N to
    N+1 shards reassigns only ~``1/(N+1)`` of the patients — the property
    that makes live resharding of long-running monitors tractable.

    ``weights`` makes the ring *heterogeneous*: shard ``i`` claims
    ``max(1, round(replicas * weights[i]))`` ring points, so a host with
    weight 2.0 owns ~twice the key range (and therefore ~twice the
    patients) of a weight-1.0 host.  Weights are absolute multipliers, not
    normalised shares: a shard's points depend only on its *own* weight, so
    resizing the fleet (or re-weighting one shard) never moves patients
    between shards whose weights are unchanged — the minimal-movement
    property survives heterogeneity.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 64,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        if weights is None:
            resolved = (1.0,) * self.n_shards
        else:
            resolved = tuple(float(w) for w in weights)
            if len(resolved) != self.n_shards:
                raise ValueError(
                    "weights has %d entries for %d shards" % (len(resolved), self.n_shards)
                )
            if any(w <= 0.0 for w in resolved):
                raise ValueError("shard weights must be positive")
        self.weights = resolved
        #: Shard indices tombstoned by :meth:`without_shards` (empty on a
        #: freshly built ring).  Excluded shards keep their index — survivors
        #: never renumber — but own no ring points, so nothing routes to them.
        self.excluded: frozenset = frozenset()
        point_list: List[int] = []
        owner_list: List[int] = []
        for shard in range(self.n_shards):
            for replica in range(self._points_for(shard)):
                point_list.append(self._point("shard:%d:%d" % (shard, replica)))
                owner_list.append(shard)
        points = np.asarray(point_list, dtype=np.uint64)
        owners = np.asarray(owner_list, dtype=np.int64)
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        self._owners = owners[order]

    def _points_for(self, shard: int) -> int:
        """Ring points shard ``shard`` claims (its weight times ``replicas``)."""
        return max(1, int(round(self.replicas * self.weights[shard])))

    @staticmethod
    def _point(key: str) -> int:
        return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")

    def shard_of(self, patient_id: int) -> int:
        """Shard index owning ``patient_id`` (stable across runs/processes)."""
        point = self._point("patient:%d" % int(patient_id))
        idx = int(np.searchsorted(self._points, np.uint64(point), side="left"))
        return int(self._owners[idx % self._owners.shape[0]])

    def resized_weights(
        self, n_shards: int, weights: Optional[Sequence[float]] = None
    ) -> tuple:
        """The weight vector a resize to ``n_shards`` would use.

        With explicit ``weights`` they are validated and returned verbatim;
        otherwise the current weights are truncated (shrink) or extended
        with 1.0 entries (grow) — new shards default to homogeneous hosts.
        """
        n_shards = int(n_shards)
        if weights is not None:
            resolved = tuple(float(w) for w in weights)
            if len(resolved) != n_shards:
                raise ValueError(
                    "weights has %d entries for %d shards" % (len(resolved), n_shards)
                )
            return resolved
        if n_shards <= len(self.weights):
            return self.weights[:n_shards]
        return self.weights + (1.0,) * (n_shards - len(self.weights))

    def with_n_shards(
        self,
        n_shards: int,
        patient_ids: Iterable[int] = (),
        weights: Optional[Sequence[float]] = None,
    ) -> tuple:
        """The ring resized to ``n_shards``, plus the patients that move.

        Returns ``(ring, moved)`` where ``moved`` maps each reassigned
        patient id to its ``(old_shard, new_shard)`` pair.  This is the
        consistent-hashing payoff made explicit: a surviving shard's ring
        points are identical in both rings, so growing N→N+1 reassigns only
        the ~``1/(N+1)`` of patients claimed by the new shard's points, and
        shrinking reassigns exactly the removed shard's patients — never a
        reshuffle between survivors.  ``moved`` is therefore the *complete*
        migration workload of a live reshard
        (:meth:`ShardedFleet.reshard`), pinned by
        ``tests/test_serving_reshard.py``.

        ``weights`` follows :meth:`resized_weights`: omitted, the surviving
        shards keep their current weights (their ring points are then
        identical in both rings and minimal movement holds); passing a
        changed weight for a surviving shard is legal but that shard's key
        range is re-cut, so more patients move — ``moved`` is exact either
        way.
        """
        ring = HashRing(
            n_shards, replicas=self.replicas, weights=self.resized_weights(n_shards, weights)
        )
        moved = {}
        for patient_id in patient_ids:
            patient_id = int(patient_id)
            old, new = self.shard_of(patient_id), ring.shard_of(patient_id)
            if old != new:
                moved[patient_id] = (old, new)
        return ring, moved

    def without_shards(
        self, shards: Iterable[int], patient_ids: Iterable[int] = ()
    ) -> tuple:
        """The ring with ``shards`` tombstoned, plus the patients that move.

        Returns ``(ring, moved)`` like :meth:`with_n_shards`.  Unlike a
        resize, excluding a shard does not renumber the survivors: the dead
        shard keeps its index but loses its ring points, so exactly the
        patients it owned are reassigned (to the survivors owning the next
        points clockwise) and *no* surviving shard's patients move.  This is
        the failover primitive of the federated cluster: a dead gateway's
        slot is tombstoned, its patients re-home, and every live gateway
        keeps its slice untouched (:mod:`repro.serving.cluster`).

        Exclusions accumulate: calling this on an already-tombstoned ring
        adds to :attr:`excluded`.  Excluding every shard is an error.
        """
        dead = {int(s) for s in shards}
        for shard in dead:
            if not 0 <= shard < self.n_shards:
                raise ValueError(
                    "shard %d is not a shard of this %d-shard ring"
                    % (shard, self.n_shards)
                )
        if not dead - self.excluded:
            return self, {}
        excluded = frozenset(self.excluded | dead)
        if len(excluded) >= self.n_shards:
            raise ValueError("cannot exclude every shard of the ring")
        ring = object.__new__(HashRing)
        ring.n_shards = self.n_shards
        ring.replicas = self.replicas
        ring.weights = self.weights
        ring.excluded = excluded
        mask = ~np.isin(self._owners, np.asarray(sorted(excluded), dtype=np.int64))
        ring._points = self._points[mask]
        ring._owners = self._owners[mask]
        moved = {}
        for patient_id in patient_ids:
            patient_id = int(patient_id)
            old, new = self.shard_of(patient_id), ring.shard_of(patient_id)
            if old != new:
                moved[patient_id] = (old, new)
        return ring, moved


# ---------------------------------------------------------------------------
# Shard executor backends
# ---------------------------------------------------------------------------


def _invoke(fleet: MonitorFleet, method: str, *args: Any, **kwargs: Any) -> Any:
    """Call a fleet method, or read a fleet property when ``method`` names one."""
    attr = getattr(fleet, method)
    if callable(attr):
        return attr(*args, **kwargs)
    return attr


class _SerialBackend:
    """Shards as plain in-process fleets; every call runs inline."""

    def __init__(self, shards: Sequence[MonitorFleet]) -> None:
        self.shards = list(shards)

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return _invoke(self.shards[shard], method, *args, **kwargs)

    def call_all(self, method: str, *args: Any, **kwargs: Any) -> list:
        return [_invoke(shard, method, *args, **kwargs) for shard in self.shards]

    def call_all_settled(self, method: str, *args: Any, **kwargs: Any) -> list:
        """Like :meth:`call_all`, but collects ``(ok, value_or_exc)`` pairs
        instead of aborting on the first shard failure."""
        settled = []
        for shard in self.shards:
            try:
                settled.append((True, _invoke(shard, method, *args, **kwargs)))
            except Exception as exc:
                settled.append((False, exc))
        return settled

    def close(self) -> None:
        pass


class _ThreadBackend(_SerialBackend):
    """Fan ``call_all`` out over a thread pool (NumPy releases the GIL)."""

    def __init__(self, shards: Sequence[MonitorFleet]) -> None:
        super().__init__(shards)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.shards), thread_name_prefix="shard"
        )

    def call_all(self, method: str, *args: Any, **kwargs: Any) -> list:
        return [future.result() for future in self._submit_all(method, *args, **kwargs)]

    def call_all_settled(self, method: str, *args: Any, **kwargs: Any) -> list:
        settled = []
        for future in self._submit_all(method, *args, **kwargs):
            try:
                settled.append((True, future.result()))
            except Exception as exc:
                settled.append((False, exc))
        return settled

    def _submit_all(self, method: str, *args, **kwargs) -> list:
        return [
            self._pool.submit(_invoke, shard, method, *args, **kwargs)
            for shard in self.shards
        ]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _shard_worker(
    conn: Connection,
    classifier: InferenceBackend | ModelRegistry,
    fs: float,
    windowing: Optional[WindowingParams],
    detector_params: Optional[PanTompkinsParams],
    auto_register: bool,
    feature_cache: bool = True,
    lossy: bool = False,
) -> None:
    """Worker-process loop: host one shard fleet, serve pipe requests."""
    fleet = MonitorFleet(
        classifier,
        fs,
        windowing=windowing,
        detector_params=detector_params,
        auto_register=auto_register,
        feature_cache=feature_cache,
        lossy=lossy,
    )
    while True:
        request = conn.recv()
        if request is None:
            conn.close()
            return
        method, args, kwargs = request
        try:
            conn.send(("ok", _invoke(fleet, method, *args, **kwargs)))
        except BaseException as exc:  # propagated to, and re-raised in, the parent
            conn.send(("err", exc))


class _ProcessBackend:
    """One dedicated worker process per shard, request/response over pipes."""

    #: Workers hold pickled *replicas* of shared state (the model registry),
    #: so registry mutations must be forwarded explicitly — unlike the
    #: in-process backends, whose shards share the parent's objects.
    replicated = True

    def __init__(
        self,
        n_shards: int,
        classifier,
        fs: float,
        windowing,
        detector_params,
        auto_register: bool,
        feature_cache: bool = True,
        lossy: bool = False,
    ) -> None:
        self._spawn_args = (
            classifier,
            fs,
            windowing,
            detector_params,
            auto_register,
            feature_cache,
            lossy,
        )
        self._conns = []
        self._procs = []
        for _ in range(n_shards):
            self._spawn_one()

    def _spawn_one(self) -> None:
        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_worker,
            args=(child_conn,) + self._spawn_args,
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns.append(parent_conn)
        self._procs.append(proc)

    def resize(self, n_shards: int) -> None:
        """Grow or shrink the worker pool to ``n_shards`` processes.

        Removed workers (always the highest indices — surviving shard
        indices keep their processes and therefore their monitors) are shut
        down gracefully; added workers start empty, holding a pickled
        replica of the *current* model registry (the first spawn-args
        element is the parent's registry object, pickled at spawn time, so a
        late-born worker is born in sync).  The caller must have migrated
        every patient off a worker before shrinking past it.
        """
        while len(self._conns) > n_shards:
            conn = self._conns.pop()
            proc = self._procs.pop()
            try:
                conn.send(None)
                conn.close()
            except OSError:
                pass
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        while len(self._conns) < n_shards:
            self._spawn_one()

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        conn = self._conns[shard]
        conn.send((method, args, kwargs))
        status, value = conn.recv()
        if status == "err":
            raise value
        return value

    def call_all(self, method: str, *args: Any, **kwargs: Any) -> list:
        settled = self.call_all_settled(method, *args, **kwargs)
        for ok, value in settled:
            if not ok:
                raise value
        return [value for _, value in settled]

    def call_all_settled(self, method: str, *args: Any, **kwargs: Any) -> list:
        for conn in self._conns:
            conn.send((method, args, kwargs))
        return [
            (status == "ok", value)
            for status, value in (conn.recv() for conn in self._conns)
        ]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()


_BACKENDS = ("serial", "thread", "process")


class ShardedFleet:
    """N consistent-hash-routed :class:`~repro.serving.fleet.MonitorFleet` shards.

    The interface deliberately mirrors :class:`~repro.serving.fleet.MonitorFleet`
    (``push`` / ``push_wire`` / ``finish`` / ``drain`` / ``maybe_drain`` /
    ``run``), so a single-fleet deployment scales out by swapping the class.

    Parameters
    ----------
    classifier, fs, windowing, detector_params:
        As for :class:`~repro.serving.fleet.MonitorFleet`; shared by every
        shard.
    n_shards:
        Number of shards.  One shard is a valid (if pointless) fleet and is
        used by the parity tests as the degenerate case.
    drain_policy:
        Fleet-level :class:`~repro.serving.scheduler.DrainPolicy`, evaluated
        against the merged shard stats; a trigger drains *all* shards.
    backend:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` — see the
        module docstring.  Drain-policy scheduling is driven by *local*
        queue counters the fleet maintains from the shards' return values
        (exact, and free of cross-shard round-trips on every chunk), so it
        behaves identically on all three backends; only the authoritative
        :meth:`stats` / :attr:`pending_count` sweep the shards.
    auto_register:
        Unknown-patient contract, forwarded to every shard (see
        :class:`~repro.serving.fleet.MonitorFleet`).
    clock:
        Monotonic time source for the in-process backends' latency stats.
    replicas:
        Ring points per shard for the :class:`HashRing`.
    shard_weights:
        Optional per-shard :class:`HashRing` weights for heterogeneous
        hosts: a shard with weight 2.0 is routed ~twice the patients of a
        weight-1.0 shard.  ``None`` (default) is a homogeneous fleet.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        n_shards: int = 4,
        windowing: WindowingParams | None = None,
        detector_params: PanTompkinsParams | None = None,
        drain_policy: DrainPolicy | None = None,
        backend: str = "serial",
        auto_register: bool = True,
        clock: Callable[[], float] = time.monotonic,
        replicas: int = 64,
        shard_weights: Optional[Sequence[float]] = None,
        feature_cache: bool = True,
        lossy: bool = False,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError("unknown backend %r (choose from %s)" % (backend, _BACKENDS))
        if isinstance(classifier, ModelRegistry):
            self.registry = classifier
        else:
            self.registry = ModelRegistry(default=classifier)
        self.fs = float(fs)
        self.n_shards = int(n_shards)
        self.backend_name = backend
        self.drain_policy = drain_policy
        self.auto_register = bool(auto_register)
        self.windowing = windowing
        self.detector_params = detector_params
        self.feature_cache = bool(feature_cache)
        self.lossy = bool(lossy)
        self.ring = HashRing(self.n_shards, replicas=replicas, weights=shard_weights)
        self._clock = clock
        # The registry is routing-invariant: every shard classifies with the
        # *same* patient->model mapping, so a patient's tailored model follows
        # them wherever the ring places them (including across reshards).
        # In-process shards share this very object; worker processes receive
        # pickled replicas (kept in sync by register_model).
        if backend == "process":
            self._backend = _ProcessBackend(
                self.n_shards,
                self.registry,
                self.fs,
                windowing,
                detector_params,
                self.auto_register,
                self.feature_cache,
                self.lossy,
            )
        else:
            shards = [self._make_shard() for _ in range(self.n_shards)]
            backend_cls = _ThreadBackend if backend == "thread" else _SerialBackend
            self._backend = backend_cls(shards)
        self._shard_of: Dict[int, int] = {}
        # Local queue bookkeeping, kept exact from the shards' return values:
        # windows only enter or leave a shard's queue through calls routed
        # here, so drain-policy decisions never need a cross-shard sweep.
        self._pending_by_shard: Dict[int, int] = {}
        self._chunks_since_drain = 0
        self._oldest_pending_t: Optional[float] = None
        self._known_patients: set = set()

    def _make_shard(self) -> MonitorFleet:
        """One empty in-process shard fleet with this fleet's configuration."""
        return MonitorFleet(
            self.registry,
            self.fs,
            windowing=self.windowing,
            detector_params=self.detector_params,
            auto_register=self.auto_register,
            clock=self._clock,
            feature_cache=self.feature_cache,
            lossy=self.lossy,
        )

    # --------------------------------------------------------------- models
    @property
    def classifier(self) -> Optional[InferenceBackend]:
        """The registry's default backend (the shared model of a homogeneous
        fleet); ``None`` when the registry is strict per-patient only."""
        return self.registry.default

    def register_model(self, patient_id: int, backend: InferenceBackend) -> int:
        """Install (or hot-swap) one patient's tailored backend, fleet-wide.

        The in-process executor backends share the parent's
        :class:`~repro.serving.registry.ModelRegistry`, so a single registry
        mutation is visible to every shard; the process backend holds
        per-worker replicas, which are updated first so a concurrent drain
        never sees the worker and the parent disagree for long.  Returns the
        parent registry's new epoch.  The swap takes effect at the next
        drain, wherever the ring routes the patient.
        """
        if getattr(self._backend, "replicated", False):
            self._backend.call_all("register_model", int(patient_id), backend)
        return self.registry.register(patient_id, backend)

    def model_label_for(self, patient_id: int) -> str:
        """Stats label of the backend serving ``patient_id``."""
        return self.registry.label_for(patient_id)

    # ------------------------------------------------------------ membership
    def shard_of(self, patient_id: int) -> int:
        """Shard index the ring assigns to ``patient_id`` (cached)."""
        patient_id = int(patient_id)
        shard = self._shard_of.get(patient_id)
        if shard is None:
            shard = self.ring.shard_of(patient_id)
            self._shard_of[patient_id] = shard
        return shard

    def add_patient(self, patient_id: int) -> int:
        """Register a patient on their shard; returns the shard index."""
        shard = self.shard_of(patient_id)
        self._backend.call(shard, "add_patient", int(patient_id))
        self._known_patients.add(int(patient_id))
        return shard

    def has_patient(self, patient_id: int) -> bool:
        return self._backend.call(self.shard_of(patient_id), "has_patient", int(patient_id))

    @property
    def patient_ids(self) -> List[int]:
        return sorted(pid for ids in self._backend.call_all("patient_ids") for pid in ids)

    @property
    def n_patients(self) -> int:
        return len(self.patient_ids)

    @property
    def pending_count(self) -> int:
        return self.stats().pending_windows

    # -------------------------------------------------------------- streaming
    def push(self, patient_id: int, chunk: np.ndarray, seq: int | None = None) -> int:
        """Route one chunk to its patient's shard.

        Returns the pending-window count *of that shard* (the fleet-wide
        count is :attr:`pending_count`).  Unknown patients follow the
        ``auto_register`` contract; ``seq`` is enforced by the patient's
        monitor exactly as on a single fleet.
        """
        patient_id = int(patient_id)
        shard = self.shard_of(patient_id)
        pending = self._backend.call(shard, "push", patient_id, chunk, seq)
        self._known_patients.add(patient_id)
        self._chunks_since_drain += 1
        self._note_pending(shard, pending)
        return pending

    def push_wire(self, frame: bytes) -> int:
        """Decode one wire frame and route it (fs-checked, sequence-enforced)."""
        chunk = decode_chunk_checked(frame, self.fs)
        return self.push(chunk.patient_id, chunk.samples, seq=chunk.seq)

    def enqueue(self, windows: Iterable[PendingWindow]) -> int:
        """Queue externally featurised windows on their patients' shards.

        Follows the ``auto_register`` contract of :meth:`push`: with
        ``auto_register=False``, a window for an unregistered patient raises
        :class:`KeyError` *before any shard queues anything* — a replayed
        window with a stray id is the same routing bug as a stray chunk.
        """
        by_shard: Dict[int, List[PendingWindow]] = {}
        for window in windows:
            by_shard.setdefault(self.shard_of(window.patient_id), []).append(window)
        if not self.auto_register:
            # One membership probe per shard (not per patient): under the
            # process backend every call is a pipe round-trip.
            for shard, group in by_shard.items():
                missing = self._backend.call(
                    shard, "missing_patients", [w.patient_id for w in group]
                )
                if missing:
                    raise KeyError(
                        "unknown patient %d (auto_register=False; call "
                        "add_patient first)" % missing[0]
                    )
        for shard, group in by_shard.items():
            self._note_pending(shard, self._backend.call(shard, "enqueue", group))
            # Queued windows make a patient migratable state: a reshard must
            # know to carry them along even if no chunk ever arrived.
            self._known_patients.update(int(w.patient_id) for w in group)
        return sum(self._pending_by_shard.values())

    def finish(self, patient_id: int | None = None) -> int:
        """Flush one patient's stream (or every shard's streams)."""
        if patient_id is not None:
            shard = self.shard_of(patient_id)
            pending = self._backend.call(shard, "finish", int(patient_id))
            self._note_pending(shard, pending)
            return pending
        for shard, pending in enumerate(self._backend.call_all("finish")):
            self._note_pending(shard, pending)
        return sum(self._pending_by_shard.values())

    def _note_pending(self, shard: int, pending: int) -> None:
        """Record a shard's reported queue depth; keep the oldest-window clock."""
        self._pending_by_shard[shard] = int(pending)
        if sum(self._pending_by_shard.values()) > 0:
            if self._oldest_pending_t is None:
                self._oldest_pending_t = self._clock()
        else:
            self._oldest_pending_t = None

    # ------------------------------------------------------------ resharding
    def plan_topology(
        self,
        n_shards: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> TopologyPlan:
        """Plan a topology change without touching anything.

        Returns a :class:`TopologyPlan` for resizing to ``n_shards``
        (default: the current count — with ``weights``, a pure rebalance)
        carrying the target ring and the preview migration set.  The plan is
        inert data: the quiesce set an
        :class:`~repro.serving.ingest.IngestGateway` freezes before starting
        the real migration, and the cost model an autoscale controller
        weighs against expected latency relief before committing.  Execute
        it with :meth:`apply_topology`; dropping it costs nothing.
        """
        n_shards = self.n_shards if n_shards is None else int(n_shards)
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if n_shards == self.n_shards and (
            weights is None or tuple(float(w) for w in weights) == self.ring.weights
        ):
            return TopologyPlan(
                n_shards=self.n_shards, weights=self.ring.weights, movers={}, ring=None
            )
        ring, moved = self.ring.with_n_shards(
            n_shards, sorted(self._known_patients), weights=weights
        )
        return TopologyPlan(
            n_shards=n_shards, weights=ring.weights, movers=moved, ring=ring
        )

    def preview_reshard(
        self, n_shards: int, weights: Optional[Sequence[float]] = None
    ) -> Dict[int, tuple]:
        """The migration :meth:`reshard` to ``n_shards`` would perform.

        A thin wrapper over :meth:`plan_topology`: returns the plan's
        preview ``{patient_id: (old_shard, new_shard)}`` set.
        """
        return dict(self.plan_topology(n_shards, weights=weights).movers)

    def reshard(
        self, n_shards: int, weights: Optional[Sequence[float]] = None
    ) -> Dict[int, tuple]:
        """Change the shard count live, with zero-loss state migration.

        A thin wrapper: ``apply_topology(plan_topology(n_shards, weights))``.

        Only the minimally reassigned patients move (the
        :meth:`HashRing.with_n_shards` set): each is atomically detached from
        its old shard — DSP carry-over, partial windows, sequence position
        *and* queued pending windows, as one
        :class:`~repro.serving.streaming.MonitorState` — and attached to its
        new one.  Under the process backend the states travel over the worker
        pipes; new workers are born with a replica of the current
        :class:`~repro.serving.registry.ModelRegistry`, and the in-process
        backends keep sharing the parent's, so every patient's tailored model
        follows them unchanged.  ``weights`` re-cuts the ring per
        :meth:`HashRing.resized_weights` (same-count reshards with changed
        weights are legal — that is a pure rebalance).

        The headline guarantee (pinned by ``tests/test_serving_reshard.py``):
        for any schedule of reshards interleaved with traffic, the fleet's
        decisions are bit-identical to a never-resharded fleet over the same
        pushes and drains.

        Failure atomicity: every moving patient is exported *before* any
        counter or topology mutation.  If an export raises, the states
        already collected are restored to their old shards and the original
        exception propagates — the fleet is left exactly as it was, and the
        call is retryable.  (A failure while *importing* into the new
        topology cannot be rolled back the same way — the old topology is
        gone — and raises a :class:`RuntimeError` naming the orphaned
        patients; with in-process backends this is unreachable, as
        ``import_patient`` validates nothing that ``export_patient`` has not
        already produced.)

        Returns the migrated mapping ``{patient_id: (old_shard, new_shard)}``.
        Not safe to call concurrently with pushes or drains from other
        threads — quiesce the callers first (the ingest gateway does exactly
        that for the moving patients).
        """
        return self.apply_topology(self.plan_topology(n_shards, weights=weights))

    def apply_topology(self, plan: TopologyPlan) -> Dict[int, tuple]:
        """Execute a :class:`TopologyPlan` from :meth:`plan_topology`.

        The movers are recomputed here against the plan's target ring over
        the *current* patient population, so traffic that arrived between
        planning and applying is migrated too (the plan's ``movers`` are a
        preview — the quiesce set, not the contract).  A no-op plan returns
        ``{}`` without touching anything.  All the atomicity and parity
        guarantees documented on :meth:`reshard` apply.
        """
        if plan.is_noop:
            return {}
        new_ring = plan.ring
        assert new_ring is not None  # is_noop is False
        n_shards = plan.n_shards
        moved: Dict[int, tuple] = {}
        for patient_id in sorted(self._known_patients):
            old_shard = self.ring.shard_of(patient_id)
            new_shard = new_ring.shard_of(patient_id)
            if old_shard != new_shard:
                moved[patient_id] = (old_shard, new_shard)
        # 1. Detach every moving patient while all old shards are still up,
        #    touching *no* fleet state until every export has succeeded — a
        #    dead worker mid-migration must leave the fleet exactly as found.
        #    Each source shard's oldest-pending age is captured first so the
        #    migrated windows don't look freshly-arrived on their new shard
        #    (ages are durations, safe across the process backend's clocks;
        #    the shard-level maximum is a conservative upper bound per
        #    patient, which only ever makes LatencyPolicy fire sooner).
        source_age: Dict[int, float] = {}
        states: List[tuple] = []
        try:
            for patient_id in sorted(moved):
                old_shard, new_shard = moved[patient_id]
                if old_shard not in source_age:
                    source_age[old_shard] = self._backend.call(
                        old_shard, "stats"
                    ).oldest_pending_age_s
                try:
                    state = self._backend.call(old_shard, "export_patient", patient_id)
                except KeyError:
                    # Known only through since-drained enqueued windows: the
                    # ring reassigns their *routing*, but there is no state
                    # to move.
                    continue
                states.append((old_shard, new_shard, state))
        except Exception:
            # Roll back: restore every state already detached to its old
            # shard (still present — the topology was never touched).
            for old_shard, _, state in states:
                self._backend.call(
                    old_shard,
                    "import_patient",
                    state,
                    pending_age_s=source_age.get(old_shard, 0.0),
                )
            raise
        # 2. All exports in hand: account the detached windows.  A negative
        #    count here means the local ledger and the shards disagree —
        #    fail loudly rather than schedule drains off corrupt counters.
        for old_shard, _, state in states:
            if state.pending:
                remaining = self._pending_by_shard.get(old_shard, 0) - len(state.pending)
                if remaining < 0:
                    raise RuntimeError(
                        "pending count of shard %d went negative (%d) during reshard"
                        % (old_shard, remaining)
                    )
                self._pending_by_shard[old_shard] = remaining
        # 3. Resize the executor topology.  Surviving shard indices keep
        #    their fleet objects / worker processes (their ring points are
        #    unchanged, so their patients never noticed anything).
        self._resize_backend(n_shards)
        self.ring = new_ring
        self.n_shards = n_shards
        self._shard_of = {pid: shard for pid, (_, shard) in moved.items()}
        for shard in [s for s in self._pending_by_shard if s >= n_shards]:
            leftover = self._pending_by_shard.pop(shard)
            if leftover:
                raise RuntimeError(
                    "removed shard %d still held %d pending windows" % (shard, leftover)
                )
        # 4. Attach the migrated states to their new owners, carrying each
        #    source shard's queue age along.
        orphaned: List[int] = []
        import_error: Optional[Exception] = None
        for old_shard, new_shard, state in states:
            if import_error is not None:
                orphaned.append(int(state.patient_id))
                continue
            try:
                self._note_pending(
                    new_shard,
                    self._backend.call(
                        new_shard,
                        "import_patient",
                        state,
                        pending_age_s=source_age.get(old_shard, 0.0),
                    ),
                )
            except Exception as exc:
                import_error = exc
                orphaned.append(int(state.patient_id))
        if import_error is not None:
            raise RuntimeError(
                "reshard to %d shards failed importing migrated state; "
                "orphaned patients: %s" % (n_shards, sorted(orphaned))
            ) from import_error
        if sum(self._pending_by_shard.values()) == 0:
            self._oldest_pending_t = None
        return moved

    def add_shard(self, weight: float = 1.0) -> Dict[int, tuple]:
        """Grow the fleet by one shard (of ring weight ``weight``); returns
        the migrated patients."""
        return self.reshard(
            self.n_shards + 1, weights=self.ring.weights + (float(weight),)
        )

    def remove_shard(self) -> Dict[int, tuple]:
        """Shrink the fleet by one shard (the highest index); returns the
        migrated patients.  A fleet cannot shrink below one shard."""
        if self.n_shards <= 1:
            raise ValueError("cannot remove the last shard")
        return self.reshard(self.n_shards - 1)

    def _resize_backend(self, n_shards: int) -> None:
        if self.backend_name == "process":
            self._backend.resize(n_shards)
            return
        shards = list(self._backend.shards)
        if n_shards < len(shards):
            shards = shards[:n_shards]
        else:
            shards.extend(self._make_shard() for _ in range(n_shards - len(shards)))
        self._backend.close()  # retire the old thread pool, if any
        backend_cls = _ThreadBackend if self.backend_name == "thread" else _SerialBackend
        self._backend = backend_cls(shards)

    # -------------------------------------------------------------- draining
    def stats(self) -> DrainStats:
        """Authoritative merged stats, swept from every shard.

        Scheduling decisions use :meth:`local_stats` instead (exact and
        sweep-free); this sweep is for observability and tests.

        Contract: ``chunks_since_drain`` counts chunks since the last
        *fully-successful fleet-wide* drain, on both snapshots.  The wrapper
        counter is the authority and overrides the per-shard sum here:
        after a partial drain failure (:class:`ShardDrainError`) the healthy
        shards have reset their own counters, but fleet-level the drain has
        not happened — a ``ChunkCountPolicy`` must keep re-triggering until
        the failed shard's windows are retried.  Without the override the
        two snapshots would disagree until the next full drain, and a
        controller sampling the sweep would misread the backlog as cleared.
        The per-shard counters remain what a *standalone* fleet reports;
        they are an implementation detail behind this wrapper.
        """
        return merge_stats(
            self._backend.call_all("stats"),
            chunks_since_drain=self._chunks_since_drain,
        )

    def gap_stats(self) -> GapStats:
        """Lossy-mode gap accounting summed over every shard's monitors."""
        total = GapStats()
        for stats in self._backend.call_all("gap_stats"):
            total = total + stats
        return total

    def local_stats(self) -> DrainStats:
        """Queue snapshot from the fleet's own counters — no shard calls.

        Exact by construction: windows only enter or leave shard queues
        through this object, which records every reported queue depth.
        """
        if self._oldest_pending_t is not None:
            oldest_age = max(0.0, self._clock() - self._oldest_pending_t)
        else:
            oldest_age = 0.0
        return DrainStats(
            pending_windows=sum(self._pending_by_shard.values()),
            chunks_since_drain=self._chunks_since_drain,
            oldest_pending_age_s=oldest_age,
            n_patients=len(self._known_patients),
        )

    def should_drain(self) -> bool:
        return self.drain_policy is not None and self.drain_policy.should_drain(
            self.local_stats()
        )

    def maybe_drain(self) -> List[WindowDecision]:
        """Drain if the policy triggers on the local counters; else ``[]``."""
        if self.drain_policy is None:
            return []
        stats = self.local_stats()
        if not self.drain_policy.should_drain(stats):
            return []
        return self._drain(stats)

    def drain(self) -> List[WindowDecision]:
        """Drain every shard (one batched SVM call each); merge canonically.

        Decisions are returned in :func:`~repro.serving.fleet.decision_sort_key`
        order, independent of the shard layout.  If a shard fails, its
        windows stay queued there (each shard's drain is atomic — see
        :meth:`MonitorFleet.drain <repro.serving.fleet.MonitorFleet.drain>`)
        and a :class:`ShardDrainError` carrying the healthy shards' decisions
        is raised, so nothing is ever silently lost.
        """
        return self._drain(self.local_stats())

    def _drain(self, stats: DrainStats) -> List[WindowDecision]:
        settled = self._backend.call_all_settled("drain")
        decisions = [d for ok, group in settled if ok for d in group]
        errors = {shard: value for shard, (ok, value) in enumerate(settled) if not ok}
        for shard, (ok, _) in enumerate(settled):
            if ok:
                self._pending_by_shard[shard] = 0
        if sum(self._pending_by_shard.values()) == 0:
            self._oldest_pending_t = None
        decisions.sort(key=decision_sort_key)
        if errors:
            # Keep the chunk counter: a chunk-count policy must re-trigger on
            # the very next poll so the failed shard's windows are retried,
            # exactly as a single fleet retries after a failed drain.
            raise ShardDrainError(errors, decisions)
        self._chunks_since_drain = 0
        if self.drain_policy is not None:
            self.drain_policy.notify_drain(stats)
        return decisions

    def run(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        drain_every: int = 0,
        policy: DrainPolicy | None = None,
    ) -> List[WindowDecision]:
        """Round-robin driver — :func:`~repro.serving.fleet.run_streams`.

        Sharing the driver with :meth:`MonitorFleet.run` guarantees the same
        arrival order, drain scheduling and canonical output order, which is
        exactly what makes the output comparable decision-for-decision with
        a single fleet's.
        """
        return run_streams(self, streams, drain_every=drain_every, policy=policy)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the executor backend down (worker processes, thread pool)."""
        self._backend.close()

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
