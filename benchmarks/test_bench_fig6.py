"""Benchmark: regenerate Figure 6 (Dbits × Abits exploration).

Paper reference: with per-feature power-of-two ranges and ten LSBs discarded
after the dot product and the squarer, Dbits = 9 / Abits = 15 loses only ~1%
GM versus floating point; a homogeneously scaled pipeline needs far more bits
(64 in the paper) to reach the same GM, at 2.4× the energy and 6.2× the area.
"""

from repro.experiments import fig6_bitwidth

from benchmarks.conftest import run_once


def test_bench_fig6_bitwidth_grid(benchmark, experiment_data, full_axes):
    d_bits = fig6_bitwidth.DEFAULT_FEATURE_BITS if full_axes else (7, 9, 11)
    a_bits = fig6_bitwidth.DEFAULT_COEFF_BITS if full_axes else (13, 15, 17)
    widths = (8, 12, 16, 24, 32, 48, 64) if full_axes else (9, 12, 16, 32)

    result = run_once(
        benchmark,
        fig6_bitwidth.run,
        experiment_data.features,
        feature_bit_options=d_bits,
        coeff_bit_options=a_bits,
        homogeneous_widths=widths,
    )

    print()
    print(fig6_bitwidth.format_grid(result))
    print("paper reference:", fig6_bitwidth.PAPER_REFERENCE)

    assert len(result.grid_points) == len(d_bits) * len(a_bits)

    # The paper's selected point (9 / 15 bits) stays close to floating point.
    summary = result.selected_summary()
    assert summary["gm_loss_pct_vs_float"] < 8.0

    # Energy and area grow with the word widths on the grid.
    by_coords = {
        (int(p.extras["feature_bits"]), int(p.extras["coeff_bits"])): p for p in result.grid_points
    }
    smallest = by_coords[(min(d_bits), min(a_bits))]
    largest = by_coords[(max(d_bits), max(a_bits))]
    assert largest.energy_nj > smallest.energy_nj
    assert largest.area_mm2 > smallest.area_mm2

    # Homogeneous scaling at the paper point's feature width (9 bits) must be
    # clearly worse than per-feature scaling at the same width — the central
    # claim of the bitwidth section.
    uniform_narrow = min(
        result.homogeneous_points, key=lambda p: p.extras.get("uniform_width", p.feature_bits)
    )
    assert uniform_narrow.gm < result.selected.gm

    # And the homogeneous pipeline that does match the per-feature GM needs a
    # (costlier) wider datapath.
    matching = result.matching_homogeneous_point(tolerance=0.02)
    if matching is not None:
        assert matching.extras["uniform_width"] > result.selected_feature_bits
