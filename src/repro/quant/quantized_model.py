"""Bit-accurate fixed-point model of the quadratic-kernel inference pipeline.

:class:`QuantizedSVM` converts a trained float :class:`~repro.svm.model.SVMModel`
with a quadratic kernel into the integer-only datapath of the accelerator in
Figure 2 of the paper:

1. every feature ``j`` is a signed ``Dbits``-wide integer with a power-of-two
   LSB weight derived from its range exponent ``R_j`` (per-feature scaling) or
   from a single shared exponent (homogeneous scaling);
2. MAC1 accumulates the per-feature products, each re-aligned with a left
   shift of ``2·(R_j − R_min)`` so that all partial products share the scale
   of the least-significant feature; the accumulator then drops
   ``truncate_after_dot`` LSBs;
3. the kernel offset (+1) is added as an integer in the accumulator scale and
   the result is squared, after which ``truncate_after_square`` LSBs are
   dropped;
4. MAC2 multiplies by the quantised ``α_i y_i`` coefficients (``Abits`` wide),
   accumulates over support vectors and adds the quantised bias;
5. the predicted class is the sign of the final accumulator.

Every step uses integer arithmetic only.  A vectorised ``int64`` fast path is
used whenever the worst-case bit growth provably fits; otherwise the pipeline
falls back to exact Python integers, so arbitrarily wide reference datapaths
(e.g. the 64-bit baseline of Figure 7) remain bit-exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

import numpy as np

from repro.analysis.markers import int_only
from repro.hardware.accelerator import AcceleratorConfig
from repro.quant.fixed_point import (
    int_bounds,
    quantize_columns,
    quantize_to_int,
    scale_for_exponent,
)
from repro.quant.ranges import (
    coefficient_range_exponent,
    feature_range_exponents,
    global_range_exponent,
)
from repro.svm.kernels import PolynomialKernel
from repro.svm.model import SVMModel

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quant.backend import QuantizedSVMBackend

__all__ = ["QuantizationConfig", "QuantizedSVM"]


@dataclass
class QuantizationConfig:
    """Quantisation parameters of one fixed-point design point."""

    #: Bits used to represent each feature value (Dbits in the paper).
    feature_bits: int = 9
    #: Bits used to represent each α_i y_i coefficient (Abits in the paper).
    coeff_bits: int = 15
    #: LSBs discarded after the dot product.
    truncate_after_dot: int = 10
    #: LSBs discarded after the squarer.
    truncate_after_square: int = 10
    #: Per-feature power-of-two ranges (True) or one global range (False).
    per_feature_scaling: bool = True
    #: Half-width of the feature ranges in standard deviations of the SV set
    #: (see :data:`repro.quant.ranges.DEFAULT_RANGE_SIGMA`).
    range_margin_sigma: float = 3.0
    #: Width label of a conventional fixed-width datapath (the 64/32/16-bit
    #: pipelines of Figure 7).  It only affects the *hardware cost model*
    #: (the datapath is sized to this width); functionally the accumulators
    #: are given full headroom, as any sane fixed-point design allocates
    #: integer bits so that intermediate results never overflow.
    datapath_cap_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.feature_bits < 2 or self.coeff_bits < 2:
            raise ValueError("feature_bits and coeff_bits must be at least 2")
        if self.truncate_after_dot < 0 or self.truncate_after_square < 0:
            raise ValueError("truncation amounts cannot be negative")


class _BatchWorkspace:
    """Preallocated per-thread buffers for the fused batch pipeline.

    One workspace holds every intermediate of a whole window batch (the
    standardised floats, the quantised words, the MAC1/squarer accumulator
    panel and the MAC2 output vector), so a steady-state serving drain runs
    the entire quantised pipeline without allocating.  When the detector's
    MAC1 stage provably fits 32-bit words (``narrow=True``) the workspace
    additionally carries int32 twins of the quantised words and the MAC1
    accumulator, because numpy's int32 matrix products vectorise where the
    int64 ones cannot.
    """

    __slots__ = ("capacity", "scaled", "q", "acc1", "acc2", "q32", "acc1_32")

    def __init__(
        self, capacity: int, n_features: int, n_support_vectors: int, narrow: bool
    ) -> None:
        self.capacity = capacity
        self.scaled = np.empty((capacity, n_features), dtype=np.float64)
        self.q = np.empty((capacity, n_features), dtype=np.int64)
        self.acc1 = np.empty((capacity, n_support_vectors), dtype=np.int64)
        self.acc2 = np.empty(capacity, dtype=np.int64)
        self.q32: Optional[np.ndarray] = (
            np.empty((capacity, n_features), dtype=np.int32) if narrow else None
        )
        self.acc1_32: Optional[np.ndarray] = (
            np.empty((capacity, n_support_vectors), dtype=np.int32) if narrow else None
        )


class QuantizedSVM:
    """Integer-only implementation of the quadratic-kernel SVM pipeline."""

    def __init__(self, model: SVMModel, config: Optional[QuantizationConfig] = None) -> None:
        if config is None:
            config = QuantizationConfig()
        kernel = model.kernel
        if not isinstance(kernel, PolynomialKernel) or kernel.degree != 2:
            raise ValueError("the fixed-point pipeline implements the quadratic kernel only")
        if abs(kernel.gamma - 1.0) > 1e-12 or abs(kernel.coef0 - 1.0) > 1e-12:
            raise ValueError("the quadratic kernel must be (x·y + 1)^2 (gamma=1, coef0=1)")

        self.model = model
        self.config = config

        sv = model.scaled_support_vectors()
        self.n_support_vectors, self.n_features = sv.shape

        # ----------------------------------------------------- feature ranges
        if config.per_feature_scaling:
            self.range_exponents = feature_range_exponents(sv, config.range_margin_sigma)
        else:
            self.range_exponents = np.full(
                self.n_features,
                global_range_exponent(sv, config.range_margin_sigma),
                dtype=int,
            )
        self.feature_scales = np.array(
            [scale_for_exponent(r, config.feature_bits) for r in self.range_exponents]
        )

        # Shift that re-aligns each feature product to the scale of the
        # smallest exponent (implemented as a barrel shifter in hardware).
        r_min = int(np.min(self.range_exponents))
        self.product_shifts = 2 * (self.range_exponents - r_min)
        #: Real value of one LSB of the MAC1 accumulator before truncation.
        self.dot_scale = float(
            2.0 ** (2 * (r_min - config.feature_bits + 1))
        )
        #: Real value of one LSB of the dot product after truncation.
        self.dot_scale_truncated = self.dot_scale * (2.0**config.truncate_after_dot)
        #: Real value of one LSB of the kernel value after squaring + truncation.
        self.kernel_scale = (self.dot_scale_truncated**2) * (
            2.0**config.truncate_after_square
        )

        # --------------------------------------------------------- constants
        self.sv_int = self._quantize_features(sv)
        self.kernel_offset_int = int(round(1.0 / self.dot_scale_truncated))

        # ------------------------------------------------------ coefficients
        self.coeff_exponent = coefficient_range_exponent(model.dual_coef)
        self.coeff_scale = scale_for_exponent(self.coeff_exponent, config.coeff_bits)
        self.coeff_int = quantize_to_int(model.dual_coef, self.coeff_scale, config.coeff_bits)

        #: Real value of one LSB of the MAC2 accumulator.
        self.output_scale = self.coeff_scale * self.kernel_scale
        self.bias_int = int(round(model.bias / self.output_scale))

        self._use_fast_path = self._fits_int64()

        # Fused batch pipeline (fast path only): the shifted support-vector
        # matrix is precomputed and transposed once so MAC1 over a whole
        # batch is a single contiguous einsum, and per-thread workspaces let
        # repeated serving drains run with zero heap allocations.  Gated on
        # ``feature_bits <= 62`` because wider feature words quantise through
        # exact Python integers, which the int64 workspaces cannot hold.
        self._tls: threading.local = threading.local()
        self._sv_shifted_t: Optional[np.ndarray] = None
        self._sv_shifted_t32: Optional[np.ndarray] = None
        self._coeff_i64: Optional[np.ndarray] = None
        self._use_fused = self._use_fast_path and config.feature_bits <= 62
        self._use_narrow_mac1 = False
        if self._use_fused:
            sv_shifted = self.sv_int.astype(np.int64) << self.product_shifts.astype(
                np.int64
            )[None, :]
            self._sv_shifted_t = np.ascontiguousarray(sv_shifted.T)
            self._coeff_i64 = self.coeff_int.astype(np.int64)
            # Narrow MAC1: when every MAC1 intermediate provably fits a
            # 32-bit word, the dominant matrix product runs in int32, which
            # numpy SIMD-vectorises (int64 products go through a scalar
            # loop).  Gated on the same exact worst-case bound style as
            # :meth:`_fits_int64`, so the int32 arithmetic can never wrap
            # and stays bit-identical to the int64 reference.
            self._use_narrow_mac1 = self._fits_int32_mac1()
            if self._use_narrow_mac1:
                self._sv_shifted_t32 = self._sv_shifted_t.astype(np.int32)

    def __getstate__(self) -> Dict[str, Any]:
        # ``threading.local`` does not pickle; the process-pool fleet backend
        # ships QuantizedSVM instances to workers, which rebuild their own
        # (empty) per-thread workspace registry on arrival.
        state = self.__dict__.copy()
        state.pop("_tls", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._tls = threading.local()

    # ------------------------------------------------------------------ API
    def _quantize_features(self, values: np.ndarray) -> np.ndarray:
        """Quantise a feature matrix with the per-column feature scales."""
        return quantize_columns(values, self.feature_scales, self.config.feature_bits)

    def quantize_input(self, X: np.ndarray) -> np.ndarray:
        """Quantise raw test vectors exactly as the accelerator front-end does.

        The model's scaler (fitted at training time) is applied first — it is
        part of the feature-extraction stage, not of the inference
        accelerator — then each feature is rounded to its fixed-point grid and
        saturated to its ``[-2^{R_j}, 2^{R_j})`` range.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValueError("expected %d features, got %d" % (self.n_features, X.shape[1]))
        if self.model.scaler is not None:
            X = self.model.scaler.transform(X)
        return self._quantize_features(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Approximate real-valued decision score implied by the integer pipeline."""
        if self._use_fused:
            return self._accumulate_fused(X).astype(float) * self.output_scale
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            return acc.astype(float) * self.output_scale
        return np.asarray([float(v) for v in acc], dtype=float) * self.output_scale

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels in ``{-1, +1}`` from the integer pipeline (sign bit).

        Accepts a whole batch of windows at once; on the int64 fast path the
        entire pipeline (quantisation, MAC1, squarer, MAC2 and the final sign)
        stays vectorised across the batch, which is what the
        :class:`~repro.serving.fleet.MonitorFleet` batched drain relies on.
        """
        if self._use_fused:
            acc = self._accumulate_fused(X)
            return np.where(acc >= 0, 1, -1).astype(int)
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            return np.where(acc >= 0, 1, -1).astype(int)
        return np.asarray([1 if v >= 0 else -1 for v in acc], dtype=int)

    def scores_and_labels(self, X: np.ndarray) -> tuple:
        """Decision scores and class labels from a single pipeline pass.

        Labels are the sign of the integer accumulator (exactly as
        :meth:`predict`); the batched serving drain uses this to avoid
        running the pipeline twice per window batch.
        """
        if self._use_fused:
            acc_fused = self._accumulate_fused(X)
            scores = acc_fused.astype(float) * self.output_scale
            labels = np.where(acc_fused >= 0, 1, -1).astype(int)
            return scores, labels
        acc = self._accumulate(self.quantize_input(X))
        if isinstance(acc, np.ndarray):
            scores = acc.astype(float) * self.output_scale
            labels = np.where(acc >= 0, 1, -1).astype(int)
        else:
            scores = np.asarray([float(v) for v in acc], dtype=float) * self.output_scale
            labels = np.asarray([1 if v >= 0 else -1 for v in acc], dtype=int)
        return scores, labels

    def as_backend(
        self,
        feature_indices: "Optional[Sequence[int]]" = None,
        name: Optional[str] = None,
    ) -> "QuantizedSVMBackend":
        """Wrap this pipeline as a serving-layer inference backend.

        The adapter (:class:`~repro.quant.backend.QuantizedSVMBackend`)
        selects the design point's ``feature_indices`` columns from the
        fleet's full-width window vectors before quantisation, so tailored
        per-patient pipelines can share one
        :class:`~repro.serving.registry.ModelRegistry`.
        """
        from repro.quant.backend import QuantizedSVMBackend

        return QuantizedSVMBackend(self, feature_indices=feature_indices, name=name)

    def accelerator_config(self) -> AcceleratorConfig:
        """Hardware design point matching this functional model."""
        return AcceleratorConfig(
            n_features=self.n_features,
            n_support_vectors=self.n_support_vectors,
            feature_bits=self.config.feature_bits,
            coeff_bits=self.config.coeff_bits,
            truncate_after_dot=self.config.truncate_after_dot,
            truncate_after_square=self.config.truncate_after_square,
            per_feature_scaling=self.config.per_feature_scaling,
            datapath_cap_bits=self.config.datapath_cap_bits,
        )

    # ------------------------------------------------------------- pipeline
    @int_only
    def _fits_int64(self) -> bool:
        """Worst-case overflow check for the int64 fast path.

        Bounds every intermediate of the pipeline with exact integer
        arithmetic on the *stored* constants (support-vector words,
        coefficient words, offset and bias) against the most adverse
        quantised input (every feature saturated, signs aligned), instead of
        the purely symbolic bit-growth estimate used previously — which was
        so conservative that it pushed the paper's own 9/15-bit design point
        onto the slow exact-arithmetic path.
        """
        acc1_max = self._worst_case_acc1()
        # ``>>`` on a negative value floors towards -inf, so the magnitude
        # after truncation can exceed the shifted magnitude bound by one.
        dot_max = (acc1_max >> self.config.truncate_after_dot) + 1
        sum_max = dot_max + abs(self.kernel_offset_int)
        squared_max = sum_max * sum_max
        kernel_max = (squared_max >> self.config.truncate_after_square) + 1
        acc2_max = (
            sum(abs(int(c)) for c in np.asarray(self.coeff_int)) * kernel_max
            + abs(self.bias_int)
        )
        limit = 1 << 62
        return max(acc1_max, squared_max, acc2_max) < limit

    @int_only
    def _worst_case_acc1(self) -> int:
        """Exact worst-case magnitude of the MAC1 accumulator.

        Computed against the most adverse quantised input (every feature
        saturated, signs aligned with the support-vector words), so it also
        bounds every partial sum the accumulation can ever pass through.
        """
        q_max = 1 << (self.config.feature_bits - 1)
        shifts = [1 << int(s) for s in self.product_shifts]
        acc1_max = 0
        for row in np.asarray(self.sv_int):
            total = sum(q_max * abs(int(v)) * s for v, s in zip(row, shifts))
            acc1_max = max(acc1_max, total)
        return acc1_max

    @int_only
    def _fits_int32_mac1(self) -> bool:
        """Exact overflow check for running the MAC1 stage in int32.

        True only when the quantised feature words, the shifted
        support-vector words, the worst-case MAC1 accumulation (hence every
        partial sum of it) and the truncated-plus-offset dot all provably fit
        a signed 32-bit word.  Under that bound int32 arithmetic is exact, so
        the narrow stage is bit-identical to the int64 reference by
        construction; the squarer and MAC2 still run in int64 (guarded by
        :meth:`_fits_int64`).
        """
        limit = 1 << 31
        if (1 << (self.config.feature_bits - 1)) > limit - 1:
            return False
        sv_shifted_max = 0
        shifts = [1 << int(s) for s in self.product_shifts]
        for row in np.asarray(self.sv_int):
            for v, s in zip(row, shifts):
                sv_shifted_max = max(sv_shifted_max, abs(int(v)) * s)
        acc1_max = self._worst_case_acc1()
        dot_max = (acc1_max >> self.config.truncate_after_dot) + 1
        sum_max = dot_max + abs(self.kernel_offset_int)
        return max(sv_shifted_max, acc1_max, sum_max) < limit

    def _accumulate(self, q_test: np.ndarray) -> "np.ndarray | list":
        """Run the integer pipeline for every (already quantised) test row."""
        if self._use_fast_path:
            return self._accumulate_int64(q_test)
        return self._accumulate_exact(q_test)

    # ------------------------------------------------- fused batch pipeline
    def _workspace(self, n: int) -> _BatchWorkspace:
        """Calling thread's workspace, grown (by doubling) to hold ``n`` rows."""
        ws: Optional[_BatchWorkspace] = getattr(self._tls, "ws", None)
        if ws is None or ws.capacity < n:
            capacity = 64 if ws is None else ws.capacity
            while capacity < n:
                capacity *= 2
            ws = _BatchWorkspace(
                capacity, self.n_features, self.n_support_vectors, self._use_narrow_mac1
            )
            self._tls.ws = ws
        return ws

    def _quantize_batch(self, X: np.ndarray, ws: _BatchWorkspace) -> np.ndarray:
        """Quantise a validated float batch into the workspace.

        Mirrors :meth:`quantize_input` operation for operation — scaler
        standardisation, division by the per-feature scales, round to
        nearest even, saturation, int64 cast — so the words are bit-identical
        to the allocating reference path.
        """
        n = X.shape[0]
        scaled = ws.scaled[:n]
        if self.model.scaler is not None:
            self.model.scaler.transform_into(X, scaled)
        else:
            np.copyto(scaled, X)
        np.divide(scaled, self.feature_scales[None, :], out=scaled)
        np.rint(scaled, out=scaled)
        lo, hi = int_bounds(self.config.feature_bits)
        np.clip(scaled, lo, hi, out=scaled)
        if self._use_narrow_mac1:
            assert ws.q32 is not None
            q = ws.q32[:n]
        else:
            q = ws.q[:n]
        np.copyto(q, scaled, casting="unsafe")
        return q

    def _accumulate_fused(self, X: np.ndarray) -> np.ndarray:
        """Whole pipeline (quantise → MAC1 → squarer → MAC2) on raw inputs.

        Bit-identical to ``self._accumulate(self.quantize_input(X))`` on the
        int64 fast path, but every intermediate lives in the calling thread's
        preallocated workspace.  The returned accumulator is a *view* into
        that workspace — valid only until the same thread's next batch, which
        is why only the public entry points (which consume it immediately)
        call this.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValueError("expected %d features, got %d" % (self.n_features, X.shape[1]))
        n = X.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        ws = self._workspace(n)
        q = self._quantize_batch(X, ws)
        if self._use_narrow_mac1:
            assert ws.acc1_32 is not None
            return self._accumulate_batch_int32(
                q, ws.acc1_32[:n], ws.acc1[:n], ws.acc2[:n]
            )
        return self._accumulate_batch_int64(q, ws.acc1[:n], ws.acc2[:n])

    @int_only
    def _accumulate_batch_int64(
        self, q_test: np.ndarray, acc1: np.ndarray, acc2: np.ndarray
    ) -> np.ndarray:
        """Integer pipeline over preallocated accumulators (no temporaries).

        Same arithmetic as :meth:`_accumulate_int64` step for step; einsum
        and matmul on int64 operands are exact, so reassociating the MAC sums
        cannot change a bit (integer addition is associative, and the
        overflow check in :meth:`_fits_int64` guarantees no wraparound).
        """
        sv_shifted_t = self._sv_shifted_t
        coeff = self._coeff_i64
        assert sv_shifted_t is not None and coeff is not None
        np.einsum("ij,jk->ik", q_test, sv_shifted_t, out=acc1)
        np.right_shift(acc1, self.config.truncate_after_dot, out=acc1)
        np.add(acc1, self.kernel_offset_int, out=acc1)
        np.multiply(acc1, acc1, out=acc1)
        np.right_shift(acc1, self.config.truncate_after_square, out=acc1)
        np.matmul(acc1, coeff, out=acc2)
        np.add(acc2, self.bias_int, out=acc2)
        return acc2

    @int_only
    def _accumulate_batch_int32(
        self,
        q_test: np.ndarray,
        acc1_32: np.ndarray,
        acc1: np.ndarray,
        acc2: np.ndarray,
    ) -> np.ndarray:
        """Integer pipeline with the MAC1 stage in 32-bit words.

        Identical arithmetic to :meth:`_accumulate_batch_int64` — the
        :meth:`_fits_int32_mac1` gate proves every MAC1 intermediate (the
        quantised words, the shifted support-vector words, any partial sum of
        the dot, the truncated dot plus the kernel offset) fits a signed
        32-bit word, so the narrow stage cannot wrap and its words widen into
        the int64 accumulator exactly.  The squarer and the MAC2 pass stay in
        int64, covered by :meth:`_fits_int64`.  The point of the narrowing is
        speed: int32 matrix products go through numpy's SIMD inner loops,
        roughly halving the whole kernel's time per window.
        """
        sv_shifted_t32 = self._sv_shifted_t32
        coeff = self._coeff_i64
        assert sv_shifted_t32 is not None and coeff is not None
        np.einsum("ij,jk->ik", q_test, sv_shifted_t32, out=acc1_32)
        np.right_shift(acc1_32, self.config.truncate_after_dot, out=acc1_32)
        np.add(acc1_32, np.int32(self.kernel_offset_int), out=acc1_32)
        np.copyto(acc1, acc1_32)
        np.multiply(acc1, acc1, out=acc1)
        np.right_shift(acc1, self.config.truncate_after_square, out=acc1)
        np.matmul(acc1, coeff, out=acc2)
        np.add(acc2, self.bias_int, out=acc2)
        return acc2

    @int_only
    def _accumulate_int64(self, q_test: np.ndarray) -> np.ndarray:
        shifts = self.product_shifts.astype(np.int64)
        sv_shifted = (self.sv_int.astype(np.int64)) << shifts[None, :]
        q_test = q_test.astype(np.int64)
        acc1 = q_test @ sv_shifted.T  # (n_test, n_sv)
        dot = acc1 >> self.config.truncate_after_dot
        summed = dot + np.int64(self.kernel_offset_int)
        squared = summed * summed
        kernel_int = squared >> self.config.truncate_after_square
        acc2 = kernel_int @ self.coeff_int.astype(np.int64)
        return acc2 + np.int64(self.bias_int)

    @int_only
    def _accumulate_exact(self, q_test: np.ndarray) -> list:
        """Exact arbitrary-precision path (used by very wide datapaths)."""
        trunc1 = self.config.truncate_after_dot
        trunc2 = self.config.truncate_after_square
        shifts = [int(s) for s in self.product_shifts]
        sv_rows = [[int(v) for v in row] for row in np.asarray(self.sv_int)]
        coeffs = [int(c) for c in np.asarray(self.coeff_int)]
        results = []
        for row in np.asarray(q_test):
            test_ints = [int(v) for v in row]
            acc2 = 0
            for sv_row, coeff in zip(sv_rows, coeffs):
                acc1 = 0
                for t, s, shift in zip(test_ints, sv_row, shifts):
                    acc1 += (t * s) << shift
                dot = acc1 >> trunc1
                summed = dot + self.kernel_offset_int
                kernel_int = (summed * summed) >> trunc2
                acc2 = acc2 + coeff * kernel_int
            results.append(acc2 + self.bias_int)
        return results
