"""Trained SVM model container, training entry point and inference.

:class:`SVMModel` stores exactly the quantities the hardware accelerator of
Figure 2 needs: the support vectors (the content of the local SV memory), the
signed coefficients ``α_i y_i`` (the MAC2 multiplicands), the bias ``b`` and
the kernel.  The float-domain :meth:`SVMModel.decision_function` is the
reference against which the fixed-point pipeline of :mod:`repro.quant` is
validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.svm.kernels import Kernel, PolynomialKernel
from repro.svm.scaling import StandardScaler, make_scaler
from repro.svm.smo import SMOParams, SMOResult, smo_solve

__all__ = ["SVMTrainParams", "SVMModel", "train_svm", "class_weighted_penalties"]


@dataclass
class SVMTrainParams:
    """Training configuration for :func:`train_svm`."""

    #: Base soft-margin penalty.
    c: float = 1.0
    #: When True, per-class penalties are rebalanced inversely to the class
    #: frequencies ("balanced" weighting) — essential with rare seizures.
    balanced: bool = True
    #: Feature normalisation fitted on the training fold: ``"standard"``
    #: (zero-mean / unit-variance, the default — it keeps the polynomial
    #: kernels well conditioned), ``"pow2"`` (shift-only, embedded-friendly)
    #: or ``"none"``.
    scaling: str = "standard"
    #: KKT tolerance of the SMO solver.
    tol: float = 1e-3
    #: Iteration cap of the SMO solver.
    max_iter: int = 200_000


@dataclass
class SVMModel:
    """A trained soft-margin SVM (Equation 1 of the paper)."""

    support_vectors: np.ndarray
    #: Signed dual coefficients ``α_i y_i`` of each support vector.
    dual_coef: np.ndarray
    bias: float
    kernel: Kernel
    #: Raw (unsigned) α of each support vector — needed by the SV-budgeting
    #: norm ``‖α_i‖² · k(x_i, x_i)``.
    alpha: np.ndarray
    #: Labels of the support vectors.
    sv_labels: np.ndarray
    #: Scaler applied to inputs before kernel evaluation (None = identity).
    scaler: Optional[StandardScaler] = None
    #: Names of the features this model consumes (column order of the SVs).
    feature_names: Optional[Sequence[str]] = None
    #: Diagnostics from the SMO solver.
    n_iterations: int = 0
    converged: bool = True
    #: Row indices (into the training matrix passed to ``train_svm``) of the
    #: support vectors; used by the SV-budgeting loop to remove training rows.
    support_indices: Optional[np.ndarray] = None

    @property
    def n_support_vectors(self) -> int:
        return int(self.support_vectors.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.support_vectors.shape[1])

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValueError(
                "expected %d features, got %d" % (self.n_features, X.shape[1])
            )
        if self.scaler is not None:
            X = self.scaler.transform(X)
        return X

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance-like score ``Σ α_i y_i k(x, x_i) + b`` for each row."""
        X = self._prepare(X)
        gram = self.kernel(X, self.support_vectors)
        return gram @ self.dual_coef + self.bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels in ``{-1, +1}`` (the sign of the decision function)."""
        scores = self.decision_function(X)
        labels = np.where(scores >= 0.0, 1, -1)
        return labels.astype(int)

    def scores_and_labels(self, X: np.ndarray) -> tuple:
        """Decision scores and their sign labels from one kernel evaluation.

        Mirrors :meth:`QuantizedSVM.scores_and_labels
        <repro.quant.quantized_model.QuantizedSVM.scores_and_labels>` so the
        batched serving drain can treat float and fixed-point classifiers
        uniformly without evaluating the Gram matrix twice.
        """
        scores = self.decision_function(X)
        return scores, np.where(scores >= 0.0, 1, -1).astype(int)

    def as_backend(self, feature_indices=None, name: Optional[str] = None):
        """Wrap this model as a serving-layer inference backend.

        The adapter (:class:`~repro.svm.backend.FloatSVMBackend`) selects the
        model's ``feature_indices`` columns from the fleet's full-width window
        vectors before evaluation, so a feature-reduced design point can live
        in the same :class:`~repro.serving.registry.ModelRegistry` as
        full-width ones.
        """
        from repro.svm.backend import FloatSVMBackend

        return FloatSVMBackend(self, feature_indices=feature_indices, name=name)

    def scaled_support_vectors(self) -> np.ndarray:
        """The support vectors in the (scaled) space seen by the kernel.

        These are exactly the words stored in the accelerator's SV memory, and
        the values on which the fixed-point range selection of
        :mod:`repro.quant.ranges` operates.
        """
        return self.support_vectors.copy()

    def sv_norms(self) -> np.ndarray:
        """Budgeting norm ``‖α_i‖² · k(x_i, x_i)`` of every support vector."""
        diag = self.kernel.diagonal(self.support_vectors)
        return (self.alpha**2) * diag

    def memory_words(self) -> int:
        """Number of feature words held in the accelerator SV memory."""
        return self.n_support_vectors * self.n_features


def class_weighted_penalties(y: np.ndarray, c: float, balanced: bool) -> SMOParams:
    """Per-class penalties; 'balanced' weighting scales C inversely to class size."""
    y = np.asarray(y)
    if balanced:
        n = y.shape[0]
        n_pos = max(int(np.sum(y > 0)), 1)
        n_neg = max(int(np.sum(y < 0)), 1)
        c_pos = c * n / (2.0 * n_pos)
        c_neg = c * n / (2.0 * n_neg)
    else:
        c_pos = c_neg = c
    return SMOParams(c_positive=c_pos, c_negative=c_neg)


def train_svm(
    X: np.ndarray,
    y: np.ndarray,
    kernel: Optional[Kernel] = None,
    params: Optional[SVMTrainParams] = None,
    feature_names: Optional[Sequence[str]] = None,
) -> SVMModel:
    """Train a soft-margin SVM on a labelled feature matrix.

    Parameters
    ----------
    X:
        Training features, shape ``(n_samples, n_features)``.
    y:
        Labels in ``{-1, +1}``.
    kernel:
        Kernel function; defaults to the paper's quadratic kernel.
    params:
        Training configuration.
    feature_names:
        Optional column names recorded in the model for reporting.

    Returns
    -------
    :class:`SVMModel`
    """
    if kernel is None:
        kernel = PolynomialKernel(degree=2)
    if params is None:
        params = SVMTrainParams()
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must have the same number of rows")

    scaler = make_scaler(params.scaling)
    X_train = X
    if scaler is not None:
        scaler.fit(X)
        X_train = scaler.transform(X)

    smo_params = class_weighted_penalties(y, params.c, params.balanced)
    smo_params.tol = params.tol
    smo_params.max_iter = params.max_iter

    gram = kernel(X_train, X_train)
    result: SMOResult = smo_solve(gram, y, smo_params)

    mask = result.support_mask()
    if not np.any(mask):
        # Degenerate but possible on tiny folds: keep the sample closest to
        # the boundary of each class so the model stays well-formed.
        mask = np.zeros(y.shape[0], dtype=bool)
        mask[int(np.argmax(y > 0))] = True
        mask[int(np.argmax(y < 0))] = True

    alpha = result.alpha[mask]
    labels = y[mask]
    return SVMModel(
        support_vectors=X_train[mask].copy(),
        dual_coef=alpha * labels,
        bias=result.bias,
        kernel=kernel,
        alpha=alpha,
        sv_labels=labels.astype(int),
        scaler=scaler,
        feature_names=list(feature_names) if feature_names is not None else None,
        n_iterations=result.n_iterations,
        converged=result.converged,
        support_indices=np.nonzero(mask)[0],
    )
