"""Regenerate every table and figure of the paper in one call.

``python -m repro.experiments.runner`` (or :func:`run_all`) executes the six
experiments in sequence on the selected profile and prints the text tables;
EXPERIMENTS.md records a captured run side-by-side with the paper's values.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import (
    fig3_correlation,
    fig4_features,
    fig5_svbudget,
    fig6_bitwidth,
    fig7_combined,
    table1_kernels,
)
from repro.experiments.data import PROFILES, get_experiment_data

__all__ = ["ExperimentReport", "run_all", "main"]


@dataclass
class ExperimentReport:
    """Formatted outputs of a full reproduction run."""

    profile: str
    sections: Dict[str, str]
    elapsed_s: float

    def render(self) -> str:
        lines = [
            "Reproduction run (profile=%s, %.1f s)" % (self.profile, self.elapsed_s),
            "=" * 72,
        ]
        for title, body in self.sections.items():
            lines.append("")
            lines.append("### %s" % title)
            lines.append(body)
        return "\n".join(lines)


def run_all(
    profile: Optional[str] = None,
    quick_sweeps: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> ExperimentReport:
    """Run every experiment and return the formatted report.

    ``quick_sweeps`` trims the sweep axes (fewer feature counts, budgets and
    grid points) so the whole reproduction finishes quickly; the full axes are
    used otherwise.  ``clock`` is the injectable time source behind the
    report's ``elapsed_s`` — the experiment outputs themselves are fully
    deterministic, and the linter's ``determinism`` rule keeps them that way.
    """
    start = clock()
    data = get_experiment_data(profile)
    features = data.features

    sections: Dict[str, str] = {}

    rows = table1_kernels.run(features)
    sections["Table I - kernel comparison"] = table1_kernels.format_table(rows)

    summary = fig3_correlation.run(features)
    sections["Figure 3 - correlation structure"] = fig3_correlation.format_summary(summary)

    feature_counts = (53, 38, 23, 15, 8) if quick_sweeps else fig4_features.DEFAULT_FEATURE_COUNTS
    fig4 = fig4_features.run(features, feature_counts=feature_counts)
    sections["Figure 4 - feature-count sweep"] = fig4_features.format_series(fig4)

    budgets = (120, 68, 50, 20) if quick_sweeps else fig5_svbudget.DEFAULT_BUDGETS
    fig5 = fig5_svbudget.run(features, budgets=budgets)
    sections["Figure 5 - SV-budget sweep"] = fig5_svbudget.format_series(fig5)

    d_bits = (8, 9, 11) if quick_sweeps else fig6_bitwidth.DEFAULT_FEATURE_BITS
    a_bits = (13, 15, 17) if quick_sweeps else fig6_bitwidth.DEFAULT_COEFF_BITS
    widths = (12, 16, 32, 64) if quick_sweeps else (8, 12, 16, 24, 32, 48, 64)
    fig6 = fig6_bitwidth.run(
        features, feature_bit_options=d_bits, coeff_bit_options=a_bits, homogeneous_widths=widths
    )
    sections["Figure 6 - bitwidth exploration"] = fig6_bitwidth.format_grid(fig6)

    fig7 = fig7_combined.run(features)
    sections["Figure 7 - combined flow"] = fig7_combined.format_bars(fig7)

    return ExperimentReport(
        profile=data.profile, sections=sections, elapsed_s=clock() - start
    )


def main(argv: Optional[list] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default=None,
        help="cohort profile (defaults to REPRO_PROFILE or 'quick')",
    )
    parser.add_argument(
        "--quick-sweeps",
        action="store_true",
        help="trim the sweep axes for a faster run",
    )
    args = parser.parse_args(argv)
    report = run_all(profile=args.profile, quick_sweeps=args.quick_sweeps)
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
