"""Fixed-point quantisation of the SVM inference pipeline.

This package implements the third approximation technique of the paper
("Reducing bitwidths") as a bit-accurate functional model of the accelerator
datapath:

* :mod:`repro.quant.fixed_point` — elementary quantisation helpers
  (power-of-two scales, rounding, saturation, truncation);
* :mod:`repro.quant.ranges` — per-feature range exponents ``R_j`` selected
  from the mean ± standard deviation of the support-vector values
  (Equation 6 of the paper), plus the single global exponent used by the
  homogeneous-scaling baseline of Figure 7;
* :mod:`repro.quant.quantized_model` — :class:`~repro.quant.quantized_model.QuantizedSVM`,
  an integer-only implementation of the quadratic-kernel pipeline
  (MAC1 → truncate → +1 → square → truncate → MAC2 → bias → sign) that mirrors
  the hardware datapath of Figure 2 and exposes the matching
  :class:`~repro.hardware.accelerator.AcceleratorConfig`.
"""

from repro.quant.fixed_point import (
    quantize_columns,
    quantize_to_int,
    saturate,
    scale_for_exponent,
    truncate_lsbs,
)
from repro.quant.ranges import (
    RangeSelection,
    coefficient_range_exponent,
    feature_range_exponents,
    global_range_exponent,
)
from repro.quant.quantized_model import QuantizationConfig, QuantizedSVM
from repro.quant.backend import QuantizedSVMBackend

__all__ = [
    "quantize_columns",
    "quantize_to_int",
    "saturate",
    "scale_for_exponent",
    "truncate_lsbs",
    "RangeSelection",
    "feature_range_exponents",
    "global_range_exponent",
    "coefficient_range_exponent",
    "QuantizationConfig",
    "QuantizedSVM",
    "QuantizedSVMBackend",
]
