"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.  The cohort profile is selected with the
``REPRO_PROFILE`` environment variable:

* ``quick`` (default) — small cohort, trimmed sweep axes; minutes end-to-end.
* ``paper`` — the 7-patient / 24-session / 34-seizure structure of the
  clinical dataset and the full sweep axes of the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.data import active_profile_name, get_experiment_data


def _is_paper_profile() -> bool:
    return active_profile_name() == "paper"


@pytest.fixture(scope="session")
def experiment_data():
    """Cohort + feature matrix for the selected profile (cached per session)."""
    return get_experiment_data()


@pytest.fixture(scope="session")
def full_axes() -> bool:
    """Whether to use the paper's full sweep axes (paper profile) or trimmed ones."""
    return _is_paper_profile()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are long-running (seconds to minutes); pedantic mode with a
    single round keeps the harness practical while still recording the wall
    time alongside the reproduced rows.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
